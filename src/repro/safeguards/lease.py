"""Leased emergency powers for partitioned minorities (E22).

``quorum_mode="reachable-majority"`` (E18) already lets the reachable
side of a partition close a ballot — but when even that cannot form (the
quorum authority itself is unreachable), the fleet's safe actuations
stall entirely.  The paper's alternative to stalling is *graded*
autonomy: a reachable group that has **earned** enough aggregate
reputation may issue itself a narrow, temporary grant.

An :class:`EmergencyLease` is that grant:

* **scope-limited** — it names the actuation kinds it covers; the
  :class:`~repro.safeguards.gateway.ActuationGateway` honors it only for
  those kinds, and only for the named grantees;
* **tick-bounded** — it expires at ``expires_at`` exactly (a lease is
  dead *at* its expiry tick, not after it), and is revoked early the
  moment the partition heals;
* **HMAC-signed** — the grant travels as an E21 command envelope, so a
  forged or replayed grant is rejected at admission like any other
  forged command;
* **journaled** — every grant/exercise/expiry/revocation writes through
  (E18), and :meth:`LeaseAuthority.recover` force-expires anything whose
  expiry tick passed while the process was down: a crash/restart can
  never resurrect emergency powers.

One class plays both ends of the wire: a signer-armed
:class:`LeaseAuthority` *grants* (the reachable minority's overseer); a
verifier-armed one *admits* grants at the actuation side and answers the
gateway's ``lease_for`` lookups.  Co-located deployments use a single
instance for both.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.errors import ConfigurationError

#: Wire topics of the lease protocol.
LEASE_GRANT_TOPIC = "lease.grant"
LEASE_REVOKE_TOPIC = "lease.revoke"

#: Fields a lease-grant payload must carry to be admissible.
GRANT_FIELDS = ("lease_id", "scope", "grantees", "granted_at", "expires_at")


@dataclass
class EmergencyLease:
    """One expiring, scope-limited emergency grant."""

    lease_id: str
    scope: tuple                  # actuation kinds the lease covers
    grantees: tuple               # issuers allowed to exercise it
    granted_at: float
    expires_at: float
    cause: str = ""
    aggregate_reputation: Optional[float] = None
    revoked_at: Optional[float] = None
    revoke_cause: Optional[str] = None
    exercised: int = 0
    expired: bool = False
    detail: dict = field(default_factory=dict)

    def active(self, now: float) -> bool:
        """Live at ``now``: not revoked, and strictly before the expiry
        tick (a lease never covers its own expiry instant)."""
        return (self.revoked_at is None and not self.expired
                and now < self.expires_at)

    def covers(self, kind: str, issuer: Optional[str]) -> bool:
        return kind in self.scope and (not self.grantees
                                       or issuer in self.grantees)


class LeaseAuthority:
    """Grants, admits, and accounts for emergency leases.

    ``ledger`` (a :class:`~repro.trust.reputation.ReputationLedger`)
    gates granting: the grantees' *aggregate* reputation at grant time
    must reach ``min_aggregate`` — emergency powers are something a
    group earns, not something a partition confers.  ``signer`` /
    ``verifier`` are the E21 envelope ends; ``max_duration`` caps any
    requested lease length.  ``trace=False`` silences ``sim.record``
    (used by per-shard registry replicas so the merged F4 trace stays
    shard-count-invariant; the single granting authority keeps tracing).
    """

    def __init__(
        self,
        sim,
        ledger=None,
        signer=None,
        verifier=None,
        min_aggregate: float = 1.0,
        max_duration: float = 20.0,
        grantor: Optional[str] = None,
        journal=None,
        audit=None,
        name: str = "lease-authority",
        trace: bool = True,
    ):
        if max_duration <= 0:
            raise ConfigurationError("max_duration must be positive")
        if min_aggregate < 0:
            raise ConfigurationError("min_aggregate must be non-negative")
        self.sim = sim
        self.ledger = ledger
        self.signer = signer
        self.verifier = verifier
        self.min_aggregate = min_aggregate
        self.max_duration = max_duration
        #: Admission-side pin: only grants signed by this issuer count.
        self.grantor = grantor
        self._journal = journal
        self._audit = audit
        self.name = name
        self.trace = trace
        self._leases: dict[str, EmergencyLease] = {}
        self._counter = itertools.count(1)
        #: Flat audit trail of every lifecycle event (leases.jsonl shape).
        self.events: list[dict] = []

    # -- granting (authority role) ----------------------------------------------

    def grant(self, grantees: Iterable[str], scope: Iterable[str],
              duration: float, cause: str = "") -> Optional[EmergencyLease]:
        """Issue a lease to ``grantees`` over actuation kinds ``scope``
        for ``duration`` sim-seconds (capped at ``max_duration``).
        Returns ``None`` — metered and journaled as a denial — when the
        group's aggregate reputation falls short."""
        now = self.sim.now
        grantees = tuple(sorted(grantees))
        scope = tuple(sorted(scope))
        if not grantees or not scope:
            raise ConfigurationError("a lease needs grantees and a scope")
        aggregate = None
        if self.ledger is not None:
            aggregate = self.ledger.aggregate(grantees, now)
            if aggregate < self.min_aggregate:
                self.sim.metrics.counter("lease.denied").inc()
                self._event({"kind": "denied", "time": now, "cause": cause,
                             "grantees": list(grantees),
                             "aggregate": aggregate,
                             "required": self.min_aggregate})
                if self.trace:
                    self.sim.record("lease.denied", self.name,
                                    grantees=list(grantees),
                                    aggregate=aggregate,
                                    required=self.min_aggregate)
                return None
        lease = EmergencyLease(
            lease_id=f"{self.name}:L{next(self._counter)}",
            scope=scope, grantees=grantees, granted_at=now,
            expires_at=now + min(duration, self.max_duration),
            cause=cause, aggregate_reputation=aggregate,
        )
        self._register(lease, journal=True)
        self.sim.metrics.counter("lease.granted").inc()
        if self.trace:
            self.sim.record("lease.grant", self.name, lease=lease.lease_id,
                            scope=list(scope), grantees=list(grantees),
                            expires_at=lease.expires_at, cause=cause)
        self._span("lease.grant", lease.lease_id, cause=cause,
                   expires_at=lease.expires_at)
        self._audit_write("lease.grant", {
            "lease": lease.lease_id, "scope": list(scope),
            "grantees": list(grantees), "expires_at": lease.expires_at,
            "cause": cause,
        })
        return lease

    def grant_body(self, lease: EmergencyLease) -> dict:
        """The lease as a wire payload — a fresh signed envelope per call
        (each recipient gets its own nonce; retransmits are re-signs, so
        a captured copy replayed elsewhere still burns as a replay)."""
        payload = {
            "lease_id": lease.lease_id, "scope": list(lease.scope),
            "grantees": list(lease.grantees), "granted_at": lease.granted_at,
            "expires_at": lease.expires_at, "cause": lease.cause,
        }
        if self.signer is None:
            return payload
        return self.signer.sign(payload, tick=self.sim.now)

    # -- admission (registry role) ----------------------------------------------

    def admit_grant(self, body: dict) -> tuple:
        """Verify-then-register a lease-grant envelope.

        Returns ``(ok, reason, lease)``.  Rejections are metered
        ``lease.rejected.<reason>`` — the E21 envelope reasons (forged →
        ``bad-mac``, replayed → ``replayed``, …) plus ``grantor-mismatch``
        (signed by someone other than the pinned grantor), ``malformed``,
        and ``expired`` (a stale grant arriving after its own expiry
        tick).  A duplicate of an already-registered lease is idempotent
        (``ok`` with reason ``duplicate``)."""
        now = self.sim.now
        if self.verifier is None:
            raise ConfigurationError(
                "admit_grant needs a verifier-armed authority")
        ok, reason = self.verifier.consume(body, now)
        if ok and self.grantor is not None and body.get("_issuer") != self.grantor:
            ok, reason = False, "grantor-mismatch"
        if ok and any(key not in body for key in GRANT_FIELDS):
            ok, reason = False, "malformed"
        if ok and float(body["expires_at"]) <= now:
            ok, reason = False, "expired"
        if not ok:
            self.sim.metrics.counter("lease.rejected").inc()
            self.sim.metrics.counter(f"lease.rejected.{reason}").inc()
            self._event({"kind": "rejected", "time": now, "reason": reason,
                         "lease": body.get("lease_id")})
            if self.trace:
                self.sim.record("lease.rejected", self.name,
                                lease=body.get("lease_id"), reason=reason,
                                issuer=body.get("_issuer"))
            self._audit_write("lease.rejected", {
                "lease": body.get("lease_id"), "reason": reason,
                "issuer": body.get("_issuer"),
            })
            return False, reason, None
        lease_id = body["lease_id"]
        existing = self._leases.get(lease_id)
        if existing is not None:
            return True, "duplicate", existing
        lease = EmergencyLease(
            lease_id=lease_id, scope=tuple(body["scope"]),
            grantees=tuple(body["grantees"]),
            granted_at=float(body["granted_at"]),
            expires_at=float(body["expires_at"]),
            cause=body.get("cause", ""),
        )
        self._register(lease, journal=True)
        self.sim.metrics.counter("lease.admitted").inc()
        return True, "ok", lease

    def _register(self, lease: EmergencyLease, journal: bool) -> None:
        self._leases[lease.lease_id] = lease
        self._event({"kind": "grant", "time": self.sim.now,
                     "lease": lease.lease_id, "scope": list(lease.scope),
                     "grantees": list(lease.grantees),
                     "expires_at": lease.expires_at, "cause": lease.cause})
        if journal:
            self._journal_write({
                "kind": "grant", "lease": lease.lease_id,
                "scope": list(lease.scope), "grantees": list(lease.grantees),
                "granted_at": lease.granted_at, "expires_at": lease.expires_at,
                "cause": lease.cause,
            })
        self.sim.schedule(max(0.0, lease.expires_at - self.sim.now),
                          self._expire, lease, label="lease:expire")

    # -- lifecycle ---------------------------------------------------------------

    def lease_for(self, kind: str, issuer: Optional[str]) -> Optional[EmergencyLease]:
        """The first live lease covering ``kind`` for ``issuer`` (grant
        order — deterministic), or ``None``."""
        now = self.sim.now
        for lease in self._leases.values():
            if lease.active(now) and lease.covers(kind, issuer):
                return lease
        return None

    def exercise(self, lease_id: str) -> None:
        """Account one actuation served under the lease."""
        lease = self._leases[lease_id]
        lease.exercised += 1
        now = self.sim.now
        self.sim.metrics.counter("lease.exercised").inc()
        self._journal_write({"kind": "exercise", "lease": lease_id,
                             "time": now})
        self._span("lease.exercise", lease_id, count=lease.exercised)
        self._event({"kind": "exercise", "time": now, "lease": lease_id,
                     "count": lease.exercised})

    def revoke(self, lease_id: str, cause: str = "heal") -> bool:
        """Early revocation (partition healed, operator override).
        Returns whether a live lease was actually revoked."""
        lease = self._leases.get(lease_id)
        now = self.sim.now
        if lease is None or not lease.active(now):
            return False
        lease.revoked_at = now
        lease.revoke_cause = cause
        self.sim.metrics.counter("lease.revoked").inc()
        self._journal_write({"kind": "revoke", "lease": lease_id,
                             "time": now, "cause": cause})
        if self.trace:
            self.sim.record("lease.revoked", self.name, lease=lease_id,
                            cause=cause)
        self._span("lease.revoke", lease_id, cause=cause)
        self._audit_write("lease.revoked", {"lease": lease_id, "cause": cause})
        self._event({"kind": "revoke", "time": now, "lease": lease_id,
                     "cause": cause})
        return True

    def revoke_all(self, cause: str = "heal") -> int:
        """Revoke every live lease (the partition-heal sweep)."""
        revoked = 0
        for lease_id in list(self._leases):
            if self.revoke(lease_id, cause):
                revoked += 1
        return revoked

    def _expire(self, lease: EmergencyLease, cause: str = "expiry") -> None:
        if lease.expired or lease.revoked_at is not None:
            return
        lease.expired = True
        now = self.sim.now
        self.sim.metrics.counter("lease.expired").inc()
        self._journal_write({"kind": "expire", "lease": lease.lease_id,
                             "time": now, "cause": cause})
        if self.trace:
            self.sim.record("lease.expired", self.name, lease=lease.lease_id,
                            cause=cause)
        self._span("lease.expire", lease.lease_id, cause=cause)
        self._event({"kind": "expire", "time": now, "lease": lease.lease_id,
                     "cause": cause})

    def active_leases(self) -> list[EmergencyLease]:
        now = self.sim.now
        return [lease for lease in self._leases.values() if lease.active(now)]

    def leases(self) -> list[EmergencyLease]:
        return list(self._leases.values())

    # -- durability (E18) --------------------------------------------------------

    def crash_volatile(self) -> dict:
        """Crash semantics: the lease table is in-memory — without the
        journal a restart forgets both live leases (stalling the minority
        again) and *dead* ones (a stale grant could re-admit)."""
        lost = len(self._leases)
        self._leases = {}
        self.events = []
        return {"lost": lost, "kind": "leases",
                "journaled": self._journal is not None}

    def recover(self) -> dict:
        """Replay the lease table, then enforce the expiry bound: any
        replayed lease whose expiry tick passed while the process was
        down is force-expired *before* anything can look it up — a
        journaled lease never outlives its expiry tick, crash or no
        crash.  Still-live leases get their expiry timer re-armed."""
        replayed = 0
        if self._journal is not None:
            for record in self._journal.replay():
                payload = record.payload
                kind = payload.get("kind")
                if kind == "grant":
                    lease = EmergencyLease(
                        lease_id=payload["lease"],
                        scope=tuple(payload.get("scope", ())),
                        grantees=tuple(payload.get("grantees", ())),
                        granted_at=float(payload.get("granted_at", 0.0)),
                        expires_at=float(payload.get("expires_at", 0.0)),
                        cause=payload.get("cause", ""),
                    )
                    self._leases[lease.lease_id] = lease
                elif kind == "exercise":
                    lease = self._leases.get(payload.get("lease"))
                    if lease is not None:
                        lease.exercised += 1
                elif kind == "revoke":
                    lease = self._leases.get(payload.get("lease"))
                    if lease is not None:
                        lease.revoked_at = float(payload.get("time", 0.0))
                        lease.revoke_cause = payload.get("cause")
                elif kind == "expire":
                    lease = self._leases.get(payload.get("lease"))
                    if lease is not None:
                        lease.expired = True
                replayed += 1
        now = self.sim.now
        highest = 0
        for lease in self._leases.values():
            _name, _sep, number = lease.lease_id.rpartition(":L")
            if number.isdigit():
                highest = max(highest, int(number))
            if lease.revoked_at is not None or lease.expired:
                continue
            if lease.expires_at <= now:
                self._expire(lease, cause="recovery")
            else:
                self.sim.schedule(lease.expires_at - now, self._expire,
                                  lease, label="lease:expire")
        self._counter = itertools.count(highest + 1)
        return {"replayed": replayed}

    # -- plumbing ----------------------------------------------------------------

    def _event(self, event: dict) -> None:
        self.events.append(event)

    def _journal_write(self, payload: dict) -> None:
        if self._journal is not None:
            self._journal.append(payload)

    def _audit_write(self, kind: str, detail: dict) -> None:
        if self._audit is not None:
            self._audit.append(self.sim.now, kind, self.name, detail)

    def _span(self, name: str, lease_id: str, **attrs) -> None:
        telemetry = self.sim.telemetry
        if telemetry.enabled and telemetry.active_context() is not None:
            telemetry.start_span(name, lease_id,
                                 parent=telemetry.active_context(), **attrs)
