"""Checks on collection formation (paper sec VI-D).

"the combination of many innocuous devices could become a dangerous
device... components within an electronic device may each be operating
within regions where the heat that they generate is acceptable... but the
cumulative amount of heat generated may exceed the safety limits."

Three cooperating pieces:

* :class:`OfflineAnalyzer` — the "another machine which remains offline
  and disconnected from other machines" assisting the human check.  It has
  no network interface; it receives only state snapshots and evaluates
  aggregate constraints over the proposed membership.
* :class:`HumanCheckModel` — the rate-limited human in the loop at every
  join/leave, with a configurable error rate (sec IV human error).
* :class:`CollectiveStateAssessment` — "collaborative state assessment
  techniques by which a group of devices would jointly determine whether a
  set of actions... could lead to some aggregate bad states, even though
  each device would still be in good state."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence

from repro.core.device import Device
from repro.errors import ConfigurationError
from repro.net.message import Message
from repro.sim.rng import SeededRNG

#: Topics of the remote join protocol (sec VI-D over the wire).
JOIN_TOPIC = "collection.join"
VERDICT_TOPIC = "collection.join.verdict"

_REDUCERS = {
    "sum": sum,
    "max": lambda values: max(values) if values else 0.0,
    "mean": lambda values: (sum(values) / len(values)) if values else 0.0,
    "count": len,
}


@dataclass(frozen=True)
class AggregateConstraint:
    """A fleet-level safety limit over a state variable.

    ``reducer`` folds the member values (``sum``/``max``/``mean``/``count``);
    the aggregate must stay ≤ ``limit``.  The paper's heat example is
    ``AggregateConstraint("heat", "heat_output", "sum", 100.0)``.
    """

    name: str
    variable: str
    reducer: str
    limit: float

    def __post_init__(self):
        if self.reducer not in _REDUCERS:
            raise ConfigurationError(f"unknown reducer {self.reducer!r}")

    def evaluate(self, vectors: Sequence[dict]) -> float:
        values = [
            float(vector[self.variable]) for vector in vectors
            if self.variable in vector
            and isinstance(vector[self.variable], (int, float))
            and not isinstance(vector[self.variable], bool)
        ]
        if self.reducer == "count":
            return float(len(values))
        return float(_REDUCERS[self.reducer](values))

    def violated_by(self, vectors: Sequence[dict]) -> bool:
        return self.evaluate(vectors) > self.limit

    def headroom(self, vectors: Sequence[dict]) -> float:
        return self.limit - self.evaluate(vectors)


class OfflineAnalyzer:
    """The disconnected analysis machine assisting the human check.

    By construction it has no reference to the network or simulator: it is
    handed plain snapshots and worst-case bounds and answers whether the
    proposed collection can violate any aggregate constraint.
    """

    def __init__(self, constraints: Iterable[AggregateConstraint]):
        self.constraints = list(constraints)
        self.analyses = 0

    def analyze(self, member_snapshots: Sequence[dict],
                candidate_snapshot: Optional[dict] = None,
                worst_case: bool = False) -> dict:
        """Evaluate the (proposed) collection against every constraint.

        ``worst_case=True`` substitutes each member's declared per-variable
        maximum (``<variable>_max`` key in the snapshot when present) for
        its current value — the situational analysis of what the
        collection *could* do, not just what it is doing now.
        """
        self.analyses += 1
        vectors = list(member_snapshots)
        if candidate_snapshot is not None:
            vectors = vectors + [candidate_snapshot]
        if worst_case:
            vectors = [self._worst(vector) for vector in vectors]
        violations = []
        report = {}
        for constraint in self.constraints:
            value = constraint.evaluate(vectors)
            report[constraint.name] = {"value": value, "limit": constraint.limit}
            if value > constraint.limit:
                violations.append(constraint.name)
        return {"safe": not violations, "violations": violations,
                "constraints": report, "members": len(vectors)}

    @staticmethod
    def _worst(vector: dict) -> dict:
        worst = dict(vector)
        for key, value in vector.items():
            if key.endswith("_max") and isinstance(value, (int, float)):
                base = key[: -len("_max")]
                if base in worst:
                    worst[base] = value
        return worst


class HumanCheckModel:
    """The human approving each collection change (sec VI-D).

    Rate-limited (a human can only review so fast) and fallible: with
    probability ``error_rate`` the human approves against the analyzer's
    advice or rejects a safe join.  Decisions outside the rate limit queue
    conceptually; here they simply fail closed (reject) and are counted,
    modelling review backlog as unavailability.
    """

    def __init__(self, rng: SeededRNG, error_rate: float = 0.0,
                 min_interval: float = 0.0):
        if not 0.0 <= error_rate <= 1.0:
            raise ConfigurationError("error_rate must be in [0, 1]")
        self._rng = rng
        self.error_rate = error_rate
        self.min_interval = min_interval
        self._last_review: Optional[float] = None
        self.reviews = 0
        self.errors = 0
        self.rate_limited = 0

    def review(self, analysis: dict, time: float) -> bool:
        """Approve or reject a membership change given the analyzer output."""
        if (self._last_review is not None and self.min_interval > 0
                and time - self._last_review < self.min_interval):
            self.rate_limited += 1
            return False
        self._last_review = time
        self.reviews += 1
        correct = bool(analysis["safe"])
        if self._rng.chance(self.error_rate):
            self.errors += 1
            return not correct
        return correct


class CollectionGuard:
    """Gatekeeper for joining/leaving a device collection (sec VI-D)."""

    def __init__(
        self,
        analyzer: OfflineAnalyzer,
        human: Optional[HumanCheckModel] = None,
        worst_case: bool = True,
        audit_sink: Optional[Callable[[str, dict], None]] = None,
    ):
        self.analyzer = analyzer
        self.human = human
        self.worst_case = worst_case
        self._audit = audit_sink or (lambda kind, detail: None)
        self.members: dict[str, Device] = {}
        self.remote_members: dict[str, dict] = {}   # device_id -> snapshot
        self.rejections = 0

    def request_join(self, device: Device, time: float) -> bool:
        """Run the analyzer (+ human check) for a candidate; admit or refuse."""
        analysis = self.analyzer.analyze(
            self._member_snapshots(), device.state.snapshot(),
            worst_case=self.worst_case,
        )
        approved = analysis["safe"]
        if self.human is not None:
            approved = self.human.review(analysis, time)
        self._audit("collection.join_review", {
            "device": device.device_id, "time": time,
            "approved": approved, "analysis": analysis,
        })
        if not approved:
            self.rejections += 1
            return False
        self.members[device.device_id] = device
        return True

    def review_snapshot(self, device_id: str, snapshot: dict,
                        time: float) -> bool:
        """Review a join request that arrived as a state snapshot (a
        remote candidate the guard holds no object reference for).
        Admitted snapshots join the aggregate baseline for later reviews."""
        analysis = self.analyzer.analyze(
            self._member_snapshots(), dict(snapshot),
            worst_case=self.worst_case,
        )
        approved = analysis["safe"]
        if self.human is not None:
            approved = self.human.review(analysis, time)
        self._audit("collection.join_review", {
            "device": device_id, "time": time,
            "approved": approved, "analysis": analysis,
        })
        if not approved:
            self.rejections += 1
            return False
        self.remote_members[device_id] = dict(snapshot)
        return True

    def force_join(self, device: Device) -> None:
        """Admit without review (the unguarded baseline)."""
        self.members[device.device_id] = device

    def leave(self, device_id: str, time: float) -> None:
        self.members.pop(device_id, None)
        self.remote_members.pop(device_id, None)
        self._audit("collection.leave", {"device": device_id, "time": time})

    def _member_snapshots(self) -> list[dict]:
        return ([member.state.snapshot() for member in self.members.values()]
                + list(self.remote_members.values()))

    def current_analysis(self) -> dict:
        return self.analyzer.analyze(self._member_snapshots(), worst_case=False)


class CollectiveStateAssessment:
    """Joint pre-commit check of a *set* of planned actions (sec VI-D).

    Each device proposes an action; the assessment applies every proposed
    action's declared effects to its proposer's snapshot and evaluates the
    aggregate constraints over the predicted vectors.  If any constraint
    would be violated, the assessment returns the largest subset of
    proposals (greedily, in deterministic device order) that keeps every
    aggregate within limits — devices whose proposals are deferred simply
    do not act this round.
    """

    def __init__(self, constraints: Iterable[AggregateConstraint]):
        self.constraints = list(constraints)
        self.assessments = 0
        self.deferrals = 0

    def assess(self, proposals: dict) -> dict:
        """``proposals``: device_id -> (Device, Action).  Returns
        {"approved": [ids], "deferred": [ids], "violations": [names]}."""
        self.assessments += 1
        ordered = sorted(proposals)
        predicted: dict[str, dict] = {}
        baseline: dict[str, dict] = {}
        for device_id in ordered:
            device, action = proposals[device_id]
            current = device.state.snapshot()
            baseline[device_id] = current
            changes = action.predicted_changes(current)
            after = dict(current)
            after.update(changes)
            predicted[device_id] = after

        all_after = [predicted[device_id] for device_id in ordered]
        violations = [
            constraint.name for constraint in self.constraints
            if constraint.violated_by(all_after)
        ]
        if not violations:
            return {"approved": ordered, "deferred": [], "violations": []}

        # Greedy admission: add proposals one at a time, keeping the rest
        # at their current (pre-action) vectors.
        approved: list[str] = []
        for device_id in ordered:
            trial = [
                predicted[other] if (other in approved or other == device_id)
                else baseline[other]
                for other in ordered
            ]
            if not any(constraint.violated_by(trial) for constraint in self.constraints):
                approved.append(device_id)
        deferred = [device_id for device_id in ordered if device_id not in approved]
        self.deferrals += len(deferred)
        return {"approved": approved, "deferred": deferred,
                "violations": violations}


class JoinDesk:
    """Network front desk for a :class:`CollectionGuard` (sec VI-D).

    Devices petition to join over the wire; the desk runs the analyzer
    (+ human check) on the snapshot they sent and replies with a verdict.
    Pair with :class:`JoinClient` on the device side; put safety-critical
    desks on a :class:`~repro.net.reliable.ReliableChannel`.
    """

    def __init__(self, sim, transport, guard: CollectionGuard,
                 address: str = "collection-desk", signer=None,
                 reputation=None, min_reputation: float = 0.35):
        """``signer`` (a :class:`~repro.crypto.envelope.CommandSigner`)
        signs each verdict into a command envelope, so a verifying
        :class:`JoinClient` cannot be admitted by a forged or replayed
        approval (E21).

        ``reputation`` (a :class:`~repro.trust.reputation.ReputationLedger`)
        tightens admission as trust drops (E22): a petitioner whose score
        sits below ``min_reputation`` is refused before the analyzer even
        runs — a device that vetoes, trips the gateway, or fails
        cross-validation argues its way out of new collections."""
        self.sim = sim
        self.transport = transport
        self.guard = guard
        self.address = address
        self.signer = signer
        self.reputation = reputation
        self.min_reputation = min_reputation
        self.requests_handled = 0
        self.reputation_rejects = 0
        transport.register(address, self._on_message)

    def _on_message(self, message: Message) -> None:
        if message.topic != JOIN_TOPIC:
            return
        body = message.body
        device_id = body.get("device_id")
        reply_to = body.get("reply_to")
        if device_id is None or reply_to is None:
            return
        self.requests_handled += 1
        if (self.reputation is not None
                and self.reputation.score(device_id, self.sim.now)
                < self.min_reputation):
            self.reputation_rejects += 1
            self.sim.metrics.counter("collection.reputation_rejects").inc()
            self.sim.record("collection.reputation_reject", device_id,
                            score=self.reputation.score(device_id, self.sim.now),
                            floor=self.min_reputation)
            approved = False
        else:
            approved = self.guard.review_snapshot(
                device_id, body.get("snapshot", {}), self.sim.now
            )
        verdict = {"device_id": device_id, "approved": approved}
        if self.signer is not None:
            verdict = self.signer.sign(verdict, tick=self.sim.now)
        self.transport.send(self.address, reply_to, VERDICT_TOPIC, verdict)


class JoinClient:
    """Device-side remote join that **fails closed**.

    A device may only consider itself admitted on an explicit approve
    verdict.  No verdict — a dead-lettered request over reliable
    transport, or the deadline passing over datagrams — resolves to *not
    joined* (``collection.fail_closed`` metric), never to membership by
    default.
    """

    def __init__(self, sim, device: Device, transport,
                 desk: str = "collection-desk", timeout: float = 5.0,
                 verifier=None):
        """``verifier`` (an :class:`~repro.crypto.envelope.EnvelopeVerifier`)
        requires verdicts to arrive as valid signed envelopes naming this
        device.  A forged, replayed, or re-addressed approval is ignored
        — and since the client fails closed, ignoring it means *not
        joined* when no genuine verdict follows (E21)."""
        self.sim = sim
        self.device = device
        self.transport = transport
        self.desk = desk
        self.timeout = timeout
        self.verifier = verifier
        self.address = f"{device.device_id}.join"
        #: ``None`` while undecided, then the final verdict.
        self.joined: Optional[bool] = None
        self.outcome: Optional[str] = None   # "verdict" | "dead_letter" | "timeout"
        self._reliable = bool(getattr(transport, "reliable", False))
        transport.register(self.address, self._on_message)

    def request_join(
        self, on_result: Optional[Callable[[bool, str], None]] = None
    ) -> None:
        """Petition the desk; ``on_result(joined, outcome)`` fires once."""
        self.joined = None
        self.outcome = None
        self._on_result = on_result
        body = {
            "device_id": self.device.device_id,
            "snapshot": self.device.state.snapshot(),
            "reply_to": self.address,
        }
        if self._reliable:
            self.transport.send(
                self.address, self.desk, JOIN_TOPIC, body,
                on_fail=lambda pending: self._decide(False, "dead_letter"),
            )
        else:
            self.transport.send(self.address, self.desk, JOIN_TOPIC, body)
        self.sim.schedule(self.timeout, self._deadline,
                          label=f"{self.device.device_id}:join-deadline")

    def _deadline(self) -> None:
        if self.joined is None:
            self._decide(False, "timeout")

    def _on_message(self, message: Message) -> None:
        if message.topic != VERDICT_TOPIC or self.joined is not None:
            return
        body = message.body
        if self.verifier is not None:
            ok, reason = self.verifier.consume(body, self.sim.now)
            if ok and body.get("device_id") != self.device.device_id:
                # Target binding: an approval signed for another device
                # (captured and re-addressed) does not admit this one.
                ok, reason = False, "target-mismatch"
            if not ok:
                self.sim.metrics.counter("collection.verdicts_rejected").inc()
                self.sim.record("collection.verdict_rejected",
                                self.device.device_id, reason=reason)
                return
        self._decide(bool(body.get("approved")), "verdict")

    def _decide(self, joined: bool, outcome: str) -> None:
        if self.joined is not None:
            return
        self.joined = joined
        self.outcome = outcome
        if outcome != "verdict":
            self.sim.metrics.counter("collection.fail_closed").inc()
        self.sim.record("collection.join_result", self.device.device_id,
                        joined=joined, outcome=outcome)
        if self._on_result is not None:
            self._on_result(joined, outcome)
