"""Checks on collection formation (paper sec VI-D).

"the combination of many innocuous devices could become a dangerous
device... components within an electronic device may each be operating
within regions where the heat that they generate is acceptable... but the
cumulative amount of heat generated may exceed the safety limits."

Three cooperating pieces:

* :class:`OfflineAnalyzer` — the "another machine which remains offline
  and disconnected from other machines" assisting the human check.  It has
  no network interface; it receives only state snapshots and evaluates
  aggregate constraints over the proposed membership.
* :class:`HumanCheckModel` — the rate-limited human in the loop at every
  join/leave, with a configurable error rate (sec IV human error).
* :class:`CollectiveStateAssessment` — "collaborative state assessment
  techniques by which a group of devices would jointly determine whether a
  set of actions... could lead to some aggregate bad states, even though
  each device would still be in good state."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence

from repro.core.actions import Action
from repro.core.device import Device
from repro.errors import ConfigurationError
from repro.sim.rng import SeededRNG

_REDUCERS = {
    "sum": sum,
    "max": lambda values: max(values) if values else 0.0,
    "mean": lambda values: (sum(values) / len(values)) if values else 0.0,
    "count": len,
}


@dataclass(frozen=True)
class AggregateConstraint:
    """A fleet-level safety limit over a state variable.

    ``reducer`` folds the member values (``sum``/``max``/``mean``/``count``);
    the aggregate must stay ≤ ``limit``.  The paper's heat example is
    ``AggregateConstraint("heat", "heat_output", "sum", 100.0)``.
    """

    name: str
    variable: str
    reducer: str
    limit: float

    def __post_init__(self):
        if self.reducer not in _REDUCERS:
            raise ConfigurationError(f"unknown reducer {self.reducer!r}")

    def evaluate(self, vectors: Sequence[dict]) -> float:
        values = [
            float(vector[self.variable]) for vector in vectors
            if self.variable in vector
            and isinstance(vector[self.variable], (int, float))
            and not isinstance(vector[self.variable], bool)
        ]
        if self.reducer == "count":
            return float(len(values))
        return float(_REDUCERS[self.reducer](values))

    def violated_by(self, vectors: Sequence[dict]) -> bool:
        return self.evaluate(vectors) > self.limit

    def headroom(self, vectors: Sequence[dict]) -> float:
        return self.limit - self.evaluate(vectors)


class OfflineAnalyzer:
    """The disconnected analysis machine assisting the human check.

    By construction it has no reference to the network or simulator: it is
    handed plain snapshots and worst-case bounds and answers whether the
    proposed collection can violate any aggregate constraint.
    """

    def __init__(self, constraints: Iterable[AggregateConstraint]):
        self.constraints = list(constraints)
        self.analyses = 0

    def analyze(self, member_snapshots: Sequence[dict],
                candidate_snapshot: Optional[dict] = None,
                worst_case: bool = False) -> dict:
        """Evaluate the (proposed) collection against every constraint.

        ``worst_case=True`` substitutes each member's declared per-variable
        maximum (``<variable>_max`` key in the snapshot when present) for
        its current value — the situational analysis of what the
        collection *could* do, not just what it is doing now.
        """
        self.analyses += 1
        vectors = list(member_snapshots)
        if candidate_snapshot is not None:
            vectors = vectors + [candidate_snapshot]
        if worst_case:
            vectors = [self._worst(vector) for vector in vectors]
        violations = []
        report = {}
        for constraint in self.constraints:
            value = constraint.evaluate(vectors)
            report[constraint.name] = {"value": value, "limit": constraint.limit}
            if value > constraint.limit:
                violations.append(constraint.name)
        return {"safe": not violations, "violations": violations,
                "constraints": report, "members": len(vectors)}

    @staticmethod
    def _worst(vector: dict) -> dict:
        worst = dict(vector)
        for key, value in vector.items():
            if key.endswith("_max") and isinstance(value, (int, float)):
                base = key[: -len("_max")]
                if base in worst:
                    worst[base] = value
        return worst


class HumanCheckModel:
    """The human approving each collection change (sec VI-D).

    Rate-limited (a human can only review so fast) and fallible: with
    probability ``error_rate`` the human approves against the analyzer's
    advice or rejects a safe join.  Decisions outside the rate limit queue
    conceptually; here they simply fail closed (reject) and are counted,
    modelling review backlog as unavailability.
    """

    def __init__(self, rng: SeededRNG, error_rate: float = 0.0,
                 min_interval: float = 0.0):
        if not 0.0 <= error_rate <= 1.0:
            raise ConfigurationError("error_rate must be in [0, 1]")
        self._rng = rng
        self.error_rate = error_rate
        self.min_interval = min_interval
        self._last_review: Optional[float] = None
        self.reviews = 0
        self.errors = 0
        self.rate_limited = 0

    def review(self, analysis: dict, time: float) -> bool:
        """Approve or reject a membership change given the analyzer output."""
        if (self._last_review is not None and self.min_interval > 0
                and time - self._last_review < self.min_interval):
            self.rate_limited += 1
            return False
        self._last_review = time
        self.reviews += 1
        correct = bool(analysis["safe"])
        if self._rng.chance(self.error_rate):
            self.errors += 1
            return not correct
        return correct


class CollectionGuard:
    """Gatekeeper for joining/leaving a device collection (sec VI-D)."""

    def __init__(
        self,
        analyzer: OfflineAnalyzer,
        human: Optional[HumanCheckModel] = None,
        worst_case: bool = True,
        audit_sink: Optional[Callable[[str, dict], None]] = None,
    ):
        self.analyzer = analyzer
        self.human = human
        self.worst_case = worst_case
        self._audit = audit_sink or (lambda kind, detail: None)
        self.members: dict[str, Device] = {}
        self.rejections = 0

    def request_join(self, device: Device, time: float) -> bool:
        """Run the analyzer (+ human check) for a candidate; admit or refuse."""
        snapshots = [member.state.snapshot() for member in self.members.values()]
        analysis = self.analyzer.analyze(
            snapshots, device.state.snapshot(), worst_case=self.worst_case
        )
        approved = analysis["safe"]
        if self.human is not None:
            approved = self.human.review(analysis, time)
        self._audit("collection.join_review", {
            "device": device.device_id, "time": time,
            "approved": approved, "analysis": analysis,
        })
        if not approved:
            self.rejections += 1
            return False
        self.members[device.device_id] = device
        return True

    def force_join(self, device: Device) -> None:
        """Admit without review (the unguarded baseline)."""
        self.members[device.device_id] = device

    def leave(self, device_id: str, time: float) -> None:
        self.members.pop(device_id, None)
        self._audit("collection.leave", {"device": device_id, "time": time})

    def current_analysis(self) -> dict:
        return self.analyzer.analyze(
            [member.state.snapshot() for member in self.members.values()],
            worst_case=False,
        )


class CollectiveStateAssessment:
    """Joint pre-commit check of a *set* of planned actions (sec VI-D).

    Each device proposes an action; the assessment applies every proposed
    action's declared effects to its proposer's snapshot and evaluates the
    aggregate constraints over the predicted vectors.  If any constraint
    would be violated, the assessment returns the largest subset of
    proposals (greedily, in deterministic device order) that keeps every
    aggregate within limits — devices whose proposals are deferred simply
    do not act this round.
    """

    def __init__(self, constraints: Iterable[AggregateConstraint]):
        self.constraints = list(constraints)
        self.assessments = 0
        self.deferrals = 0

    def assess(self, proposals: dict) -> dict:
        """``proposals``: device_id -> (Device, Action).  Returns
        {"approved": [ids], "deferred": [ids], "violations": [names]}."""
        self.assessments += 1
        ordered = sorted(proposals)
        predicted: dict[str, dict] = {}
        baseline: dict[str, dict] = {}
        for device_id in ordered:
            device, action = proposals[device_id]
            current = device.state.snapshot()
            baseline[device_id] = current
            changes = action.predicted_changes(current)
            after = dict(current)
            after.update(changes)
            predicted[device_id] = after

        all_after = [predicted[device_id] for device_id in ordered]
        violations = [
            constraint.name for constraint in self.constraints
            if constraint.violated_by(all_after)
        ]
        if not violations:
            return {"approved": ordered, "deferred": [], "violations": []}

        # Greedy admission: add proposals one at a time, keeping the rest
        # at their current (pre-action) vectors.
        approved: list[str] = []
        for device_id in ordered:
            trial = [
                predicted[other] if (other in approved or other == device_id)
                else baseline[other]
                for other in ordered
            ]
            if not any(constraint.violated_by(trial) for constraint in self.constraints):
                approved.append(device_id)
        deferred = [device_id for device_id in ordered if device_id not in approved]
        self.deferrals += len(deferred)
        return {"approved": approved, "deferred": deferred,
                "violations": violations}
