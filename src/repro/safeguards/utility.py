"""Partial-derivative utility functions for ill-defined state spaces (paper sec VII).

"While a human may not be able to exactly define whether the state is good
or bad, it may be possible to define ... the sign of the partial
derivatives (∂f/∂xi) with respect to some (if not all) of the state
variables.  In those cases, we can write rules that define a utility
function for the device ... the utility function may be viewed as a pain
or pleasure function for the device ... As devices would try to maximize
their pleasure and avoid pain, they would prefer to take actions that will
not cause harm to the humans."

:class:`PartialDerivativeUtility` builds the utility from per-variable
derivative *signs only* (optionally weighted); :class:`UtilityGuard` is
the engine safeguard that vetoes utility-decreasing actions and steers
toward the highest-utility alternative.  E6 measures how much of an exact
classifier's protection this sign-only information recovers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.core.actions import Action
from repro.core.engine import Safeguard
from repro.errors import ConfigurationError, SafeguardViolation

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.device import Device


@dataclass(frozen=True)
class VariableSense:
    """The elicited knowledge about one state variable.

    ``sign`` is the sign of ∂(safeness)/∂(variable): +1 when increasing
    the variable makes states safer, -1 when it makes them more dangerous,
    0 when unknown/irrelevant.  ``weight`` expresses relative importance
    when known; ``scale`` normalizes the variable's natural range so
    differently-scaled variables combine sensibly.
    """

    variable: str
    sign: int
    weight: float = 1.0
    scale: float = 1.0

    def __post_init__(self):
        if self.sign not in (-1, 0, 1):
            raise ConfigurationError(f"sign must be -1/0/+1, got {self.sign}")
        if self.weight < 0:
            raise ConfigurationError("weight must be non-negative")
        if self.scale <= 0:
            raise ConfigurationError("scale must be positive")


class PartialDerivativeUtility:
    """U(x) = Σ_i sign_i · weight_i · x_i / scale_i   (pleasure − pain).

    Linear in each variable with only the elicited sign determining
    direction — exactly the information sec VII assumes is available.
    ``pleasure``/``pain`` split the positive and negative contributions
    for the paper's anthropological reading.
    """

    def __init__(self, senses: list):
        if not senses:
            raise ConfigurationError("utility needs at least one variable sense")
        names = [sense.variable for sense in senses]
        if len(names) != len(set(names)):
            raise ConfigurationError("duplicate variable senses")
        self.senses = {sense.variable: sense for sense in senses}

    def utility(self, vector: dict) -> float:
        total = 0.0
        for name, sense in self.senses.items():
            value = vector.get(name)
            if (sense.sign == 0 or value is None
                    or isinstance(value, bool)
                    or not isinstance(value, (int, float))):
                continue
            total += sense.sign * sense.weight * float(value) / sense.scale
        return total

    def pleasure(self, vector: dict) -> float:
        """Sum of safety-increasing contributions (≥ 0)."""
        return sum(
            max(0.0, sense.sign * sense.weight * float(vector[name]) / sense.scale)
            for name, sense in self.senses.items()
            if name in vector and isinstance(vector[name], (int, float))
            and not isinstance(vector[name], bool) and sense.sign != 0
        )

    def pain(self, vector: dict) -> float:
        """Sum of safety-decreasing contributions (≥ 0)."""
        return sum(
            max(0.0, -sense.sign * sense.weight * float(vector[name]) / sense.scale)
            for name, sense in self.senses.items()
            if name in vector and isinstance(vector[name], (int, float))
            and not isinstance(vector[name], bool) and sense.sign != 0
        )

    def delta(self, before: dict, after: dict) -> float:
        """Utility change of a transition (positive = toward pleasure)."""
        return self.utility(after) - self.utility(before)

    def best_action(self, device: "Device", candidates: list) -> Optional[Action]:
        """The candidate maximizing predicted utility (ties: first)."""
        current = device.state.snapshot()
        best: Optional[tuple[float, int, Action]] = None
        for index, action in enumerate(candidates):
            changes = action.predicted_changes(current)
            predicted = dict(current)
            predicted.update(changes)
            score = self.utility(predicted)
            if best is None or score > best[0]:
                best = (score, index, action)
        return best[2] if best else None


class UtilityGuard(Safeguard):
    """Sec VII as an engine safeguard.

    Vetoes actions whose predicted utility change is below ``-tolerance``
    (pain-increasing moves) and suggests alternatives best-utility-first.
    ``tolerance > 0`` permits mildly costly moves — mission progress often
    requires them — while still blocking sharp descents toward harm.
    """

    name = "utility"

    def __init__(self, utility: PartialDerivativeUtility, tolerance: float = 0.0):
        if tolerance < 0:
            raise ConfigurationError("tolerance must be non-negative")
        self.utility = utility
        self.tolerance = tolerance
        self.vetoes = 0

    def check_transition(self, device: "Device", predicted: dict, action: Action,
                         time: float) -> None:
        current = device.state.snapshot()
        change = self.utility.delta(current, predicted)
        if change < -self.tolerance:
            self.vetoes += 1
            raise SafeguardViolation(
                f"action {action.name!r} decreases utility by {-change:.3f} "
                f"(> tolerance {self.tolerance})",
                safeguard=self.name,
                detail={"device": device.device_id, "action": action.name,
                        "delta": change, "time": time},
            )

    def suggest_alternatives(self, device: "Device", action: Action,
                             time: float) -> list:
        current = device.state.snapshot()
        scored = []
        for index, candidate in enumerate(device.engine.actions.all()):
            if candidate.name == action.name or candidate.is_noop:
                continue
            changes = candidate.predicted_changes(current)
            predicted = dict(current)
            predicted.update(changes)
            scored.append((self.utility.utility(predicted), -index, candidate))
        scored.sort(key=lambda item: (-item[0], item[1]))
        return [candidate for _score, _order, candidate in scored]
