"""Tamper-proofing primitives.

Every sec VI technique "assumes that it can be performed in a manner that
is tamper-proof".  In this reproduction, tamper-proofing is an enforcement
boundary with two parts:

* :class:`SealedChain` — a guard-chain container whose mutators raise
  :class:`~repro.errors.TamperError`, so compromise payloads cannot strip
  safeguards from a sealed engine (they *can* from an unsealed one, which
  is itself an ablation arm in E10);
* :func:`attest_device` — a hash attestation over a device's policy set
  and guard chain that an external watchdog compares against an approved
  baseline to detect reprogramming.
"""

from __future__ import annotations

import hashlib
from typing import Iterable

from repro.core.device import Device
from repro.errors import TamperError


class SealedChain(list):
    """A guard chain that refuses structural mutation once sealed.

    Adding *more* safeguards is allowed (defense can only tighten);
    removing or replacing them is not.
    """

    sealed = True

    def _refuse(self, *_args, **_kwargs):
        raise TamperError("guard chain is sealed; mutation blocked")

    # Removal and replacement are blocked...
    remove = _refuse
    pop = _refuse
    clear = _refuse
    __delitem__ = _refuse
    __setitem__ = _refuse
    sort = _refuse
    reverse = _refuse
    __imul__ = _refuse

    # ... but append/extend stay available (tightening is permitted).


def seal_guard_chain(device: Device) -> SealedChain:
    """Replace the engine's guard chain with a sealed copy; returns it."""
    sealed = SealedChain(device.engine.safeguards)
    device.engine.safeguards = sealed
    return sealed


def is_sealed(device: Device) -> bool:
    return bool(getattr(device.engine.safeguards, "sealed", False))


def attest_device(device: Device) -> str:
    """A stable hash over the device's active logic configuration.

    Covers the policy-id snapshot, each policy's action and priority, and
    the guard chain's safeguard names.  Injecting, replacing, or removing
    a policy — what every compromise payload does — changes the hash.
    """
    parts: list[str] = [device.device_id, device.device_type]
    for policy_id in device.engine.policies.snapshot():
        policy = device.engine.policies.get(policy_id)
        parts.append(
            f"{policy.policy_id}|{policy.event_pattern}|{policy.action.name}"
            f"|{policy.action.actuator}|{policy.priority}|{policy.source}"
        )
    parts.extend(safeguard.name for safeguard in device.engine.safeguards)
    digest = hashlib.sha256("\n".join(parts).encode("utf-8")).hexdigest()
    return digest


def attest_fleet(devices: Iterable[Device]) -> dict:
    """device_id -> attestation hash for a whole fleet (watchdog baseline)."""
    return {device.device_id: attest_device(device) for device in devices}
