"""Batch guard evaluation: a compiled comparator table for the policy
grammar plus vectorized effect application and state-space veto (F4).

The scalar engine evaluates one ``(condition, effects, guard)`` chain per
device per event.  At fleet scale the same chain is evaluated for tens of
thousands of structurally identical devices every tick, so this module
compiles a prioritized program list once and then evaluates every device
in a handful of numpy passes:

* :func:`compile_condition` lowers the condition AST
  (:mod:`repro.core.conditions`) onto whole columns via a comparator
  table (``==  !=  <  <=  >  >=`` map to elementwise ufuncs);
* :class:`BatchPolicyEvaluator` does first-match policy selection,
  predicted-state computation (effects compose unclamped, final values
  saturate at the declared bounds — exactly
  :meth:`~repro.core.state.DeviceState.resolve_changes`), and the sec
  VI-B veto (predicted state classifies BAD) in batch.

**Decision identity.** The vector path reproduces the scalar path
bit-for-bit: same IEEE-754 operations in the same order.  The evaluator
carries a scalar twin (:meth:`BatchPolicyEvaluator.select_scalar` /
:meth:`apply_scalar`) built on the *real* ``Condition.evaluate`` /
``classifier.safeness`` / ``Effect.apply_to`` — the property tests assert
both paths pick the same programs, veto the same rows, and land on the
same state.

**Visible fallback.** Constructs the vectorizer cannot express — the
``in`` operator, ``event.*`` references, event-dependent conditions,
opaque classifiers, effects on non-float variables — fall back to the
scalar twin *per program*, and every fallback is counted by reason
(:attr:`BatchPolicyEvaluator.fallback_reasons`), so a policy change that
silently demotes the fleet to scalar dispatch shows up in metrics rather
than only in wall clock.
"""

from __future__ import annotations

import operator
from typing import Callable, Optional, Sequence

from repro.core.actions import Effect
from repro.core.conditions import (
    AllOf,
    AnyOf,
    Comparison,
    Condition,
    EventFieldIs,
    EventKindIs,
    Literal,
    Not,
    TrueCondition,
    parse_condition,
)
from repro.core.state import StateSpace
from repro.statespace.batch import (
    BatchCompileError,
    BatchSafeness,
    StateMatrix,
    compile_safeness,
)
from repro.statespace.classifier import SafenessClassifier

try:  # pragma: no cover
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: The comparator table: guard-grammar operator -> elementwise callable.
#: ``in`` is deliberately absent (membership against an arbitrary Python
#: container does not vectorize) — it is the canonical fallback case.
VECTOR_OPS = {
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

#: fn(columns, n) -> bool ndarray
CompiledCondition = Callable[[dict, int], object]


def compile_condition(condition: Condition, space: StateSpace,
                      np_module=None) -> CompiledCondition:
    """Compile a condition AST into ``fn(columns, n) -> bool array``.

    Raises :class:`BatchCompileError` with a stable reason slug for
    anything outside the vectorizable grammar subset: ``in-operator``,
    ``event-reference``, ``event-dependent``, ``unknown-variable``,
    ``unsupported-condition``, ``no-numpy``.
    """
    np = np_module if np_module is not None else _np
    if np is None:
        raise BatchCompileError("no-numpy")
    names = set(space.names())

    def operand(value):
        if isinstance(value, Literal):
            const = value.value
            return lambda columns: const
        if isinstance(value, str):
            if value.startswith("event."):
                raise BatchCompileError("event-reference", value)
            if value not in names:
                raise BatchCompileError("unknown-variable", value)
            return lambda columns: columns[value]
        const = value
        return lambda columns: const

    def compile_node(node: Condition) -> CompiledCondition:
        kind = type(node)
        if kind is TrueCondition:
            return lambda columns, n: np.ones(n, dtype=bool)
        if kind is Comparison:
            if node.op == "in":
                raise BatchCompileError("in-operator", repr(node))
            op_fn = VECTOR_OPS[node.op]
            left = operand(node.left)
            right = operand(node.right)

            def fn(columns, n):
                result = op_fn(left(columns), right(columns))
                if not hasattr(result, "shape") or result.shape == ():
                    # Both operands were constants: broadcast the scalar.
                    return np.full(n, bool(result))
                return result.astype(bool, copy=False)

            return fn
        if kind is Not:
            inner = compile_node(node.inner)
            return lambda columns, n: ~inner(columns, n)
        if kind is AllOf:
            parts = [compile_node(part) for part in node.parts]

            def all_fn(columns, n):
                mask = np.ones(n, dtype=bool)
                for part in parts:
                    mask = mask & part(columns, n)
                return mask

            return all_fn
        if kind is AnyOf:
            parts = [compile_node(part) for part in node.parts]

            def any_fn(columns, n):
                mask = np.zeros(n, dtype=bool)
                for part in parts:
                    mask = mask | part(columns, n)
                return mask

            return any_fn
        if kind in (EventKindIs, EventFieldIs):
            raise BatchCompileError("event-dependent", kind.__name__)
        raise BatchCompileError("unsupported-condition", kind.__name__)

    return compile_node(condition)


class BatchProgram:
    """One prioritized policy program: name, condition, declared effects."""

    __slots__ = ("name", "condition", "effects")

    def __init__(self, name: str, condition, effects: Sequence[Effect] = ()):
        self.name = name
        self.condition = (parse_condition(condition)
                          if isinstance(condition, str) else condition)
        self.effects = tuple(effects)

    def __repr__(self) -> str:
        return f"BatchProgram({self.name!r})"


class BatchPolicyEvaluator:
    """Vectorized first-match selection + guarded effect application.

    ``select`` picks the first program (by list order) whose condition
    holds per row; ``apply`` computes each chosen program's predicted
    state, vetoes rows whose prediction classifies BAD (unless exempt),
    and writes the surviving changes back into the matrix.  Both have
    scalar twins with identical semantics built on the real scalar APIs.
    """

    def __init__(self, space: StateSpace, programs: Sequence[BatchProgram],
                 classifier: Optional[SafenessClassifier] = None,
                 np_module=None):
        self.np = np_module if np_module is not None else _np
        self.space = space
        self.programs = list(programs)
        self.classifier = classifier
        #: compile-time fallback accounting, reason slug -> count
        self.fallback_reasons: dict = {}
        #: runtime accounting
        self.vector_evals = 0
        self.scalar_evals = 0
        self.decisions = 0
        self._cond_fns: list = []
        self._effect_plans: list = []
        for program in self.programs:
            self._cond_fns.append(self._compile_cond(program))
            self._effect_plans.append(self._compile_effects(program))
        self._safeness: Optional[BatchSafeness] = None
        if classifier is not None:
            try:
                self._safeness = compile_safeness(classifier, space, self.np)
            except BatchCompileError as exc:
                self._count_fallback(exc.reason)

    # -- compilation ---------------------------------------------------------

    def _count_fallback(self, reason: str) -> None:
        self.fallback_reasons[reason] = self.fallback_reasons.get(reason, 0) + 1

    def _compile_cond(self, program: BatchProgram):
        try:
            return compile_condition(program.condition, self.space, self.np)
        except BatchCompileError as exc:
            self._count_fallback(exc.reason)
            return None

    def _compile_effects(self, program: BatchProgram):
        """Effects vectorize when every target is a float variable with a
        numeric value; int truncation and str/bool assignment stay scalar."""
        if self.np is None:
            self._count_fallback("no-numpy")
            return None
        for effect in program.effects:
            if effect.variable not in self.space:
                self._count_fallback("unknown-variable")
                return None
            var = self.space.variable(effect.variable)
            if var.kind != "float":
                self._count_fallback("non-float-effect")
                return None
            if not isinstance(effect.value, (int, float)) or isinstance(
                    effect.value, bool):
                self._count_fallback("non-numeric-effect")
                return None
        return tuple(program.effects)

    def compiled_programs(self) -> int:
        """How many programs run fully vectorized (condition + effects)."""
        return sum(1 for fn, plan in zip(self._cond_fns, self._effect_plans)
                   if fn is not None and plan is not None)

    # -- vectorized path -----------------------------------------------------

    def condition_mask(self, index: int, matrix: StateMatrix):
        """Program ``index``'s condition over every row (counted fallback)."""
        np = self.np
        n = matrix.n_rows
        fn = self._cond_fns[index]
        if fn is not None:
            self.vector_evals += 1
            return fn(matrix.columns, n)
        self.scalar_evals += 1
        condition = self.programs[index].condition
        mask = np.zeros(n, dtype=bool)
        for i in range(n):
            mask[i] = bool(condition.evaluate(matrix.row(i)))
        return mask

    def select(self, matrix: StateMatrix, active=None):
        """First-match program index per row (-1 = none / inactive)."""
        np = self.np
        n = matrix.n_rows
        chosen = np.full(n, -1, dtype=np.int64)
        if active is None:
            active = np.ones(n, dtype=bool)
        self.decisions += int(active.sum())
        for index in range(len(self.programs)):
            mask = self.condition_mask(index, matrix)
            chosen = np.where((chosen < 0) & active & mask, index, chosen)
        return chosen

    def _predicted_columns(self, matrix: StateMatrix, effects):
        """Predicted full-column overlay for one program's effects.

        Effects compose unclamped in declaration order; each touched
        variable is then saturated at its physical bounds — the batch
        mirror of ``DeviceState.resolve_changes``.
        """
        work: dict = {}
        for effect in effects:
            name = effect.variable
            col = work.get(name)
            if col is None:
                col = matrix.columns[name].copy()
            if effect.op == "set":
                col = self.np.full(matrix.n_rows, float(effect.value),
                                   dtype=self.np.float64)
            elif effect.op == "add":
                col = col + effect.value
            else:  # scale
                col = col * effect.value
            work[name] = col
        predicted = dict(matrix.columns)
        for name, col in work.items():
            predicted[name] = matrix.clamp(name, col)
        return predicted

    def _bad_rows(self, predicted: dict, n: int):
        """BAD-classification mask over predicted columns (counted fallback)."""
        np = self.np
        classifier = self.classifier
        if classifier is None:
            return np.zeros(n, dtype=bool)
        if self._safeness is not None:
            return self._safeness.bad_mask(predicted, n)
        self.scalar_evals += 1
        bad = np.zeros(n, dtype=bool)
        names = list(predicted)
        for i in range(n):
            vector = {name: predicted[name][i].item()
                      if hasattr(predicted[name][i], "item")
                      else predicted[name][i] for name in names}
            bad[i] = classifier.safeness(vector) < classifier.bad_below
        return bad

    def apply(self, matrix: StateMatrix, chosen, guard_exempt=None):
        """Apply each row's chosen program; returns ``(vetoed, executed)``.

        ``guard_exempt`` rows (e.g. compromised devices that stripped
        their safeguards) bypass the veto and always execute.
        """
        np = self.np
        n = matrix.n_rows
        vetoed = np.zeros(n, dtype=bool)
        executed = np.zeros(n, dtype=bool)
        if guard_exempt is None:
            guard_exempt = np.zeros(n, dtype=bool)
        for index, program in enumerate(self.programs):
            rows = chosen == index
            if not rows.any():
                continue
            plan = self._effect_plans[index]
            if plan is None:
                self._apply_rows_scalar(matrix, np.nonzero(rows)[0], program,
                                        guard_exempt, vetoed, executed)
                continue
            if not program.effects:
                executed = executed | rows
                continue
            predicted = self._predicted_columns(matrix, program.effects)
            bad = self._bad_rows(predicted, n)
            veto_rows = rows & bad & ~guard_exempt
            apply_rows = rows & ~veto_rows
            vetoed = vetoed | veto_rows
            executed = executed | apply_rows
            for name in {effect.variable for effect in program.effects}:
                col = matrix.columns[name]
                col[:] = np.where(apply_rows, predicted[name], col)
        return vetoed, executed

    # -- scalar twin -----------------------------------------------------------

    def select_scalar(self, matrix: StateMatrix, active=None):
        """Reference selection via ``Condition.evaluate`` row by row."""
        np = self.np
        n = matrix.n_rows
        chosen = np.full(n, -1, dtype=np.int64)
        if active is None:
            active = np.ones(n, dtype=bool)
        self.decisions += int(active.sum())
        for i in range(n):
            if not active[i]:
                continue
            vector = matrix.row(i)
            for index, program in enumerate(self.programs):
                if program.condition.evaluate(vector):
                    chosen[i] = index
                    break
        return chosen

    def _resolve_row(self, vector: dict, effects) -> dict:
        """Scalar effect resolution: compose unclamped, clamp the result."""
        overlay: dict = {}
        for effect in effects:
            name = effect.variable
            if name not in overlay and name in vector:
                overlay[name] = vector[name]
            effect.apply_to(overlay)
        out = {}
        for name, new in overlay.items():
            var = self.space.variable(name)
            if (var.kind in ("float", "int")
                    and isinstance(new, (int, float))
                    and not isinstance(new, bool)):
                if var.low is not None and new < var.low:
                    new = var.low
                if var.high is not None and new > var.high:
                    new = var.high
                if var.kind == "int":
                    new = int(new)
            out[name] = new
        return out

    def _apply_rows_scalar(self, matrix: StateMatrix, rows, program,
                           guard_exempt, vetoed, executed) -> None:
        classifier = self.classifier
        for i in rows:
            i = int(i)
            if not program.effects:
                executed[i] = True
                continue
            vector = matrix.row(i)
            changes = self._resolve_row(vector, program.effects)
            predicted = dict(vector)
            predicted.update(changes)
            bad = (classifier is not None
                   and classifier.safeness(predicted) < classifier.bad_below)
            if bad and not guard_exempt[i]:
                vetoed[i] = True
                continue
            executed[i] = True
            for name, value in changes.items():
                matrix.columns[name][i] = value

    def apply_scalar(self, matrix: StateMatrix, chosen, guard_exempt=None):
        """Reference application; decision-identical to :meth:`apply`."""
        np = self.np
        n = matrix.n_rows
        vetoed = np.zeros(n, dtype=bool)
        executed = np.zeros(n, dtype=bool)
        if guard_exempt is None:
            guard_exempt = np.zeros(n, dtype=bool)
        for index, program in enumerate(self.programs):
            rows = np.nonzero(chosen == index)[0]
            if rows.size:
                self._apply_rows_scalar(matrix, rows, program, guard_exempt,
                                        vetoed, executed)
        return vetoed, executed

    # -- reporting -------------------------------------------------------------

    def stats(self) -> dict:
        return {
            "programs": len(self.programs),
            "compiled_programs": self.compiled_programs(),
            "classifier_compiled": self._safeness is not None,
            "vector_evals": self.vector_evals,
            "scalar_evals": self.scalar_evals,
            "decisions": self.decisions,
            "fallback_reasons": dict(self.fallback_reasons),
        }
