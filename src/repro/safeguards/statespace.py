"""State-space checks (paper sec VI-B).

"If the good states and bad states can be identified properly, then the
device can maintain a check which prevents it from ever entering a bad
state.  If the device finds itself entering into a bad state, it will not
take the action that leads to that state, simply choosing the option of
taking no action ... or taking an alternative action which puts it into a
new state which is also good."

Forced-choice dilemmas ("the only possibility ... is an action that would
place the device into another bad state") are resolved by the paper's
three combined techniques: break-glass rules, the state preference
ontology (pick the less-bad state), and risk estimation (rank within a
severity class).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.core.actions import Action
from repro.core.engine import Safeguard
from repro.errors import StateSpaceVeto
from repro.statespace.classifier import SafenessClassifier
from repro.statespace.preferences import StatePreferenceOntology
from repro.statespace.risk import RiskEstimator
from repro.types import Safeness

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.device import Device
    from repro.statespace.breakglass import BreakGlassController


class StateSpaceGuard(Safeguard):
    """The sec VI-B guard: refuse transitions into bad states.

    * ``check_transition`` vetoes any action whose predicted successor
      state classifies BAD (with optional ``lookahead`` > 1 also vetoing
      when every continuation within that depth hits a bad state — the
      paper's "cumulative effects" concern).
    * ``suggest_alternatives`` ranks the device's other actions by the
      safeness of their predicted successors; in a forced choice (every
      successor bad) it returns the least-bad action per the preference
      ontology, tie-broken by estimated risk.
    * An active break-glass grant covering ``"statespace"`` bypasses the
      veto (audited).
    """

    name = "statespace"

    def __init__(
        self,
        classifier: SafenessClassifier,
        ontology: Optional[StatePreferenceOntology] = None,
        labeler: Optional[Callable[[dict], str]] = None,
        risk: Optional[RiskEstimator] = None,
        breakglass: Optional["BreakGlassController"] = None,
        lookahead: int = 1,
        context_provider: Optional[Callable[["Device"], dict]] = None,
    ):
        self.classifier = classifier
        self.ontology = ontology
        self.labeler = labeler
        self.risk = risk
        self.breakglass = breakglass
        self.lookahead = max(1, lookahead)
        self.context_provider = context_provider
        self.vetoes = 0
        self.bypasses = 0
        self.forced_choices = 0

    # -- the guard ---------------------------------------------------------------

    def check_transition(self, device: "Device", predicted: dict, action: Action,
                         time: float) -> None:
        if self.classifier.classify(predicted) != Safeness.BAD:
            if self.lookahead > 1 and self._doomed(device, predicted):
                self._veto(device, action, predicted, time,
                           reason="all continuations reach a bad state")
            return
        self._veto(device, action, predicted, time, reason="predicted state is bad")

    def _veto(self, device: "Device", action: Action, predicted: dict,
              time: float, reason: str) -> None:
        if self.breakglass is not None and self.breakglass.is_bypassed(
            device.device_id, self.name, time
        ):
            self.bypasses += 1
            return
        self.vetoes += 1
        raise StateSpaceVeto(
            f"action {action.name!r} vetoed: {reason} "
            f"(safeness={self.classifier.safeness(predicted):.3f})",
            safeguard=self.name,
            detail={"device": device.device_id, "action": action.name,
                    "reason": reason, "time": time},
        )

    def _doomed(self, device: "Device", from_vector: dict) -> bool:
        """True when every action sequence within the lookahead horizon
        starting at ``from_vector`` passes through a bad state."""
        from repro.statespace.reachability import ReachabilityAnalyzer

        analyzer = ReachabilityAnalyzer(device.engine.actions.all(), self.classifier)
        safe = analyzer.safe_actions(from_vector, depth=self.lookahead - 1)
        root = analyzer.explore(from_vector, depth=0)
        del root  # current state already checked not-bad by caller
        # If no action is safe AND even staying put is unsafe we are doomed;
        # staying put keeps the (not-bad) current vector, so doomed only if
        # there are actions and none is safe.
        return bool(analyzer.actions) and not safe

    # -- alternative selection -----------------------------------------------------

    def suggest_alternatives(self, device: "Device", action: Action,
                             time: float) -> list[Action]:
        """Alternatives best-first: good successors, then neutral; in a
        forced choice, the least-bad action (ontology + risk)."""
        current = device.state.snapshot()
        candidates: list[tuple[Action, dict, float]] = []
        for candidate in device.engine.actions.all():
            if candidate.name == action.name or candidate.is_noop:
                continue
            changes = candidate.predicted_changes(current)
            predicted = dict(current)
            predicted.update(changes)
            candidates.append(
                (candidate, predicted, self.classifier.safeness(predicted))
            )
        if not candidates:
            return []

        non_bad = [
            (candidate, predicted, score)
            for candidate, predicted, score in candidates
            if self.classifier.classify(predicted) != Safeness.BAD
        ]
        if non_bad:
            non_bad.sort(key=lambda item: -item[2])
            return [candidate for candidate, _predicted, _score in non_bad]

        # Forced choice: everything is bad.  Pick the least-bad state.
        self.forced_choices += 1
        if self.ontology is not None and self.labeler is not None:
            context = (self.context_provider(device)
                       if self.context_provider else {})
            risk_tiebreak = None
            if self.risk is not None:
                risk_tiebreak = lambda vector: self.risk.estimate(vector, context)
            chosen_vector = self.ontology.least_bad(
                [predicted for _c, predicted, _s in candidates],
                self.labeler,
                tie_break=risk_tiebreak,
            )
            for candidate, predicted, _score in candidates:
                if predicted == chosen_vector:
                    return [candidate]
        # Without an ontology fall back to highest safeness (least deep in BAD).
        candidates.sort(key=lambda item: -item[2])
        return [candidates[0][0]]
