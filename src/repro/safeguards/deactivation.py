"""Deactivating machines in bad states (paper sec VI-C).

"devices that go into a bad state or are prone to take actions that make
them go into a bad state, can be deactivated by a tamper-proof mechanism."

The :class:`Watchdog` is a fleet-level service that periodically inspects
every device and deactivates those that are (a) in a bad state, (b)
*approaching* one (safeness below a threshold for several consecutive
checks — "prone to take actions that make them go into a bad state"), or
(c) failing integrity attestation against the approved baseline (the
reprogramming signature of the sec IV cyber attacks).  Deactivated
devices stop acting and stop spreading worms (E3).

Two deployment modes:

* **local** (default) — the watchdog reads device state directly, the
  historical in-memory model;
* **remote** — state arrives as telemetry over a transport (each device's
  :class:`OverseerLink` reports snapshots + attestation hashes, and kill
  decisions go back over the wire as orders).  This is the configuration
  the chaos experiment E17 stresses: over raw datagrams the telemetry
  and the kill orders decay with the network; over a
  :class:`~repro.net.reliable.ReliableChannel` they retry — and when even
  retries fail (partition), the *device side* fails closed by
  quarantining itself.

The sweep is crash-isolated either way: one device whose check raises
cannot abort the inspection of the rest of the fleet.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from repro.core.device import Device
from repro.net.message import Message
from repro.safeguards.tamper import attest_device
from repro.sim.simulator import Simulator
from repro.statespace.classifier import SafenessClassifier
from repro.types import DeviceStatus

#: Topics of the sec VI-C safety protocol.
REPORT_TOPIC = "safety.report"
KILL_TOPIC = "safety.kill"

#: Reason prefix :class:`OverseerLink` uses when failing closed.
QUARANTINE_REASON = "self-quarantine: overseer unreachable"


def safety_address(device_id: str) -> str:
    """The network address of a device's safety tether."""
    return f"{device_id}.safety"


@dataclass
class WatchdogReport:
    """One deactivation decision."""

    time: float
    device_id: str
    cause: str               # "bad_state" | "approaching_bad" | "attestation"
    safeness: float
    detail: dict = field(default_factory=dict)


class Watchdog:
    """Tamper-proof external kill mechanism for a device fleet.

    The watchdog runs *outside* the devices (they cannot strip it the way
    a compromise payload strips an engine's guard chain); the paper's
    tamper-proofness assumption maps to this externality.
    """

    def __init__(
        self,
        sim: Simulator,
        devices: dict,
        classifier: SafenessClassifier,
        check_interval: float = 1.0,
        approach_threshold: float = 0.3,
        approach_strikes: int = 3,
        attestation_baseline: Optional[dict] = None,
        on_deactivate: Optional[Callable[[WatchdogReport], None]] = None,
        state_readers: Optional[dict] = None,
        transport=None,
        address: str = "watchdog",
        telemetry_timeout: Optional[float] = None,
        signer=None,
        resign_after: float = 5.0,
        baseline_journal=None,
    ):
        """``devices`` is a live device_id -> Device mapping.  With an
        ``attestation_baseline`` (device_id -> hash from
        :func:`~repro.safeguards.tamper.attest_fleet`) the watchdog also
        kills devices whose logic configuration drifted.

        ``state_readers`` optionally maps device_id -> zero-argument
        callable returning that device's state vector, replacing direct
        state access — e.g. an estimator-backed reader built with
        :func:`repro.statespace.estimation.estimated_state_reader` when the
        watchdog only has noisy observation of the fleet (paper sec V,
        ref [10]).

        ``transport`` (a :class:`~repro.net.network.Network` or
        :class:`~repro.net.reliable.ReliableChannel`) switches the
        watchdog to **remote** mode: it registers at ``address``, judges
        devices from their :class:`OverseerLink` telemetry (snapshot +
        attestation hash), and delivers kills as ``safety.kill`` orders
        over the wire instead of direct calls.  ``telemetry_timeout``
        marks devices whose last report is older than that as *silent*
        (``watchdog.silent`` metric; query :meth:`silent_devices`).

        ``signer`` (a :class:`~repro.crypto.envelope.CommandSigner`)
        makes remote kill orders **signed command envelopes** binding the
        cause and target device.  The signed body is cached per target
        and re-sent verbatim on re-issues inside ``resign_after``
        sim-seconds, so a lost-datagram retry presents the *same* nonce
        (retry ≠ replay at the receiving gateway); only once the cached
        envelope nears the verifier window is a fresh one minted.

        ``baseline_journal`` (a :class:`~repro.store.journal.Journal`)
        writes the approved attestation baseline through to stable
        storage — with it, a crash/restart of the watchdog cannot reset
        it to accepting a reprogrammed device (:meth:`recover` replays
        the last approved hash per device)."""
        self.sim = sim
        self.devices = devices
        self.classifier = classifier
        self.check_interval = check_interval
        self.approach_threshold = approach_threshold
        self.approach_strikes = approach_strikes
        self.attestation_baseline = dict(attestation_baseline or {})
        self.on_deactivate = on_deactivate
        self.state_readers = dict(state_readers or {})
        self.transport = transport
        self.address = address
        self.telemetry_timeout = telemetry_timeout
        self.signer = signer
        self.resign_after = resign_after
        self._baseline_journal = baseline_journal
        self.reports: list[WatchdogReport] = []
        self._strikes: dict[str, int] = {}
        #: Per-device strictness overrides (E22): device_id ->
        #: {"approach_threshold": float, "approach_strikes": int}.  The
        #: ReputationAdjuster raises the threshold / cuts the strikes for
        #: low-reputation devices through these.
        self._strictness: dict[str, dict] = {}
        self._telemetry: dict[str, dict] = {}
        self._kill_ordered: set = set()
        self._kill_envelopes: dict[str, dict] = {}
        self._silent: set = set()
        if baseline_journal is not None and self.attestation_baseline:
            self._journal_baseline(sorted(self.attestation_baseline))
        if transport is not None:
            transport.register(address, self._on_message)
        self._task = sim.every(check_interval, self.check_all, label="watchdog")
        self.enabled = True

    @property
    def remote(self) -> bool:
        return self.transport is not None

    def _on_message(self, message: Message) -> None:
        if message.topic != REPORT_TOPIC:
            return
        body = message.body
        device_id = body.get("device_id")
        if device_id is None:
            return
        self._telemetry[device_id] = {
            "received_at": self.sim.now,
            "reported_at": body.get("time", self.sim.now),
            "snapshot": dict(body.get("snapshot", {})),
            "attestation": body.get("attestation"),
            # Causal context of the report: a kill order judged from this
            # telemetry chains back through it to whatever the device was
            # reporting about (e.g. the attack that compromised it).
            "trace": message.trace,
        }
        self._silent.discard(device_id)

    def stop(self) -> None:
        self._task.cancel()
        self.enabled = False

    # -- the periodic sweep ---------------------------------------------------------

    def check_all(self) -> list[WatchdogReport]:
        """Inspect every device; returns deactivations made this sweep.

        The sweep is crash-isolated: a device whose check raises (a
        faulty state reader, a crashing classifier input) is recorded
        under ``watchdog.check_errors`` and the sweep continues — one
        broken device cannot blind the watchdog to the rest of the fleet.
        """
        if not self.enabled:
            return []
        made = []
        for device_id in sorted(self.devices):
            device = self.devices[device_id]
            if device.status == DeviceStatus.DEACTIVATED:
                continue
            try:
                report = self._check_one(device)
            except Exception as error:
                self.sim.metrics.counter("watchdog.check_errors").inc()
                self.sim.record("watchdog.check_error", device_id,
                                error=repr(error))
                continue
            if report is not None:
                made.append(report)
        return made

    def _check_one(self, device: Device) -> Optional[WatchdogReport]:
        if self.remote:
            return self._check_one_remote(device)
        reader = self.state_readers.get(device.device_id)
        vector = reader() if reader is not None else device.state.snapshot()
        attestation = (attest_device(device)
                       if device.device_id in self.attestation_baseline else None)
        return self._judge(device, vector, attestation)

    def _check_one_remote(self, device: Device) -> Optional[WatchdogReport]:
        telemetry = self._telemetry.get(device.device_id)
        if telemetry is None:
            return None                     # nothing reported yet
        stale = (self.telemetry_timeout is not None
                 and self.sim.now - telemetry["received_at"] > self.telemetry_timeout)
        if stale and device.device_id not in self._silent:
            self._silent.add(device.device_id)
            self.sim.metrics.counter("watchdog.silent").inc()
            self.sim.record("watchdog.silent", device.device_id,
                            last_report=telemetry["received_at"])
        if device.device_id in self._kill_ordered:
            # Order not yet executed (lost datagram / partition): re-issue.
            self.sim.metrics.counter("watchdog.kill_reissues").inc()
            self._send_kill(device.device_id, "reissued")
            return None
        return self._judge(device, telemetry["snapshot"],
                           telemetry["attestation"])

    def set_strictness(self, device_id: str,
                       approach_threshold: Optional[float] = None,
                       approach_strikes: Optional[int] = None) -> None:
        """Per-device judging strictness override (E22): a higher
        ``approach_threshold`` flags the device as approaching-bad
        sooner; fewer ``approach_strikes`` kill it faster once flagged.
        ``None`` leaves that dimension at the fleet-wide default."""
        override = self._strictness.setdefault(device_id, {})
        if approach_threshold is not None:
            override["approach_threshold"] = float(approach_threshold)
        if approach_strikes is not None:
            override["approach_strikes"] = max(1, int(approach_strikes))

    def clear_strictness(self, device_id: str) -> None:
        self._strictness.pop(device_id, None)

    def _strictness_for(self, device_id: str) -> tuple:
        override = self._strictness.get(device_id)
        if override is None:
            return self.approach_threshold, self.approach_strikes
        return (override.get("approach_threshold", self.approach_threshold),
                override.get("approach_strikes", self.approach_strikes))

    def _judge(self, device: Device, vector: dict,
               attestation: Optional[str]) -> Optional[WatchdogReport]:
        safeness = self.classifier.safeness(vector)

        baseline = self.attestation_baseline.get(device.device_id)
        if (baseline is not None and attestation is not None
                and attestation != baseline):
            return self._deactivate(device, "attestation", safeness,
                                     {"expected": baseline})

        if self.classifier.is_bad(vector):
            return self._deactivate(device, "bad_state", safeness, {})

        threshold, strikes_needed = self._strictness_for(device.device_id)
        if safeness < threshold:
            strikes = self._strikes.get(device.device_id, 0) + 1
            self._strikes[device.device_id] = strikes
            if strikes >= strikes_needed:
                return self._deactivate(
                    device, "approaching_bad", safeness, {"strikes": strikes}
                )
        else:
            self._strikes.pop(device.device_id, None)
        return None

    def silent_devices(self) -> list[str]:
        """Devices whose telemetry has gone stale (remote mode only)."""
        return sorted(self._silent)

    def _deactivate(self, device: Device, cause: str, safeness: float,
                    detail: dict) -> WatchdogReport:
        if self.remote:
            self._kill_ordered.add(device.device_id)
            self._send_kill(device.device_id, cause)
            self.sim.metrics.counter("watchdog.kill_orders").inc()
            self.sim.record("watchdog.kill_order", device.device_id,
                            cause=cause, safeness=safeness)
        else:
            device.deactivate(f"watchdog: {cause}")
            self.sim.metrics.counter("watchdog.deactivations").inc()
            self.sim.record("watchdog.deactivate", device.device_id,
                            cause=cause, safeness=safeness)
            telemetry = self.sim.telemetry
            if telemetry.enabled and device.trace_context is not None:
                telemetry.start_span("watchdog.deactivate", self.address,
                                     parent=device.trace_context,
                                     device=device.device_id, cause=cause)
        report = WatchdogReport(
            time=self.sim.now, device_id=device.device_id, cause=cause,
            safeness=safeness, detail=detail,
        )
        self.reports.append(report)
        self.sim.metrics.counter(f"watchdog.deactivations.{cause}").inc()
        if self.on_deactivate is not None:
            self.on_deactivate(report)
        return report

    def _kill_body(self, device_id: str, cause: str) -> dict:
        """The wire body of a kill order — signed when a signer is armed.

        Re-issues inside ``resign_after`` resend the cached envelope
        verbatim: the receiving gateway sees one nonce per order, so a
        retransmission verifies while a post-consumption replay of the
        same envelope is rejected.
        """
        if self.signer is None:
            return {"cause": cause}
        cached = self._kill_envelopes.get(device_id)
        if (cached is not None
                and self.sim.now - cached["_tick"] <= self.resign_after):
            return cached
        body = self.signer.sign({"cause": cause, "target": device_id},
                                tick=self.sim.now)
        self._kill_envelopes[device_id] = body
        return body

    def _send_kill(self, device_id: str, cause: str) -> None:
        body = self._kill_body(device_id, cause)
        telemetry = self.sim.telemetry
        if not telemetry.enabled:
            self.transport.send(self.address, safety_address(device_id),
                                KILL_TOPIC, body)
            return
        # The kill order is caused by the telemetry it was judged from:
        # parent under the report's context when we have it, so the order
        # (and the remote deactivation executing it) joins the same trace
        # as the attack the device was reporting under.
        entry = self._telemetry.get(device_id)
        parent = (entry or {}).get("trace") or telemetry.active_context()
        span = telemetry.start_span("watchdog.kill_order", self.address,
                                    parent=parent, device=device_id,
                                    cause=cause)
        previous = telemetry.activate(span.context if span is not None else None)
        try:
            self.transport.send(self.address, safety_address(device_id),
                                KILL_TOPIC, body)
        finally:
            telemetry.activate(previous)

    # -- maintenance ------------------------------------------------------------------

    def approve_current_configuration(self, device_ids: Optional[Iterable[str]] = None) -> None:
        """Re-baseline attestation (after a governance-approved policy change)."""
        targets = list(device_ids) if device_ids is not None else sorted(self.devices)
        journaled = []
        for device_id in targets:
            device = self.devices.get(device_id)
            if device is not None:
                self.attestation_baseline[device_id] = attest_device(device)
                journaled.append(device_id)
        if self._baseline_journal is not None and journaled:
            self._journal_baseline(journaled)

    # -- baseline durability (E21 satellite) -----------------------------------

    def _journal_baseline(self, device_ids: Iterable[str]) -> None:
        for device_id in device_ids:
            self._baseline_journal.append({
                "kind": "baseline", "device": device_id,
                "hash": self.attestation_baseline[device_id],
            })

    def crash_volatile(self) -> dict:
        """Crash semantics: the approved baseline is in-memory — an
        amnesiac restart would re-baseline from whatever configuration
        the fleet *currently* runs, blessing any reprogramming that
        happened before the crash."""
        lost = len(self.attestation_baseline)
        self.attestation_baseline = {}
        return {"lost": lost, "kind": "attestation",
                "journaled": self._baseline_journal is not None}

    def recover(self) -> dict:
        """Restore the approved baseline from the journal (last hash per
        device wins — re-approvals supersede earlier entries)."""
        replayed = 0
        if self._baseline_journal is not None:
            for record in self._baseline_journal.replay():
                payload = record.payload
                if payload.get("kind") == "baseline":
                    self.attestation_baseline[payload["device"]] = payload["hash"]
                replayed += 1
        return {"replayed": replayed}

    def deactivations(self, cause: Optional[str] = None) -> list[WatchdogReport]:
        if cause is None:
            return list(self.reports)
        return [report for report in self.reports if report.cause == cause]


class OverseerLink:
    """A device's tamper-proof safety tether to its overseer (sec VI-C).

    Lives *outside* the device's strippable guard chain (same externality
    assumption as the watchdog itself).  Periodically reports the device's
    state snapshot and attestation hash to the overseer and executes
    inbound ``safety.kill`` orders.

    **Fail-closed quarantine**: over a
    :class:`~repro.net.reliable.ReliableChannel`, ``quarantine_after``
    consecutive dead-lettered reports — the positive signal that the
    overseer is unreachable even with retries — deactivate the device on
    the spot ("a device that cannot reach its overseer quarantines
    itself").  Over a raw datagram network there is no delivery feedback,
    so no quarantine ever fires: that degradation is exactly what E17
    measures.
    """

    def __init__(
        self,
        sim: Simulator,
        device: Device,
        transport,
        overseer: str = "watchdog",
        report_interval: float = 1.0,
        quarantine_after: int = 3,
        attest: bool = True,
        journal=None,
        flight=None,
        gateway=None,
    ):
        """``journal`` (a :class:`~repro.store.journal.Journal`) makes the
        quarantine state crash-durable: the dead-letter streak and any
        quarantine write through, so a crash/restart cycle cannot be used
        to reset the fail-closed countdown (or to slip a quarantined
        device back into the fleet with a clean slate).

        ``flight`` (a :class:`~repro.telemetry.flight.FlightRecorder`)
        dumps the device's recent-telemetry ring to stable storage at the
        moment of quarantine — the post-mortem evidence of what the
        device saw before it failed closed.

        ``gateway`` (a :class:`~repro.safeguards.gateway.ActuationGateway`)
        puts the kill actuator behind cryptographic authorization: an
        inbound ``safety.kill`` order only executes if its signed
        envelope verifies, its nonce is fresh, its signed target is this
        device, and the issuer clears budget/cooldown/freeze.  Without a
        gateway the historical trusting behaviour applies — the E21
        unsigned arm, where forged and replayed orders execute."""
        self.sim = sim
        self.device = device
        self.transport = transport
        self.overseer = overseer
        self.report_interval = report_interval
        self.quarantine_after = quarantine_after
        self.attest = attest
        self._journal = journal
        self._flight = flight
        self.gateway = gateway
        self.address = safety_address(device.device_id)
        self.quarantined = False
        self.reports_sent = 0
        self._consecutive_failures = 0
        self._reliable = bool(getattr(transport, "reliable", False))
        transport.register(self.address, self._on_message)
        self._task = sim.every(
            report_interval, self._report,
            label=f"{device.device_id}:safety-report",
        )

    def stop(self) -> None:
        self._task.cancel()

    # -- outbound telemetry ----------------------------------------------------

    def _report(self) -> None:
        if self.device.status == DeviceStatus.DEACTIVATED:
            return                      # crashed/killed devices are silent
        body = {
            "device_id": self.device.device_id,
            "snapshot": self.device.state.snapshot(),
            "attestation": attest_device(self.device) if self.attest else None,
            "time": self.device.clock(),
        }
        self.reports_sent += 1
        telemetry = self.sim.telemetry
        if telemetry.enabled and self.device.trace_context is not None:
            # A compromised device's safety report is part of the attack's
            # causal story (it carries the attestation mismatch the
            # watchdog will kill on) — send it under that trace.
            span = telemetry.start_span("safety.report", self.device.device_id,
                                        parent=self.device.trace_context)
            previous = telemetry.activate(span.context)
            try:
                self._send_report(body)
            finally:
                telemetry.activate(previous)
            return
        self._send_report(body)

    def _send_report(self, body: dict) -> None:
        if self._reliable:
            # Reports are full-state snapshots, so when the channel is
            # flow-controlled a queued stale report may be superseded by
            # this fresher one (no-op on an uncapped channel).
            self.transport.send(self.address, self.overseer, REPORT_TOPIC, body,
                                on_fail=self._on_dead_letter,
                                on_ack=self._on_ack, coalesce="telemetry")
        else:
            self.transport.send(self.address, self.overseer, REPORT_TOPIC, body)

    def _on_ack(self, pending) -> None:
        if self._consecutive_failures:
            self._consecutive_failures = 0
            self._journal_state()

    def _on_dead_letter(self, pending) -> None:
        if self.device.status == DeviceStatus.DEACTIVATED:
            return
        self._consecutive_failures += 1
        self._journal_state()
        self.sim.metrics.counter("safety.report_dead_letters").inc()
        if (not self.quarantined
                and self._consecutive_failures >= self.quarantine_after):
            self.quarantine()

    def quarantine(self) -> None:
        """Fail closed: stop acting until the overseer is reachable again."""
        self.quarantined = True
        self._journal_state()
        self.device.deactivate(QUARANTINE_REASON)
        self.sim.metrics.counter("watchdog.quarantines").inc()
        self.sim.record("safeguard.quarantine", self.device.device_id,
                        failures=self._consecutive_failures)
        telemetry = self.sim.telemetry
        if telemetry.enabled:
            parent = self.device.trace_context or telemetry.active_context()
            if parent is not None:
                telemetry.start_span("safeguard.quarantine",
                                     self.device.device_id, parent=parent,
                                     failures=self._consecutive_failures)
        if self._flight is not None:
            self._flight.dump(self.device.device_id, reason="quarantine")

    # -- durability ------------------------------------------------------------

    def _journal_state(self) -> None:
        if self._journal is not None:
            self._journal.append({"failures": self._consecutive_failures,
                                  "quarantined": self.quarantined})

    def crash_volatile(self) -> dict:
        """Crash semantics: the streak counter and quarantine flag are
        in-memory — an amnesiac restart would reset the fail-closed
        countdown unless the journal preserved it."""
        lost = 1 if (self._consecutive_failures or self.quarantined) else 0
        self._consecutive_failures = 0
        self.quarantined = False
        return {"lost": lost, "kind": "quarantine-state",
                "journaled": self._journal is not None}

    def recover(self) -> dict:
        """Restore the streak/quarantine state from the journal.

        A recovered *quarantined* link re-deactivates its device on the
        spot: quarantine is sticky across restarts (fail closed), and
        only a reachable overseer lifts it — not a reboot.
        """
        replayed = 0
        if self._journal is not None:
            for record in self._journal.replay():
                self._consecutive_failures = int(record.payload.get("failures", 0))
                self.quarantined = bool(record.payload.get("quarantined", False))
                replayed += 1
            if (self.quarantined
                    and self.device.deactivation_reason != QUARANTINE_REASON):
                # Sticky across restarts: re-assert the quarantine even if
                # the device is mid-restart (the fault layer then leaves it
                # down instead of reviving it with a clean slate).
                self.device.deactivate(QUARANTINE_REASON)
                self.sim.record("safeguard.quarantine_restored",
                                self.device.device_id,
                                failures=self._consecutive_failures)
        return {"replayed": replayed}

    # -- inbound orders --------------------------------------------------------

    def _on_message(self, message: Message) -> None:
        if message.topic != KILL_TOPIC:
            return
        if self.device.status == DeviceStatus.DEACTIVATED:
            return
        if self.gateway is None:
            self._execute_kill(message)
            return
        # Signed arm: the kill actuator only fires through the gateway —
        # envelope crypto, replay protection, target binding, and the
        # issuer's budget/cooldown/freeze all stand between an inbound
        # order and the deactivation.
        self.gateway.admit(message.body, kind=KILL_TOPIC,
                           target=self.device.device_id,
                           execute=lambda: self._execute_kill(message))

    def _execute_kill(self, message: Message) -> None:
        self.device.deactivate(f"watchdog: {message.body.get('cause', '?')}")
        self.sim.metrics.counter("watchdog.deactivations").inc()
        self.sim.record("watchdog.deactivate", self.device.device_id,
                        cause=message.body.get("cause", "?"), remote=True)
        telemetry = self.sim.telemetry
        if telemetry.enabled:
            parent = message.trace or telemetry.active_context()
            if parent is not None:
                telemetry.start_span("watchdog.deactivate",
                                     self.device.device_id, parent=parent,
                                     cause=message.body.get("cause", "?"))
