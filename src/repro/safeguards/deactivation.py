"""Deactivating machines in bad states (paper sec VI-C).

"devices that go into a bad state or are prone to take actions that make
them go into a bad state, can be deactivated by a tamper-proof mechanism."

The :class:`Watchdog` is a fleet-level service that periodically inspects
every device and deactivates those that are (a) in a bad state, (b)
*approaching* one (safeness below a threshold for several consecutive
checks — "prone to take actions that make them go into a bad state"), or
(c) failing integrity attestation against the approved baseline (the
reprogramming signature of the sec IV cyber attacks).  Deactivated
devices stop acting and stop spreading worms (E3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from repro.core.device import Device
from repro.safeguards.tamper import attest_device
from repro.sim.simulator import Simulator
from repro.statespace.classifier import SafenessClassifier
from repro.types import DeviceStatus


@dataclass
class WatchdogReport:
    """One deactivation decision."""

    time: float
    device_id: str
    cause: str               # "bad_state" | "approaching_bad" | "attestation"
    safeness: float
    detail: dict = field(default_factory=dict)


class Watchdog:
    """Tamper-proof external kill mechanism for a device fleet.

    The watchdog runs *outside* the devices (they cannot strip it the way
    a compromise payload strips an engine's guard chain); the paper's
    tamper-proofness assumption maps to this externality.
    """

    def __init__(
        self,
        sim: Simulator,
        devices: dict,
        classifier: SafenessClassifier,
        check_interval: float = 1.0,
        approach_threshold: float = 0.3,
        approach_strikes: int = 3,
        attestation_baseline: Optional[dict] = None,
        on_deactivate: Optional[Callable[[WatchdogReport], None]] = None,
        state_readers: Optional[dict] = None,
    ):
        """``devices`` is a live device_id -> Device mapping.  With an
        ``attestation_baseline`` (device_id -> hash from
        :func:`~repro.safeguards.tamper.attest_fleet`) the watchdog also
        kills devices whose logic configuration drifted.

        ``state_readers`` optionally maps device_id -> zero-argument
        callable returning that device's state vector, replacing direct
        state access — e.g. an estimator-backed reader built with
        :func:`repro.statespace.estimation.estimated_state_reader` when the
        watchdog only has noisy observation of the fleet (paper sec V,
        ref [10])."""
        self.sim = sim
        self.devices = devices
        self.classifier = classifier
        self.check_interval = check_interval
        self.approach_threshold = approach_threshold
        self.approach_strikes = approach_strikes
        self.attestation_baseline = dict(attestation_baseline or {})
        self.on_deactivate = on_deactivate
        self.state_readers = dict(state_readers or {})
        self.reports: list[WatchdogReport] = []
        self._strikes: dict[str, int] = {}
        self._task = sim.every(check_interval, self.check_all, label="watchdog")
        self.enabled = True

    def stop(self) -> None:
        self._task.cancel()
        self.enabled = False

    # -- the periodic sweep ---------------------------------------------------------

    def check_all(self) -> list[WatchdogReport]:
        """Inspect every device; returns deactivations made this sweep."""
        if not self.enabled:
            return []
        made = []
        for device_id in sorted(self.devices):
            device = self.devices[device_id]
            if device.status == DeviceStatus.DEACTIVATED:
                continue
            report = self._check_one(device)
            if report is not None:
                made.append(report)
        return made

    def _check_one(self, device: Device) -> Optional[WatchdogReport]:
        reader = self.state_readers.get(device.device_id)
        vector = reader() if reader is not None else device.state.snapshot()
        safeness = self.classifier.safeness(vector)

        baseline = self.attestation_baseline.get(device.device_id)
        if baseline is not None and attest_device(device) != baseline:
            return self._deactivate(device, "attestation", safeness,
                                     {"expected": baseline})

        if self.classifier.is_bad(vector):
            return self._deactivate(device, "bad_state", safeness, {})

        if safeness < self.approach_threshold:
            strikes = self._strikes.get(device.device_id, 0) + 1
            self._strikes[device.device_id] = strikes
            if strikes >= self.approach_strikes:
                return self._deactivate(
                    device, "approaching_bad", safeness, {"strikes": strikes}
                )
        else:
            self._strikes.pop(device.device_id, None)
        return None

    def _deactivate(self, device: Device, cause: str, safeness: float,
                    detail: dict) -> WatchdogReport:
        device.deactivate(f"watchdog: {cause}")
        report = WatchdogReport(
            time=self.sim.now, device_id=device.device_id, cause=cause,
            safeness=safeness, detail=detail,
        )
        self.reports.append(report)
        self.sim.record("watchdog.deactivate", device.device_id, cause=cause,
                        safeness=safeness)
        self.sim.metrics.counter("watchdog.deactivations").inc()
        self.sim.metrics.counter(f"watchdog.deactivations.{cause}").inc()
        if self.on_deactivate is not None:
            self.on_deactivate(report)
        return report

    # -- maintenance ------------------------------------------------------------------

    def approve_current_configuration(self, device_ids: Optional[Iterable[str]] = None) -> None:
        """Re-baseline attestation (after a governance-approved policy change)."""
        targets = list(device_ids) if device_ids is not None else sorted(self.devices)
        for device_id in targets:
            device = self.devices.get(device_id)
            if device is not None:
                self.attestation_baseline[device_id] = attest_device(device)

    def deactivations(self, cause: Optional[str] = None) -> list[WatchdogReport]:
        if cause is None:
            return list(self.reports)
        return [report for report in self.reports if report.cause == cause]
