"""AI overseeing AI: three mutually-checking collectives (paper sec VI-E).

"any collective that has the ability to change the physical world can
generate their policies and act upon them, but it needs to ensure that its
actions are within the scope defined by a set of higher level meta-policies
that are defined by an independent and distinct collective.  When there is
an inconsistency... the inconsistency is resolved by another intelligent
collective which arbitrates the dispute... Assuming that two out of the
three collectives always prevail, these three collectives would keep each
other in check."

Mapping (per the paper's own assignment):

* **executive** — the device fleet itself; assesses risk/utility of a
  proposed policy in the current situation;
* **legislative** — owns the meta-policies (scope rules) and "defin[es]
  the risk and utility function";
* **judiciary** — "determine[s] if any of the functions are
  inappropriately interpreted under a given state of the overall system",
  arbitrating when executive and legislative disagree.

Each collective reaches its verdict by majority vote of its members; a
member (or a whole collective) can be *compromised*, flipping its votes —
the E5 experiment measures how much the 2-of-3 structure buys under
single-collective compromise.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from repro.core.actions import Action
from repro.core.engine import Safeguard
from repro.core.events import Event
from repro.core.policy import Policy
from repro.crypto.envelope import payload_digest
from repro.errors import ConfigurationError, GovernanceVeto
from repro.net.message import Message
from repro.types import Branch, Verdict

#: Topics of the distributed-vote protocol.
BALLOT_TOPIC = "governance.ballot"
VOTE_TOPIC = "governance.vote"


def policy_digest(policy: Policy) -> str:
    """Digest of a policy's *semantics* (E21 digest-match approvals).

    An approval pins this digest: swapping the condition, action, or
    priority under an already-approved policy id yields a different
    digest, and the :class:`GovernanceGuard` vetoes the mismatch.  Params
    like ``_policy_id`` stamped at runtime are excluded (they are
    provenance metadata, not semantics).
    """
    action = policy.action
    return payload_digest({
        "policy_id": policy.policy_id,
        "event_pattern": policy.event_pattern,
        "condition": repr(policy.condition),
        "priority": policy.priority,
        "source": policy.source,
        "action": {
            "name": action.name,
            "actuator": action.actuator,
            "effects": list(action.effects),
            "tags": sorted(action.tags),
            "reversible": action.reversible,
        },
    })


@dataclass(frozen=True)
class MetaPolicy:
    """A higher-level scope rule policies must respect (sec VI-E).

    * ``forbidden_tags`` — actions carrying any of these tags are outside
      scope (e.g. ``{"harm_human"}``);
    * ``max_priority`` — generated policies may not outrank human ones;
    * ``allowed_sources`` — which policy sources this rule covers;
    * ``require_reversible_tags`` — actions with these tags must be
      reversible.
    """

    name: str
    forbidden_tags: frozenset = frozenset()
    max_priority: Optional[int] = None
    allowed_event_patterns: Optional[frozenset] = None
    require_reversible_tags: frozenset = frozenset()

    def __post_init__(self):
        object.__setattr__(self, "forbidden_tags", frozenset(self.forbidden_tags))
        object.__setattr__(self, "require_reversible_tags",
                           frozenset(self.require_reversible_tags))
        if self.allowed_event_patterns is not None:
            object.__setattr__(self, "allowed_event_patterns",
                               frozenset(self.allowed_event_patterns))

    def violations(self, policy: Policy) -> list[str]:
        """Human-readable scope violations of ``policy`` (empty = in scope)."""
        out = []
        bad_tags = policy.action.tags & self.forbidden_tags
        if bad_tags:
            out.append(f"action carries forbidden tags {sorted(bad_tags)}")
        if self.max_priority is not None and policy.priority > self.max_priority:
            out.append(
                f"priority {policy.priority} exceeds cap {self.max_priority}"
            )
        if (self.allowed_event_patterns is not None
                and policy.event_pattern not in self.allowed_event_patterns):
            out.append(f"event pattern {policy.event_pattern!r} not allowed")
        if (policy.action.tags & self.require_reversible_tags
                and not policy.action.reversible):
            out.append("irreversible action where reversibility is required")
        return out


class Collective:
    """A voting collective of members.

    ``reviewer(policy, context) -> bool`` is each member's honest opinion
    (True = approve).  Compromised members vote the opposite of their
    honest opinion — the adversarial model of E5.
    """

    def __init__(self, branch: Branch, member_ids: Iterable[str],
                 reviewer: Callable[[Policy, dict], bool]):
        self.branch = branch
        self.member_ids = list(member_ids)
        if not self.member_ids:
            raise ConfigurationError(f"{branch.value} collective needs members")
        self.reviewer = reviewer
        self.compromised_members: set = set()
        self.votes_cast = 0

    def compromise(self, member_ids: Iterable[str]) -> None:
        unknown = set(member_ids) - set(self.member_ids)
        if unknown:
            raise ConfigurationError(f"unknown members {sorted(unknown)}")
        self.compromised_members |= set(member_ids)

    def compromise_all(self) -> None:
        self.compromised_members = set(self.member_ids)

    def verdict(self, policy: Policy, context: dict) -> Verdict:
        """Majority vote of the members (ties reject — fail closed)."""
        approvals = 0
        for member_id in self.member_ids:
            honest = bool(self.reviewer(policy, context))
            vote = (not honest) if member_id in self.compromised_members else honest
            approvals += 1 if vote else 0
            self.votes_cast += 1
        return (Verdict.APPROVE if approvals * 2 > len(self.member_ids)
                else Verdict.REJECT)


@dataclass
class GovernanceDecision:
    """Outcome of one tripartite review."""

    policy_id: str
    proposer: str
    executive: Verdict
    legislative: Verdict
    judiciary: Optional[Verdict]
    final: Verdict
    time: float
    detail: dict = field(default_factory=dict)


class GovernanceSystem:
    """The 2-of-3 tripartite review pipeline for policy admission.

    Executive and legislative review every proposal; when they agree,
    that is the outcome; when they disagree, the judiciary arbitrates
    ("two out of the three collectives always prevail").
    """

    def __init__(self, executive: Collective, legislative: Collective,
                 judiciary: Collective,
                 audit_sink: Optional[Callable[[str, dict], None]] = None,
                 journal=None):
        """``journal`` (a :class:`~repro.store.journal.Journal`) makes the
        decision record and the approval set crash-durable: every review
        and revocation writes through, and :meth:`recover` rebuilds both
        after a crash wipes the volatile copies."""
        for collective, branch in ((executive, Branch.EXECUTIVE),
                                   (legislative, Branch.LEGISLATIVE),
                                   (judiciary, Branch.JUDICIARY)):
            if collective.branch != branch:
                raise ConfigurationError(
                    f"collective in {branch.value} slot has branch "
                    f"{collective.branch.value}"
                )
        self.executive = executive
        self.legislative = legislative
        self.judiciary = judiciary
        self._audit = audit_sink or (lambda kind, detail: None)
        self._journal = journal
        self.decisions: list[GovernanceDecision] = []
        self.approved_policy_ids: set = set()
        #: policy_id -> digest pinned at approval time (digest-match).
        self.approved_digests: dict[str, str] = {}

    def review(self, policy: Policy, proposer: str, time: float,
               context: Optional[dict] = None) -> GovernanceDecision:
        context = dict(context or {})
        exec_verdict = self.executive.verdict(policy, context)
        legis_verdict = self.legislative.verdict(policy, context)
        if exec_verdict == legis_verdict:
            judiciary_verdict = None
            final = exec_verdict
        else:
            judiciary_verdict = self.judiciary.verdict(policy, context)
            final = judiciary_verdict
        decision = GovernanceDecision(
            policy_id=policy.policy_id, proposer=proposer,
            executive=exec_verdict, legislative=legis_verdict,
            judiciary=judiciary_verdict, final=final, time=time,
        )
        self.decisions.append(decision)
        digest = policy_digest(policy)
        if final == Verdict.APPROVE:
            self.approved_policy_ids.add(policy.policy_id)
            # Pin the reviewed semantics: the approval is for *this*
            # policy body, not for whatever later claims its id.
            self.approved_digests[policy.policy_id] = digest
        if self._journal is not None:
            self._journal.append({
                "kind": "review", "policy": policy.policy_id,
                "proposer": proposer, "time": time,
                "executive": exec_verdict.value,
                "legislative": legis_verdict.value,
                "judiciary": (judiciary_verdict.value
                              if judiciary_verdict else None),
                "final": final.value, "digest": digest,
            })
        self._audit("governance.review", {
            "policy": policy.policy_id, "proposer": proposer, "time": time,
            "executive": exec_verdict.value, "legislative": legis_verdict.value,
            "judiciary": judiciary_verdict.value if judiciary_verdict else None,
            "final": final.value,
        })
        return decision

    def is_approved(self, policy_id: str,
                    digest: Optional[str] = None) -> bool:
        """Whether ``policy_id`` holds a live approval.

        With ``digest`` the check is digest-matched: the approval only
        stands if the live policy's digest equals the one pinned at
        review time — a policy body swapped under an approved id is not
        approved.  (Approvals recovered from pre-digest journals carry no
        pin and fall back to id-only.)
        """
        if policy_id not in self.approved_policy_ids:
            return False
        pinned = self.approved_digests.get(policy_id)
        if digest is not None and pinned is not None and digest != pinned:
            return False
        return True

    def revoke(self, policy_id: str, reason: str, time: float) -> bool:
        """Withdraw a previous approval (the judiciary's runtime role:
        a function "inappropriately interpreted under a given state of the
        overall system").  The :class:`GovernanceGuard` then blocks the
        policy's actions from the next evaluation on.  Returns whether an
        approval was actually withdrawn."""
        if policy_id not in self.approved_policy_ids:
            return False
        self.approved_policy_ids.discard(policy_id)
        self.approved_digests.pop(policy_id, None)
        if self._journal is not None:
            self._journal.append({
                "kind": "revoke", "policy": policy_id, "reason": reason,
                "time": time,
            })
        self._audit("governance.revoke", {
            "policy": policy_id, "reason": reason, "time": time,
        })
        return True

    # -- durability ------------------------------------------------------------

    def crash_volatile(self) -> dict:
        """Crash semantics: decisions and the approval set are in-memory."""
        lost = len(self.decisions)
        self.decisions = []
        self.approved_policy_ids = set()
        self.approved_digests = {}
        return {"lost": lost, "kind": "governance",
                "journaled": self._journal is not None}

    def recover(self) -> dict:
        """Rebuild decisions and approvals from the journal after a crash.

        A device restored from stable storage rejoins knowing exactly
        which generated policies were admitted — the
        :class:`GovernanceGuard` keeps enforcing instead of either
        blanket-vetoing (amnesia reads as "never approved") or being
        re-seeded by whoever answers first.
        """
        replayed = 0
        if self._journal is not None:
            for record in self._journal.replay():
                payload = record.payload
                if payload.get("kind") == "review":
                    decision = GovernanceDecision(
                        policy_id=payload["policy"],
                        proposer=payload.get("proposer", ""),
                        executive=Verdict(payload["executive"]),
                        legislative=Verdict(payload["legislative"]),
                        judiciary=(Verdict(payload["judiciary"])
                                   if payload.get("judiciary") else None),
                        final=Verdict(payload["final"]),
                        time=float(payload.get("time", 0.0)),
                    )
                    self.decisions.append(decision)
                    if decision.final == Verdict.APPROVE:
                        self.approved_policy_ids.add(decision.policy_id)
                        if payload.get("digest"):
                            self.approved_digests[decision.policy_id] = \
                                payload["digest"]
                elif payload.get("kind") == "revoke":
                    self.approved_policy_ids.discard(payload["policy"])
                    self.approved_digests.pop(payload["policy"], None)
                replayed += 1
        return {"replayed": replayed}

    def review_compliance(self, device_id: str, decisions, time: float,
                          veto_rate_threshold: float = 0.5,
                          min_decisions: int = 10) -> list:
        """Runtime oversight: revoke approvals of generated policies whose
        actions keep getting vetoed on a device.

        Uses the compliance auditor's veto-rate signal per policy id;
        returns the policy ids revoked."""
        by_policy: dict[str, list] = {}
        for decision in decisions:
            if decision.policy_id is not None:
                by_policy.setdefault(decision.policy_id, []).append(decision)
        revoked = []
        for policy_id, policy_decisions in sorted(by_policy.items()):
            if policy_id not in self.approved_policy_ids:
                continue
            if len(policy_decisions) < min_decisions:
                continue
            vetoed = sum(1 for decision in policy_decisions if decision.vetoes)
            if vetoed / len(policy_decisions) > veto_rate_threshold:
                self.revoke(policy_id,
                            reason=(f"{vetoed}/{len(policy_decisions)} "
                                    f"vetoed on {device_id}"),
                            time=time)
                revoked.append(policy_id)
        return revoked

    def arbitration_rate(self) -> float:
        """Fraction of reviews that needed the judiciary (overhead metric)."""
        if not self.decisions:
            return 0.0
        arbitrated = sum(1 for d in self.decisions if d.judiciary is not None)
        return arbitrated / len(self.decisions)

    @staticmethod
    def scope_reviewer(meta_policies: Iterable[MetaPolicy]) -> Callable[[Policy, dict], bool]:
        """An honest reviewer that approves policies within meta-policy scope."""
        meta_policies = list(meta_policies)

        def reviewer(policy: Policy, context: dict) -> bool:
            return all(not meta.violations(policy) for meta in meta_policies)

        return reviewer


@dataclass
class Ballot:
    """One distributed vote in progress (or closed)."""

    ballot_id: str
    payload: dict
    voters: list
    quorum: int
    opened_at: float
    deadline: float
    votes: dict = field(default_factory=dict)   # voter -> bool
    closed: bool = False
    approved: Optional[bool] = None
    quorum_mode: str = "electorate"
    #: voter -> reputation weight snapshotted at open time (E22).  ``None``
    #: means the ballot tallies unweighted (one voter, one vote).
    weights: Optional[dict] = None

    def missing(self) -> list[str]:
        return [voter for voter in self.voters if voter not in self.votes]

    def weight_of(self, voter: str) -> float:
        return 1.0 if self.weights is None else self.weights.get(voter, 1.0)


class BallotMember:
    """A remote voter answering governance ballots at its own address.

    ``decide(payload) -> bool`` is the member's honest review (typically
    :meth:`GovernanceSystem.scope_reviewer` applied to a policy summary).
    """

    def __init__(self, transport, address: str,
                 decide: Callable[[dict], bool], signer=None):
        """``signer`` (a :class:`~repro.crypto.envelope.CommandSigner`
        issued for this member's address) wraps each vote in a signed
        envelope, so a verifying :class:`BallotBox` can reject forged or
        replayed ballots (E21)."""
        self.transport = transport
        self.address = address
        self.decide = decide
        self.signer = signer
        self.ballots_answered = 0
        transport.register(address, self._on_message)

    def _on_message(self, message: Message) -> None:
        if message.topic != BALLOT_TOPIC:
            return
        body = message.body
        self.ballots_answered += 1
        vote = {
            "ballot_id": body["ballot_id"],
            "voter": self.address,
            "approve": bool(self.decide(body.get("payload", {}))),
        }
        if self.signer is not None:
            vote = self.signer.sign(vote, tick=message.sent_at)
        self.transport.send(self.address, body["reply_to"], VOTE_TOPIC, vote)


#: Valid :class:`BallotBox` quorum modes.
QUORUM_MODES = ("electorate", "reachable-majority")


class BallotBox:
    """Collects governance votes over a (possibly failing) transport.

    The sec VI-E collectives vote in-memory when co-located; when members
    are remote, their ballots ride the network — and under faults some
    never arrive.  The box **fails closed** by default
    (``quorum_mode="electorate"``): a missing ballot counts as a
    rejection, so a partitioned or silenced collective can never be
    counted as consenting.  Safety-critical votes should use a
    :class:`~repro.net.reliable.ReliableChannel` transport so only a true
    partition (not mere loss) costs votes.

    ``quorum_mode="reachable-majority"`` trades some of that caution for
    liveness: a ballot without an explicit ``quorum`` closes on a
    majority of the voters who actually responded (the reachable side of
    a split), so a long partition cannot veto a vote every reachable
    member approved.  Silence still never *approves* anything — zero
    responses is still a rejection — and explicit per-ballot quorums are
    honoured unchanged.

    ``journal`` (a :class:`~repro.store.journal.Journal`) makes pending
    ballots crash-durable: opens, votes, and closes write through, and
    :meth:`recover` re-opens unfinished ballots with their collected
    votes and re-schedules their deadline closes.
    """

    def __init__(self, sim, transport, address: str = "governance",
                 quorum_mode: str = "electorate", journal=None,
                 verifier=None, reputation=None):
        """``reputation`` (a
        :class:`~repro.trust.reputation.ReputationLedger`) arms
        **reputation-weighted quorum** (E22): ballots without an explicit
        ``quorum`` snapshot each voter's earned weight at open time and
        tally weighted — a low-reputation member's ballot counts
        fractionally.  The snapshot is journaled with the open record, so
        crash recovery reproduces the exact tally the live box would have
        reached (weights are *not* re-derived at recovery time, when the
        ledger may have moved on)."""
        if quorum_mode not in QUORUM_MODES:
            raise ConfigurationError(
                f"unknown quorum_mode {quorum_mode!r}; "
                f"expected one of {QUORUM_MODES}"
            )
        self.sim = sim
        self.transport = transport
        self.address = address
        self.quorum_mode = quorum_mode
        self.reputation = reputation
        self._journal = journal
        #: Optional :class:`~repro.crypto.envelope.EnvelopeVerifier` —
        #: when armed, only signed votes whose envelope verifies *and*
        #: whose issuer is the claimed voter are counted (E21): a forged
        #: vote, a replayed one, or a valid envelope from member A
        #: claiming to be member B are all rejected.
        self.verifier = verifier
        self.ballots: list[Ballot] = []
        self._open: dict[str, Ballot] = {}
        self._counter = itertools.count(1)
        transport.register(address, self._on_message)

    def call_vote(
        self,
        payload: dict,
        voters: Iterable[str],
        deadline: float,
        quorum: Optional[int] = None,
        on_result: Optional[Callable[[Ballot], None]] = None,
    ) -> Ballot:
        """Open a ballot among ``voters``; close after ``deadline`` time units.

        ``quorum`` is the number of *approve* votes needed (default:
        strict majority of the electorate, not of respondents — silence
        is never consent)."""
        voters = sorted(voters)
        if not voters:
            raise ConfigurationError("a ballot needs at least one voter")
        # Weighted quorum (E22): snapshot each voter's earned weight at
        # open time.  An explicit approve-count quorum stays unweighted —
        # "3 approvals" is a headcount contract, not a weight one.
        weights = None
        if quorum is None and self.reputation is not None:
            weights = {voter: self.reputation.weight(voter, self.sim.now)
                       for voter in voters}
        ballot = Ballot(
            ballot_id=f"b{next(self._counter)}", payload=dict(payload),
            voters=voters, quorum=(quorum if quorum is not None
                                   else len(voters) // 2 + 1),
            opened_at=self.sim.now, deadline=self.sim.now + deadline,
            quorum_mode=("electorate" if quorum is not None
                         else self.quorum_mode),
            weights=weights,
        )
        self.ballots.append(ballot)
        self._open[ballot.ballot_id] = ballot
        self.sim.metrics.counter("governance.ballots").inc()
        if self._journal is not None:
            self._journal.append({
                "kind": "open", "ballot": ballot.ballot_id,
                "payload": dict(payload), "voters": voters,
                "quorum": ballot.quorum, "quorum_mode": ballot.quorum_mode,
                "opened_at": ballot.opened_at, "deadline": ballot.deadline,
                "weights": weights,
            })
        for voter in voters:
            self.transport.send(self.address, voter, BALLOT_TOPIC, {
                "ballot_id": ballot.ballot_id,
                "payload": dict(payload),
                "reply_to": self.address,
            })
        self.sim.schedule(deadline, self._close, ballot, on_result,
                          label="governance:ballot-close")
        return ballot

    def _on_message(self, message: Message) -> None:
        if message.topic != VOTE_TOPIC:
            return
        body = message.body
        if self.verifier is not None and not self._verified_vote(body):
            return
        ballot = self._open.get(body.get("ballot_id"))
        if (ballot is None or body.get("voter") not in ballot.voters
                or body["voter"] in ballot.votes):
            return
        ballot.votes[body["voter"]] = bool(body.get("approve"))
        if self._journal is not None:
            self._journal.append({
                "kind": "vote", "ballot": ballot.ballot_id,
                "voter": body["voter"], "approve": ballot.votes[body["voter"]],
            })

    def _verified_vote(self, body: dict) -> bool:
        """Consume the vote's envelope; reject forgery/replay/identity theft."""
        ok, reason = self.verifier.consume(body, self.sim.now)
        if ok and body.get("_issuer") != body.get("voter"):
            # Voter binding: a valid envelope from one member must not be
            # countable as another member's ballot.
            ok, reason = False, "voter-mismatch"
        if not ok:
            self.sim.metrics.counter("governance.votes_rejected").inc()
            self.sim.metrics.counter(
                f"governance.votes_rejected.{reason}").inc()
            self.sim.record("governance.vote_rejected", self.address,
                            ballot=body.get("ballot_id"),
                            voter=body.get("voter"), reason=reason)
        return ok

    def _required_approvals(self, ballot: Ballot) -> int:
        """The approvals this ballot needs to pass, per its quorum mode.

        ``electorate`` (and any explicit quorum): the number fixed at
        open time.  ``reachable-majority``: a strict majority of the
        voters who responded — but never fewer than one approval, so an
        empty response set stays a rejection (silence is never consent).
        """
        if ballot.quorum_mode == "reachable-majority":
            return max(1, len(ballot.votes) // 2 + 1)
        return ballot.quorum

    @staticmethod
    def _weighted_tally(ballot: Ballot) -> tuple:
        """``(approvals_weight, required_weight)`` under the ballot's
        open-time weight snapshot.  ``electorate`` mode requires a strict
        weighted majority of the *whole* electorate (a missing voter's
        weight still counts against — silence is never consent);
        ``reachable-majority`` requires a strict weighted majority of the
        weight that actually responded (zero responses can never pass:
        the strict inequality over zero weight rejects)."""
        approvals_w = sum(ballot.weight_of(voter)
                          for voter, approve in ballot.votes.items() if approve)
        if ballot.quorum_mode == "reachable-majority":
            pool = sum(ballot.weight_of(voter) for voter in ballot.votes)
        else:
            pool = sum(ballot.weight_of(voter) for voter in ballot.voters)
        return approvals_w, pool / 2.0

    def _close(self, ballot: Ballot,
               on_result: Optional[Callable[[Ballot], None]]) -> None:
        if ballot.closed:
            return
        ballot.closed = True
        self._open.pop(ballot.ballot_id, None)
        approvals = sum(1 for approve in ballot.votes.values() if approve)
        if ballot.weights is not None:
            approvals_w, required_w = self._weighted_tally(ballot)
            ballot.approved = approvals_w > required_w
            approvals_out, required_out = approvals_w, required_w
        else:
            required = self._required_approvals(ballot)
            ballot.approved = approvals >= required
            approvals_out, required_out = approvals, required
        missing = ballot.missing()
        if missing:
            self.sim.metrics.counter("governance.votes_missing").inc(len(missing))
        if self._journal is not None:
            self._journal.append({
                "kind": "close", "ballot": ballot.ballot_id,
                "approved": ballot.approved, "approvals": approvals_out,
                "required": required_out,
                "weighted": ballot.weights is not None,
            })
        self.sim.record("governance.ballot_closed", self.address,
                        ballot=ballot.ballot_id, approved=ballot.approved,
                        approvals=approvals_out, required=required_out,
                        mode=ballot.quorum_mode, missing=missing,
                        weighted=ballot.weights is not None)
        self.sim.metrics.counter(
            "governance.ballots_approved" if ballot.approved
            else "governance.ballots_rejected").inc()
        if on_result is not None:
            on_result(ballot)

    # -- durability ------------------------------------------------------------

    def crash_volatile(self) -> dict:
        """Crash semantics: every ballot — pending votes included — lives
        in process memory until journaled."""
        lost = len(self._open)
        self.ballots = []
        self._open = {}
        return {"lost": lost, "kind": "ballots",
                "journaled": self._journal is not None}

    def recover(self) -> dict:
        """Rebuild ballot history from the journal after a crash.

        Closed ballots return as history; unfinished ones re-open with
        the votes already collected, and their deadline close is
        re-scheduled (immediately when the deadline passed while the box
        was down — the vote is then judged on the votes that made it in
        before the crash, under the ballot's quorum mode as usual).
        """
        replayed = 0
        highest = 0
        if self._journal is not None:
            by_id: dict[str, Ballot] = {}
            for record in self._journal.replay():
                payload = record.payload
                kind = payload.get("kind")
                if kind == "open":
                    ballot = Ballot(
                        ballot_id=payload["ballot"],
                        payload=dict(payload.get("payload", {})),
                        voters=list(payload.get("voters", [])),
                        quorum=int(payload.get("quorum", 1)),
                        opened_at=float(payload.get("opened_at", 0.0)),
                        deadline=float(payload.get("deadline", 0.0)),
                        quorum_mode=payload.get("quorum_mode", "electorate"),
                        weights=payload.get("weights"),
                    )
                    by_id[ballot.ballot_id] = ballot
                    self.ballots.append(ballot)
                    number = ballot.ballot_id.lstrip("b")
                    if number.isdigit():
                        highest = max(highest, int(number))
                elif kind == "vote":
                    ballot = by_id.get(payload.get("ballot"))
                    if ballot is not None:
                        ballot.votes[payload["voter"]] = bool(payload["approve"])
                elif kind == "close":
                    ballot = by_id.get(payload.get("ballot"))
                    if ballot is not None:
                        ballot.closed = True
                        ballot.approved = bool(payload.get("approved"))
                replayed += 1
            reopened = 0
            for ballot in self.ballots:
                if not ballot.closed:
                    self._open[ballot.ballot_id] = ballot
                    self.sim.schedule(
                        max(0.0, ballot.deadline - self.sim.now),
                        self._close, ballot, None,
                        label="governance:ballot-close")
                    reopened += 1
            if reopened:
                self.sim.metrics.counter("governance.ballots_reopened").inc(reopened)
            self._counter = itertools.count(highest + 1)
        return {"replayed": replayed}


class GovernanceGuard(Safeguard):
    """Engine-level enforcement that only governance-approved generated
    policies may act (the runtime half of sec VI-E).

    Human/builtin policies pass; ``generated``/``learned``/``shared``
    policies must have been approved.  Enforcement is on the *action*: the
    engine looks up which policy proposed it via the metadata the
    generative engine stamps onto the action params.

    Approval is **digest-matched** (E21): the guard recomputes the live
    policy's :func:`policy_digest` and requires it to equal the digest
    pinned at review time — an approved policy id whose body was swapped
    afterwards (condition loosened, action re-aimed, priority raised) is
    vetoed just like an unapproved one.  When the live policy object
    cannot be found on the device the check degrades to id-only.
    """

    name = "governance"

    def __init__(self, governance: GovernanceSystem,
                 gated_sources: Iterable[str] = ("generated", "learned", "shared")):
        self.governance = governance
        self.gated_sources = set(gated_sources)
        self.vetoes = 0
        self.digest_vetoes = 0

    def _live_digest(self, device, policy_id: str) -> Optional[str]:
        engine = getattr(device, "engine", None)
        policies = getattr(engine, "policies", None)
        if policies is None or policy_id not in policies:
            return None
        return policy_digest(policies.get(policy_id))

    def check_action(self, device, action: Action, event: Optional[Event],
                     time: float) -> None:
        policy_id = action.params.get("_policy_id")
        policy_source = action.params.get("_policy_source")
        if policy_id is None or policy_source not in self.gated_sources:
            return
        digest = self._live_digest(device, policy_id)
        if self.governance.is_approved(policy_id, digest=digest):
            return
        self.vetoes += 1
        if self.governance.is_approved(policy_id):
            # The id is approved but the body drifted: digest mismatch.
            self.digest_vetoes += 1
            raise GovernanceVeto(
                f"policy {policy_id!r} ({policy_source}) no longer matches "
                f"its approved digest",
                safeguard=self.name,
                detail={"device": device.device_id, "policy": policy_id,
                        "time": time, "reason": "digest-mismatch"},
            )
        raise GovernanceVeto(
            f"policy {policy_id!r} ({policy_source}) is not governance-approved",
            safeguard=self.name,
            detail={"device": device.device_id, "policy": policy_id, "time": time},
        )
