"""Human cross-validation of selected decisions (paper sec II).

"in the future these decisions will be made by the devices themselves,
with only a few decisions being sent for human cross-validation."

:class:`CrossValidationGuard` sends actions matching its tag set (by
default the kinetic ones) to the overseeing
:class:`~repro.devices.human.HumanOperator` before execution.  The human
is a rate-limited resource: a deferred review (operator over capacity)
fails closed — the action is vetoed rather than executed unreviewed.
The guard therefore encodes the paper's scaling tension directly: the
more decisions routed to the human, the more the fleet stalls, which is
why only "a few" decision classes should carry the tag.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable, Optional

from repro.core.actions import Action
from repro.core.engine import Safeguard
from repro.core.events import Event
from repro.errors import SafeguardViolation

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.device import Device
    from repro.devices.human import HumanOperator


class CrossValidationGuard(Safeguard):
    """Route tagged actions to a human before execution (fail closed)."""

    name = "cross_validation"

    def __init__(
        self,
        operator: "HumanOperator",
        tags: Iterable[str] = ("kinetic",),
        judge: Optional[Callable[[str], bool]] = None,
    ):
        """``judge(question) -> bool`` supplies the human's answer when the
        review happens (default approve); capacity comes from the operator."""
        self.operator = operator
        self.tags = frozenset(tags)
        self.judge = judge
        self.approved = 0
        self.denied = 0
        self.deferred = 0

    def check_action(self, device: "Device", action: Action,
                     event: Optional[Event], time: float) -> None:
        if action.is_noop or not (action.tags & self.tags):
            return
        question = (f"{device.device_id} requests {action.name!r} "
                    f"({sorted(action.tags & self.tags)}) at t={time:.1f}")
        answer = self.operator.cross_validate(question, judge=self.judge)
        if answer is True:
            self.approved += 1
            return
        if answer is None:
            self.deferred += 1
            raise SafeguardViolation(
                f"action {action.name!r} needs human cross-validation but the "
                "operator is over review capacity (failing closed)",
                safeguard=self.name,
                detail={"device": device.device_id, "action": action.name,
                        "reason": "review deferred", "time": time},
            )
        self.denied += 1
        raise SafeguardViolation(
            f"action {action.name!r} denied by human cross-validation",
            safeguard=self.name,
            detail={"device": device.device_id, "action": action.name,
                    "reason": "human denied", "time": time},
        )
