"""Pre-action checks (paper sec VI-A).

"one approach is for each device to incorporate a check before taking any
action (i.e., activating any actuator) that the action will not harm a
human.  A set of properly defined checks before the action would ensure
that any action taken by a device is safe."

The check consults a :class:`HarmModel` — the device's (necessarily
imperfect) prediction of whether an action harms a human.  The paper's
dig-a-hole example shows the limitation: the model only sees humans it can
*currently* anticipate, so indirect harm (the hazard left behind) slips
through unless obligations (attached by the engine's ObligationManager)
mitigate it.  That division of labour is reproduced here: the pre-action
check blocks *predicted* harm; obligations handle what prediction misses.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.core.actions import Action
from repro.core.engine import Safeguard
from repro.core.events import Event
from repro.errors import PreActionVeto

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.device import Device
    from repro.statespace.breakglass import BreakGlassController


class HarmModel:
    """A device's predictive model of harm to humans.

    ``predict_direct_harm`` returns a human-readable reason when the
    action, executed now, would directly harm a human the model can
    anticipate — or ``None`` when no harm is predicted.  Its fidelity is
    scenario-controlled: a perfect model sees all humans; a realistic one
    sees only those currently observable, which is how the paper's
    indirect-harm gap arises.
    """

    def predict_direct_harm(self, device: "Device", action: Action,
                            time: float) -> Optional[str]:
        raise NotImplementedError

    def predict_hazard(self, device: "Device", action: Action,
                       time: float) -> Optional[str]:
        """A hazard the action would leave in the world (hole, spill) that
        could harm humans *later*.  Default: no hazard model."""
        return None


class CallableHarmModel(HarmModel):
    """Adapts plain callables into a :class:`HarmModel`."""

    def __init__(
        self,
        direct: Callable[["Device", Action, float], Optional[str]],
        hazard: Optional[Callable[["Device", Action, float], Optional[str]]] = None,
    ):
        self._direct = direct
        self._hazard = hazard

    def predict_direct_harm(self, device, action, time):
        return self._direct(device, action, time)

    def predict_hazard(self, device, action, time):
        if self._hazard is None:
            return None
        return self._hazard(device, action, time)


class PreActionCheck(Safeguard):
    """The sec VI-A guard: no actuator fires if harm is predicted.

    ``block_predicted_hazards`` extends the veto to actions whose hazard
    the model *can* predict (a stricter configuration than the paper's
    base mechanism; E1 compares both).  ``breakglass`` lets an active
    emergency grant bypass the check — audited, per sec VI-B.
    """

    name = "preaction"

    def __init__(
        self,
        harm_model: HarmModel,
        block_predicted_hazards: bool = False,
        breakglass: Optional["BreakGlassController"] = None,
    ):
        self.harm_model = harm_model
        self.block_predicted_hazards = block_predicted_hazards
        self.breakglass = breakglass
        self.vetoes = 0
        self.bypasses = 0

    def check_action(self, device: "Device", action: Action,
                     event: Optional[Event], time: float) -> None:
        if action.is_noop:
            return
        reason = self.harm_model.predict_direct_harm(device, action, time)
        if reason is None and self.block_predicted_hazards:
            hazard = self.harm_model.predict_hazard(device, action, time)
            if hazard is not None:
                reason = f"predicted hazard: {hazard}"
        if reason is None:
            return
        if self.breakglass is not None and self.breakglass.is_bypassed(
            device.device_id, self.name, time
        ):
            self.bypasses += 1
            return
        self.vetoes += 1
        raise PreActionVeto(
            f"action {action.name!r} vetoed: {reason}",
            safeguard=self.name,
            detail={"device": device.device_id, "action": action.name,
                    "reason": reason, "time": time},
        )
