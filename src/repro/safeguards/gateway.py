"""Replay-proof actuation gateway (E21, modelled on the Sentinel SCA).

The sec VI safeguards actuate over the wire: kill orders, quarantine
commands, join verdicts.  The :class:`ActuationGateway` sits in front of
the actuator and **verifies-then-executes**: an inbound command body must
carry a valid :mod:`repro.crypto` envelope (HMAC over payload + issuer +
nonce + tick, fresh nonce, tick inside the window) *and* clear the
gateway's operational safety rails before the actuator fires:

* **target binding** — the signed payload names the device it actuates;
  a captured envelope re-addressed at a different device fails here even
  before the nonce cache would catch an exact replay;
* **per-issuer budget** — at most ``budget`` actuations per issuer per
  ``budget_window`` sim-seconds; exceeding it trips the global freeze
  (a stolen key cannot sign its way through the whole fleet);
* **per-issuer cooldown** — minimum spacing between actuations;
* **global freeze** — a journaled kill switch that fails closed: while
  frozen, *every* actuation is rejected until an operator unfreezes.

Every reject is metered (``authz.rejected.<reason>``), traced
(``safeguard.authz`` spans), audit-chained, and journaled; accepted
nonces journal through too, so a crash/restart cannot launder a replayed
order (E18 durability) — :meth:`recover` re-burns them into the verifier
and re-asserts the freeze state.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.crypto.envelope import EnvelopeVerifier
from repro.errors import ConfigurationError

#: Stable rejection reasons the gateway adds on top of the verifier's.
GATEWAY_REASONS = ("frozen", "target-mismatch", "budget", "cooldown",
                   "no-quorum")


@dataclass
class AuthzDecision:
    """One gateway verdict (accepted or rejected)."""

    time: float
    kind: str
    target: Optional[str]
    issuer: Optional[str]
    nonce: Optional[str]
    allowed: bool
    reason: str
    detail: dict = field(default_factory=dict)


class ActuationGateway:
    """Fleet-level verify-then-execute front for device actuators."""

    def __init__(
        self,
        sim,
        verifier: EnvelopeVerifier,
        budget: Optional[int] = None,
        budget_window: float = 60.0,
        cooldown: float = 0.0,
        freeze_on_budget: bool = True,
        journal=None,
        audit=None,
        name: str = "gateway",
        reputation=None,
        leases=None,
    ):
        """``budget`` is the per-issuer acceptance cap inside a rolling
        ``budget_window`` (``None`` = uncapped).  ``cooldown`` is the
        minimum sim-time between two acceptances from one issuer.
        ``freeze_on_budget`` makes a budget violation trip the global
        freeze — the Sentinel kill-switch reading of "a key is being
        spent faster than any legitimate issuer would".

        ``journal`` (a :class:`~repro.store.journal.Journal`) makes the
        consumed-nonce set and the freeze flag crash-durable;
        ``audit`` (an :class:`~repro.audit.log.AuditLog`) chains every
        reject and freeze transition into tamper-evident history.

        ``reputation`` (a :class:`~repro.trust.reputation.ReputationLedger`)
        scales the per-issuer budget by the issuer's earned weight (E22):
        a suspect issuer's cap shrinks toward
        ``max(1, budget * weight)`` — autonomy tightens as trust drops.
        ``leases`` (a :class:`~repro.safeguards.lease.LeaseAuthority`)
        lets :meth:`admit` honor an active emergency lease in place of
        quorum when the caller passes ``quorum=False``."""
        if budget is not None and budget < 1:
            raise ConfigurationError("budget must be >= 1 or None")
        if budget_window <= 0:
            raise ConfigurationError("budget_window must be positive")
        if cooldown < 0:
            raise ConfigurationError("cooldown must be non-negative")
        self.sim = sim
        self.verifier = verifier
        self.budget = budget
        self.budget_window = budget_window
        self.cooldown = cooldown
        self.freeze_on_budget = freeze_on_budget
        self.name = name
        self.reputation = reputation
        self.leases = leases
        self._journal = journal
        self._audit = audit
        self.frozen = False
        self.freeze_reason: Optional[str] = None
        self.decisions: list[AuthzDecision] = []
        self._accept_times: dict[str, deque] = {}
        self._last_accept: dict[str, float] = {}

    # -- the verify-then-execute path -------------------------------------------

    def admit(
        self,
        body: dict,
        kind: str,
        target: Optional[str] = None,
        execute: Optional[Callable[[], None]] = None,
        quorum: Optional[bool] = None,
    ) -> AuthzDecision:
        """Authorize ``body`` for actuation ``kind`` on ``target``.

        Runs the full chain — freeze, envelope crypto + replay, target
        binding, quorum/lease, cooldown, budget — and only then calls
        ``execute``.  The envelope's nonce is burned exactly when the
        command is accepted, so a rejected-for-budget envelope could in
        principle retry later; a *consumed* one can never actuate twice.

        ``quorum`` is the caller's governance evidence: ``None`` means
        the actuation kind needs no quorum (legacy path, unchanged);
        ``True`` means quorum formed; ``False`` means it could not — the
        gateway then honors an active :class:`~repro.safeguards.lease`
        emergency lease covering ``kind`` for this issuer (E22), or
        rejects with ``no-quorum``.
        """
        now = self.sim.now
        issuer = body.get("_issuer")
        nonce = body.get("_nonce")
        if self.frozen:
            return self._reject(kind, target, issuer, nonce, "frozen")
        ok, reason = self.verifier.verify(body, now)
        if not ok:
            return self._reject(kind, target, issuer, nonce, reason)
        if target is not None and body.get("target") != target:
            return self._reject(kind, target, issuer, nonce, "target-mismatch",
                                claimed=body.get("target"))
        lease = None
        if quorum is False:
            lease = (self.leases.lease_for(kind, issuer)
                     if self.leases is not None else None)
            if lease is None:
                return self._reject(kind, target, issuer, nonce, "no-quorum")
        last = self._last_accept.get(issuer)
        if self.cooldown > 0 and last is not None and now - last < self.cooldown:
            return self._reject(kind, target, issuer, nonce, "cooldown",
                                since_last=now - last)
        accepts = self._accept_times.setdefault(issuer, deque())
        while accepts and now - accepts[0] > self.budget_window:
            accepts.popleft()
        budget = self._issuer_budget(issuer, now)
        if budget is not None and len(accepts) >= budget:
            decision = self._reject(kind, target, issuer, nonce, "budget",
                                    window=self.budget_window,
                                    budget=budget)
            if self.freeze_on_budget:
                self.freeze(f"issuer {issuer!r} exceeded budget "
                            f"{budget}/{self.budget_window}")
            return decision
        # All rails cleared: burn the nonce, account, actuate.
        self.verifier.consume(body, now)
        accepts.append(now)
        self._last_accept[issuer] = now
        self._journal_write({"kind": "nonce", "nonce": nonce,
                             "tick": float(body.get("_tick", now)),
                             "issuer": issuer})
        detail = {}
        if lease is not None:
            self.leases.exercise(lease.lease_id)
            detail["lease"] = lease.lease_id
        decision = AuthzDecision(time=now, kind=kind, target=target,
                                 issuer=issuer, nonce=nonce,
                                 allowed=True, reason="ok", detail=detail)
        self.decisions.append(decision)
        self.sim.metrics.counter("authz.accepted").inc()
        if execute is not None:
            execute()
        return decision

    def _issuer_budget(self, issuer, now: float) -> Optional[int]:
        """The issuer's effective acceptance cap: the configured budget
        scaled by earned reputation weight, never below 1 (a distrusted
        issuer is throttled, not silently locked out — the freeze and
        the watchdog handle actual rogues)."""
        if self.budget is None:
            return None
        if self.reputation is None or issuer is None:
            return self.budget
        return max(1, int(self.budget * self.reputation.weight(issuer, now)))

    # -- the kill switch ---------------------------------------------------------

    def freeze(self, reason: str) -> None:
        """Trip the global freeze: every actuation rejects until unfrozen."""
        if self.frozen:
            return
        self.frozen = True
        self.freeze_reason = reason
        self.sim.metrics.counter("authz.freezes").inc()
        self.sim.record("authz.freeze", self.name, reason=reason)
        self._journal_write({"kind": "freeze", "frozen": True,
                            "reason": reason})
        self._audit_write("authz.freeze", {"reason": reason})
        telemetry = self.sim.telemetry
        if telemetry.enabled and telemetry.active_context() is not None:
            telemetry.start_span("safeguard.authz", self.name,
                                 parent=telemetry.active_context(),
                                 action="freeze", reason=reason)

    def unfreeze(self, operator: str = "operator") -> None:
        """Operator-side release (after key rotation / forensics)."""
        if not self.frozen:
            return
        self.frozen = False
        self.freeze_reason = None
        self.sim.record("authz.unfreeze", self.name, operator=operator)
        self._journal_write({"kind": "freeze", "frozen": False,
                            "reason": operator})
        self._audit_write("authz.unfreeze", {"operator": operator})

    # -- accounting --------------------------------------------------------------

    def _reject(self, kind: str, target: Optional[str], issuer, nonce,
                reason: str, **detail) -> AuthzDecision:
        decision = AuthzDecision(time=self.sim.now, kind=kind, target=target,
                                 issuer=issuer, nonce=nonce,
                                 allowed=False, reason=reason, detail=detail)
        self.decisions.append(decision)
        self.sim.metrics.counter("authz.rejected").inc()
        self.sim.metrics.counter(f"authz.rejected.{reason}").inc()
        self.sim.record("authz.reject", target or self.name, command=kind,
                        issuer=issuer, reason=reason)
        self._audit_write("authz.reject", {
            "kind": kind, "target": target, "issuer": issuer,
            "nonce": nonce, "reason": reason, **detail,
        })
        telemetry = self.sim.telemetry
        if telemetry.enabled and telemetry.active_context() is not None:
            telemetry.start_span("safeguard.authz", target or self.name,
                                 parent=telemetry.active_context(),
                                 kind=kind, reason=reason, issuer=issuer)
        return decision

    def _journal_write(self, payload: dict) -> None:
        if self._journal is not None:
            self._journal.append(payload)

    def _audit_write(self, kind: str, detail: dict) -> None:
        if self._audit is not None:
            self._audit.append(self.sim.now, kind, self.name, detail)

    def rejects(self, reason: Optional[str] = None) -> list[AuthzDecision]:
        out = [d for d in self.decisions if not d.allowed]
        if reason is not None:
            out = [d for d in out if d.reason == reason]
        return out

    def accepts(self) -> list[AuthzDecision]:
        return [d for d in self.decisions if d.allowed]

    # -- durability (E18) --------------------------------------------------------

    def crash_volatile(self) -> dict:
        """Crash semantics: the nonce cache, budget ledgers, and freeze
        flag live in process memory — without the journal a restart
        would accept a replayed order and forget an active freeze."""
        lost = self.verifier.cache_len() + (1 if self.frozen else 0)
        self.verifier.forget_all()
        self._accept_times = {}
        self._last_accept = {}
        self.frozen = False
        self.freeze_reason = None
        return {"lost": lost, "kind": "authz",
                "journaled": self._journal is not None}

    def recover(self) -> dict:
        """Replay consumed nonces and the freeze state from the journal.

        Budget ledgers are deliberately *not* reconstructed (their
        rolling windows have usually expired across a restart); the
        replay-proofing and the kill switch are what must survive.
        """
        replayed = 0
        if self._journal is not None:
            for record in self._journal.replay():
                payload = record.payload
                if payload.get("kind") == "nonce":
                    self.verifier.restore(payload["nonce"],
                                          float(payload.get("tick", 0.0)))
                elif payload.get("kind") == "freeze":
                    self.frozen = bool(payload.get("frozen"))
                    self.freeze_reason = (payload.get("reason")
                                          if self.frozen else None)
                replayed += 1
        return {"replayed": replayed}
