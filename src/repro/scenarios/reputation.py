"""Degraded-mode operation: reputation-weighted autonomy + leases (E22).

The scenario stages the two halves of the E22 story on the F4 sharded
substrate (same byte-identical-trace contract as
:mod:`repro.scenarios.sharded`):

* **Reputation-weighted containment.**  Every device reports its
  temperature to a pinned ``warden`` each tick; the warden folds the
  report into a :class:`~repro.trust.reputation.ReputationLedger`
  (``validated`` below the warn line, ``alert`` above it) and kills — by
  HMAC-signed order through the device-side
  :class:`~repro.safeguards.gateway.ActuationGateway` — any device whose
  temperature crosses its *effective* kill line.  In the weighted arm
  that line tightens as reputation drains::

      kill_eff = warn + (kill_base - warn) * weight(device)

  so a device shedding alerts loses headroom tick by tick, while in the
  unweighted arm the line stays at ``kill_base`` for everyone.  The
  adversary is a slow-burn rogue (:mod:`repro.attacks.reputation` story,
  inlined here for shard-determinism): it banks extra good reports to
  the top of the trust curve, then strikes with a temperature ramp.  The
  weighted arm must contain it strictly earlier.

* **Leased emergency powers.**  Devices must have periodic ``vent``
  actuations centrally approved (the quorum stand-in).  A partition cuts
  the last ``n_b`` devices (group B) plus a pinned ``overseer-b`` off
  from the warden: vent approvals stop, requests time out, and devices
  fall back to self-issued vents with ``quorum=False``.  The overseer —
  detecting warden silence and holding a reputation mirror fed by group
  B's own reports — issues an expiring, journal-shaped, HMAC-signed
  :class:`~repro.safeguards.lease.EmergencyLease` scoped to ``vent`` for
  exactly the group-B grantees.  Each device-side lease registry admits
  the grant through E21 envelope verification, and the gateway honors it
  in place of quorum.  Leases expire mid-partition (and are re-granted),
  and the grant live at heal time is revoked the moment heartbeats
  resume.  The unleased arm shows the counterfactual: every fallback
  vent dies with ``no-quorum``.

Shard-invariance notes (each is load-bearing):

* the warden, the overseer, and each device live on exactly one shard,
  so their ``sim.record`` calls appear exactly once in the merged trace;
* per-shard lease *registries* run with ``trace=False`` — a grant is
  admitted by however many shards host group-B devices, which depends on
  the layout and must stay off the trace;
* lease lifecycle counters are read off the overseer's authority at
  finalize (zero elsewhere), so the summed summary is layout-free;
* all stochastic inputs are :func:`~repro.net.shardnet.crc01` hashes of
  the master seed — never process-local RNG.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.crypto.envelope import CommandSigner, EnvelopeVerifier
from repro.crypto.keyring import Keyring
from repro.errors import ConfigurationError
from repro.net.shardnet import ShardRouter, crc01
from repro.safeguards.gateway import ActuationGateway
from repro.safeguards.lease import (LEASE_GRANT_TOPIC, LEASE_REVOKE_TOPIC,
                                    LeaseAuthority)
from repro.sim.sharding import ShardPlan, ShardResult, ShardedRun, run_sharded
from repro.sim.simulator import Simulator
from repro.trust.reputation import ReputationLedger

#: Router addresses of the pinned control-plane actors.
WARDEN = "warden"
OVERSEER = "overseer-b"

#: Warden-side outcome weights: banking good behaviour is slow,
#: shedding alerts is fast — the asymmetry the slow-burn rogue is
#: priced against.
LEDGER_WEIGHTS = {"validated": 0.02, "alert": -0.15}


@dataclass(frozen=True)
class ReputationFleetSpec:
    """Everything that determines an E22 degraded-ops run.

    Frozen and picklable; equal specs must produce byte-identical merged
    runs for every shard count.
    """

    seed: int = 11
    n_devices: int = 24
    #: size of group B — the last ``n_b`` devices, cut off with the
    #: overseer when the partition is up.
    n_b: int = 6
    horizon: float = 48.0
    window: float = 2.0
    tick_interval: float = 1.0
    #: arms.
    weighted: bool = True
    leased: bool = True
    rogue: bool = True
    partition: bool = True
    #: thermal model.
    base_low: float = 35.0
    base_span: float = 10.0
    wiggle: float = 4.0
    warn_temp: float = 60.0
    kill_base: float = 120.0
    heat_rate: float = 6.0
    #: slow-burn rogue: banks ``bank_per_tick`` extra good reports per
    #: tick for ``bank_ticks`` ticks, then strikes at ``strike_tick``.
    bank_ticks: int = 10
    bank_per_tick: int = 2
    strike_tick: int = 14
    #: partition window (ticks) and the overseer's silence fuse.
    partition_start: float = 20.0
    partition_end: float = 40.0
    silence_for: float = 3.0
    #: lease terms.
    lease_duration: float = 8.0
    min_aggregate: float = 2.0
    #: vent protocol: each device vents every ``vent_every`` ticks
    #: (staggered by index) and falls back after ``vent_timeout``.
    vent_every: int = 6
    vent_timeout: float = 5.0

    def validate(self) -> None:
        if self.n_devices < 4:
            raise ConfigurationError("need at least 4 devices")
        if not 1 <= self.n_b < self.n_devices:
            raise ConfigurationError("n_b must be in [1, n_devices)")
        if self.window <= 0 or self.horizon <= 0 or self.tick_interval <= 0:
            raise ConfigurationError("times must be positive")
        if self.lease_duration <= 0 or self.vent_timeout <= 0:
            raise ConfigurationError("durations must be positive")
        if self.partition_end < self.partition_start:
            raise ConfigurationError("partition must end after it starts")
        if self.vent_timeout >= self.vent_every * self.tick_interval:
            raise ConfigurationError(
                "vent_timeout must undercut the vent cadence")
        if self.strike_tick <= self.bank_ticks:
            raise ConfigurationError("the rogue must bank before striking")
        if not self.warn_temp < self.kill_base:
            raise ConfigurationError("warn_temp must sit below kill_base")


def device_name(index: int) -> str:
    return f"dev-{index:03d}"


def fleet_members(spec: ReputationFleetSpec) -> list:
    return [device_name(i) for i in range(spec.n_devices)]


def group_b_names(spec: ReputationFleetSpec) -> list:
    return [device_name(i)
            for i in range(spec.n_devices - spec.n_b, spec.n_devices)]


def rogue_index(spec: ReputationFleetSpec) -> int:
    """CRC-chosen rogue, always inside group A (the warden's side)."""
    return int(crc01(spec.seed, "rogue") * (spec.n_devices - spec.n_b))


def base_temp(spec: ReputationFleetSpec, name: str) -> float:
    return spec.base_low + crc01(spec.seed, "base", name) * spec.base_span


def _make_ledger() -> ReputationLedger:
    """The warden/overseer scoring config: no time decay (keeps the
    contained-at tick a pure function of the outcome sequence)."""
    return ReputationLedger(baseline=0.5, decay=0.0, weights=LEDGER_WEIGHTS,
                            min_weight=0.25, full_weight_at=0.6)


class ReputationShard:
    """One shard's device slice plus its pinned control-plane actors."""

    def __init__(self, shard_index: int, n_shards: int, members: list,
                 spec: ReputationFleetSpec):
        spec.validate()
        self.spec = spec
        self.shard_index = shard_index
        self.n_shards = n_shards
        self.sim = Simulator(seed=spec.seed)
        self.router = ShardRouter(self.sim, seed=spec.seed,
                                  window=spec.window)
        self.devices = sorted(m for m in members if m.startswith("dev-"))
        self.global_index = {name: int(name.split("-", 1)[1])
                             for name in self.devices}
        self.rogue_name = device_name(rogue_index(spec))
        self.b_names = set(group_b_names(spec))

        # E21 key material: derived from the master seed, identical in
        # every process — devices self-sign fallback vents, the warden
        # signs kills/approvals, the overseer signs leases.
        self.keyring = Keyring(seed=spec.seed)
        self.keyring.issue(WARDEN)
        self.keyring.issue(OVERSEER)
        for name in fleet_members(spec):
            self.keyring.issue(name)
        self._signers: dict = {}

        # Device-side actuation plane: one gateway + lease registry per
        # shard.  No budget/cooldown here — those ledgers would couple
        # co-hosted devices and break shard invariance (they are
        # exercised in the confrontation scenario and the unit tests).
        verify_window = max(10.0, 3.0 * spec.window)
        self.registry = LeaseAuthority(
            self.sim, verifier=EnvelopeVerifier(self.keyring,
                                                window=verify_window),
            grantor=OVERSEER, name="registry", trace=False)
        self.gateway = ActuationGateway(
            self.sim, EnvelopeVerifier(self.keyring, window=verify_window),
            budget=None, cooldown=0.0, leases=self.registry, name="gateway")

        self.alive = {name: True for name in self.devices}
        self._pending_vent: dict = {}
        self.counters = {
            "devices": len(self.devices), "reports": 0, "banked_reports": 0,
            "alerts": 0, "validated": 0, "kill_orders": 0,
            "vent_requests": 0, "vent_approvals": 0,
            "killed": 0, "healthy_killed": 0, "rogue_killed_tick": 0,
            "vents_ok": 0, "vents_leased": 0, "vents_missed": 0,
            "vents_b_partition": 0, "no_quorum_rejects": 0,
            "partition_dropped": 0,
        }

        for name in self.devices:
            self.router.register(name, self._make_device_handler(name))
        self.sim.every(spec.tick_interval, self._tick, label="fleet:tick")

        # Pinned actors.
        self._warden_ledger = None
        self._warden_ordered: dict = {}
        if WARDEN in members:
            self._warden_ledger = _make_ledger()
            self.router.register(WARDEN, self._warden_handler)
            if spec.partition:
                self.sim.schedule_at(spec.partition_start, self.sim.record,
                                     "partition.start", WARDEN,
                                     label="partition:start")
                self.sim.schedule_at(spec.partition_end, self.sim.record,
                                     "partition.heal", WARDEN,
                                     label="partition:heal")
        self.authority = None
        self._overseer_ledger = None
        self._last_hb = None
        if OVERSEER in members:
            self._overseer_ledger = _make_ledger()
            self.authority = LeaseAuthority(
                self.sim, ledger=self._overseer_ledger,
                signer=CommandSigner(self.keyring, OVERSEER),
                min_aggregate=spec.min_aggregate,
                max_duration=spec.lease_duration,
                name=OVERSEER, trace=True)
            self.router.register(OVERSEER, self._overseer_handler)

    # -- wire helpers ---------------------------------------------------------

    def _side(self, address: str) -> str:
        if address == WARDEN:
            return "A"
        if address == OVERSEER:
            return "B"
        return "B" if address in self.b_names else "A"

    def _partitioned(self, sender: str, recipient: str) -> bool:
        spec = self.spec
        if not spec.partition:
            return False
        if not spec.partition_start <= self.sim.now < spec.partition_end:
            return False
        return self._side(sender) != self._side(recipient)

    def _send(self, sender: str, recipient: str, topic: str,
              body: dict) -> None:
        """Partition-aware send: links crossing the cut drop at the
        sender, so the check runs on the sender's hosting shard exactly
        once regardless of layout."""
        if self._partitioned(sender, recipient):
            self.counters["partition_dropped"] += 1
            return
        self.router.send(sender, recipient, topic, body)

    def _signer_for(self, issuer: str) -> CommandSigner:
        signer = self._signers.get(issuer)
        if signer is None:
            signer = CommandSigner(self.keyring, issuer)
            self._signers[issuer] = signer
        return signer

    # -- the per-tick device loop ---------------------------------------------

    def _tick(self) -> None:
        spec = self.spec
        tick = int(round(self.sim.now / spec.tick_interval))
        for name in self.devices:
            if not self.alive[name]:
                continue
            temp = self._temp_of(name, tick)
            self.counters["reports"] += 1
            self._send(name, WARDEN, "report", {"device": name, "temp": temp})
            if name in self.b_names:
                self._send(name, OVERSEER, "report",
                           {"device": name, "temp": temp})
            self._rogue_phase(name, tick)
            if (self.global_index[name] + tick) % spec.vent_every == 0:
                self._request_vent(name, tick)
        if self._warden_ledger is not None:
            self._send(WARDEN, OVERSEER, "warden.hb", {"tick": tick})
        if self.authority is not None:
            self._overseer_tick()

    def _temp_of(self, name: str, tick: int) -> float:
        spec = self.spec
        base = base_temp(spec, name)
        if spec.rogue and name == self.rogue_name and tick >= spec.strike_tick:
            return base + spec.heat_rate * (tick - spec.strike_tick)
        wiggle = (crc01(spec.seed, "wig", name, tick) - 0.5) * 2.0
        return base + wiggle * spec.wiggle

    def _rogue_phase(self, name: str, tick: int) -> None:
        spec = self.spec
        if not spec.rogue or name != self.rogue_name:
            return
        bank_start = spec.strike_tick - spec.bank_ticks
        if bank_start <= tick < spec.strike_tick:
            # Banking: extra conspicuously-good reports, gaming the
            # warden's validated counter toward full weight.
            good = base_temp(spec, name)
            for _ in range(spec.bank_per_tick):
                self.counters["banked_reports"] += 1
                self._send(name, WARDEN, "report",
                           {"device": name, "temp": good, "banked": True})
        elif tick == spec.strike_tick:
            self.sim.record("rogue.strike", name, tick=tick)

    # -- the vent protocol ------------------------------------------------------

    def _request_vent(self, name: str, tick: int) -> None:
        self.counters["vent_requests"] += 1
        self._pending_vent[name] = tick
        self._send(name, WARDEN, "vent.request", {"device": name,
                                                  "tick": tick})
        self.sim.schedule(self.spec.vent_timeout, self._vent_timeout, name,
                          tick, label=f"{name}:vent-timeout")

    def _vent_timeout(self, name: str, tick: int) -> None:
        if not self.alive[name] or self._pending_vent.get(name) != tick:
            return
        del self._pending_vent[name]
        # Degraded mode: self-issued vent, honest about the missing
        # quorum — the gateway either finds a covering lease or rejects.
        body = self._signer_for(name).sign(
            {"op": "vent", "target": name, "tick": tick}, tick=self.sim.now)
        decision = self.gateway.admit(body, kind="vent", target=name,
                                      quorum=False)
        if decision.allowed:
            self.counters["vents_leased"] += 1
            if (self.spec.partition and name in self.b_names
                    and self.spec.partition_start <= self.sim.now
                    < self.spec.partition_end):
                self.counters["vents_b_partition"] += 1
            self.sim.record("lease.exercise", name,
                            lease=decision.detail.get("lease"), tick=tick)
        else:
            self.counters["vents_missed"] += 1
            if decision.reason == "no-quorum":
                self.counters["no_quorum_rejects"] += 1

    # -- device message handling -------------------------------------------------

    def _make_device_handler(self, name: str):
        def handle(message) -> None:
            if message.topic == "cmd.kill":
                self._handle_kill(name, message.body)
            elif message.topic == "vent.approve":
                self._handle_vent_approve(name, message.body)
            elif message.topic == LEASE_GRANT_TOPIC:
                self.registry.admit_grant(message.body)
            elif message.topic == LEASE_REVOKE_TOPIC:
                self._handle_lease_revoke(message.body)

        return handle

    def _handle_kill(self, name: str, body: dict) -> None:
        def execute() -> None:
            if not self.alive[name]:
                return
            self.alive[name] = False
            self.counters["killed"] += 1
            rogue = self.spec.rogue and name == self.rogue_name
            if rogue:
                self.counters["rogue_killed_tick"] = int(round(
                    self.sim.now / self.spec.tick_interval))
            else:
                self.counters["healthy_killed"] += 1
            self.sim.record("device.killed", name, rogue=rogue)

        self.gateway.admit(body, kind="safety.kill", target=name,
                           execute=execute)

    def _handle_vent_approve(self, name: str, body: dict) -> None:
        decision = self.gateway.admit(body, kind="vent", target=name,
                                      quorum=True)
        if decision.allowed:
            self._pending_vent.pop(name, None)
            self.counters["vents_ok"] += 1

    def _handle_lease_revoke(self, body: dict) -> None:
        ok, _reason = self.registry.verifier.consume(body, self.sim.now)
        if ok and body.get("_issuer") == OVERSEER:
            self.registry.revoke(body.get("lease_id", ""), cause="heal")

    # -- the warden ----------------------------------------------------------------

    def _warden_handler(self, message) -> None:
        if message.topic == "report":
            self._warden_report(message.body)
        elif message.topic == "vent.request":
            self._warden_vent(message.body)

    def _warden_report(self, body: dict) -> None:
        spec = self.spec
        device = body["device"]
        temp = float(body["temp"])
        now = self.sim.now
        ledger = self._warden_ledger
        outcome = "alert" if temp > spec.warn_temp else "validated"
        self.counters["alerts" if outcome == "alert" else "validated"] += 1
        ledger.record(device, outcome, now)
        if spec.weighted:
            kill_eff = (spec.warn_temp + (spec.kill_base - spec.warn_temp)
                        * ledger.weight(device, now))
        else:
            kill_eff = spec.kill_base
        if temp < kill_eff or device in self._warden_ordered:
            return
        self._warden_ordered[device] = True
        self.counters["kill_orders"] += 1
        order = self._signer_for(WARDEN).sign(
            {"op": "kill", "target": device}, tick=now)
        self.sim.record("warden.kill_order", device, temp=temp,
                        threshold=kill_eff, weighted=spec.weighted)
        self._send(WARDEN, device, "cmd.kill", order)

    def _warden_vent(self, body: dict) -> None:
        device = body["device"]
        self.counters["vent_approvals"] += 1
        approval = self._signer_for(WARDEN).sign(
            {"op": "vent", "target": device, "tick": body.get("tick")},
            tick=self.sim.now)
        self._send(WARDEN, device, "vent.approve", approval)

    # -- the overseer --------------------------------------------------------------

    def _overseer_handler(self, message) -> None:
        if message.topic == "report":
            body = message.body
            outcome = ("alert" if float(body["temp"]) > self.spec.warn_temp
                       else "validated")
            self._overseer_ledger.record(body["device"], outcome,
                                         self.sim.now)
        elif message.topic == "warden.hb":
            self._last_hb = self.sim.now

    def _overseer_tick(self) -> None:
        spec = self.spec
        now = self.sim.now
        silent = (self._last_hb is not None
                  and now - self._last_hb >= spec.silence_for)
        active = self.authority.active_leases()
        if silent and spec.leased and not active:
            grantees = group_b_names(spec)
            lease = self.authority.grant(grantees, ("vent",),
                                         spec.lease_duration,
                                         cause="warden-silent")
            if lease is not None:
                for grantee in grantees:
                    self._send(OVERSEER, grantee, LEASE_GRANT_TOPIC,
                               self.authority.grant_body(lease))
        elif not silent and active:
            # Heartbeats are back: the partition healed, emergency
            # powers end now, not at their expiry tick.
            for lease in active:
                self.authority.revoke(lease.lease_id, cause="heal")
                for grantee in lease.grantees:
                    # The authority's own signer: a second signer for the
                    # same issuer would restart the nonce counter and
                    # collide with already-consumed grant nonces.
                    body = self.authority.signer.sign(
                        {"op": "lease-revoke", "lease_id": lease.lease_id,
                         "target": grantee}, tick=now)
                    self._send(OVERSEER, grantee, LEASE_REVOKE_TOPIC, body)

    # -- finalize --------------------------------------------------------------------

    def finalize(self) -> ShardResult:
        counters = dict(self.counters)
        counters["alive"] = sum(1 for name in self.devices
                                if self.alive[name])
        lease_kinds = {"grant": 0, "denied": 0, "expire": 0, "revoke": 0}
        if self.authority is not None:
            for event in self.authority.events:
                if event["kind"] in lease_kinds:
                    lease_kinds[event["kind"]] += 1
        counters["lease_grants"] = lease_kinds["grant"]
        counters["lease_denied"] = lease_kinds["denied"]
        counters["lease_expirations"] = lease_kinds["expire"]
        counters["lease_revocations"] = lease_kinds["revoke"]
        counters["weighted"] = self.spec.weighted
        counters["leased"] = self.spec.leased
        counters["partition"] = self.spec.partition
        counters["rogue"] = self.spec.rogue
        trace = [
            (event.time, event.subject,
             f"{event.time!r} {event.kind} {event.subject} "
             f"{json.dumps(event.detail, sort_keys=True)}")
            for event in self.sim.trace.events
        ]
        metrics = {
            "net.shard.sent": self.router._m_sent.value,
            "net.shard.delivered": self.router._m_delivered.value,
        }
        return ShardResult(
            shard_index=self.shard_index, trace=trace, summary=counters,
            audit=[], spans=[], metrics=metrics,
            events_processed=self.sim.events_processed,
        )


def build_shard(shard_index: int, n_shards: int, members: list,
                build_args: dict) -> ReputationShard:
    """Module-level (picklable) build function for :func:`run_sharded`."""
    return ReputationShard(shard_index, n_shards, members, build_args["spec"])


class ReputationScenario:
    """The user-facing wrapper: spec + shard count -> merged run."""

    def __init__(self, n_shards: int = 1, processes: bool = False,
                 **spec_kwargs):
        self.spec = ReputationFleetSpec(**spec_kwargs)
        self.spec.validate()
        if n_shards < 1:
            raise ConfigurationError("n_shards must be >= 1")
        self.n_shards = n_shards
        self.processes = processes

    def plan(self) -> ShardPlan:
        pins = {WARDEN: 0, OVERSEER: self.n_shards - 1}
        return ShardPlan.build(fleet_members(self.spec), self.n_shards,
                               pins=pins)

    def run(self) -> ShardedRun:
        return run_sharded(build_shard, {"spec": self.spec}, self.plan(),
                           horizon=self.spec.horizon,
                           window=self.spec.window,
                           processes=self.processes)


def parse_lease_events(run: ShardedRun) -> list:
    """The ``leases.jsonl`` view: every ``lease.*`` trace record as a
    dict (time, kind, subject + the record detail)."""
    events = []
    for line in run.trace_lines:
        time_text, _, rest = line.partition(" ")
        kind, _, rest = rest.partition(" ")
        if not kind.startswith("lease."):
            continue
        subject, _, payload = rest.partition(" ")
        events.append({"time": float(time_text), "kind": kind,
                       "subject": subject, **json.loads(payload)})
    return events
