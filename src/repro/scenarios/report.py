"""After-action reports: a human-readable account of what a run did.

The paper's audit story (sec VI-B) demands "comprehensive context
information"; this module turns a finished scenario's trace, metrics, and
safeguard records into the report a commander (or an incident review)
would actually read: harm events, safeguard interventions, attack and
containment timelines, emergent-behaviour findings, and audit outcomes.
"""

from __future__ import annotations

from typing import Optional

from repro.emergent.detector import EmergentBehaviorDetector
from repro.sim.simulator import Simulator


class AfterActionReport:
    """Builds a structured report from a completed simulation."""

    def __init__(self, sim: Simulator, title: str = "After-action report"):
        self.sim = sim
        self.title = title
        self._sections: list[tuple] = []

    # -- section builders --------------------------------------------------------

    def add_harm_section(self, world) -> "AfterActionReport":
        lines = []
        events = list(world.harm_events)
        lines.append(f"humans harmed: {len(events)}")
        by_kind: dict[str, int] = {}
        by_device: dict[str, int] = {}
        for event in events:
            by_kind[event.kind.value] = by_kind.get(event.kind.value, 0) + 1
            by_device[event.device_id] = by_device.get(event.device_id, 0) + 1
        for kind, count in sorted(by_kind.items()):
            lines.append(f"  {kind}: {count}")
        if by_device:
            worst = max(sorted(by_device), key=lambda d: by_device[d])
            lines.append(f"most harmful device: {worst} ({by_device[worst]})")
        open_hazards = len(world.open_hazards())
        lines.append(f"hazards left open: {open_hazards}")
        self._sections.append(("Harm", lines))
        return self

    def add_safeguard_section(self, devices: dict) -> "AfterActionReport":
        lines = []
        total_vetoes = 0
        for device_id in sorted(devices):
            device = devices[device_id]
            vetoed = sum(1 for decision in device.engine.decisions
                         if decision.vetoes)
            if vetoed:
                lines.append(f"  {device_id}: {vetoed} vetoed decision(s)")
            total_vetoes += vetoed
        lines.insert(0, f"decisions with safeguard vetoes: {total_vetoes}")
        deactivations = self.sim.trace.query("watchdog.deactivate")
        lines.append(f"watchdog deactivations: {len(deactivations)}")
        for event in deactivations[:10]:
            lines.append(f"  t={event.time:.1f} {event.subject} "
                         f"({event.detail.get('cause')})")
        self._sections.append(("Safeguards", lines))
        return self

    def add_attack_section(self, injector=None) -> "AfterActionReport":
        lines = []
        launches = self.sim.trace.query("attack.launch")
        compromises = self.sim.trace.query("attack.compromise")
        lines.append(f"attacks launched: {len(launches)}")
        for event in launches:
            lines.append(f"  t={event.time:.1f} {event.subject} "
                         f"[{event.detail.get('channel')}]")
        lines.append(f"devices compromised: {len(compromises)}")
        if injector is not None:
            latencies: list[float] = []
            for record in injector.records:
                latencies.extend(record.containment_latency())
            if latencies:
                lines.append(
                    f"mean containment latency: "
                    f"{sum(latencies) / len(latencies):.2f}"
                )
        self._sections.append(("Attacks", lines))
        return self

    def add_emergent_section(self, constraint_name: str = "heat",
                             horizon: Optional[float] = None) -> "AfterActionReport":
        lines = []
        series = self.sim.metrics.get(f"aggregate.{constraint_name}")
        detector = EmergentBehaviorDetector()
        if series is not None and series.samples:
            oscillation = detector.detect_oscillation(series.samples)
            lines.append(f"aggregate '{constraint_name}': peak "
                         f"{series.peak():.1f}, last {series.last():.1f}")
            if oscillation is not None:
                lines.append(
                    f"  OSCILLATION detected (score {oscillation.score:.2f})"
                )
        failures = [event.time for event in
                    self.sim.trace.query("watchdog.deactivate")]
        if failures and horizon:
            cascades = detector.detect_cascade(failures, horizon)
            for cascade in cascades:
                lines.append(
                    f"  CASCADE: {cascade.detail['events']} failures in "
                    f"[{cascade.start:.1f}, {cascade.end:.1f}]"
                )
        if not lines:
            lines.append("no aggregate series recorded")
        self._sections.append(("Emergent behaviour", lines))
        return self

    def add_audit_section(self, findings) -> "AfterActionReport":
        lines = [f"audit findings: {len(findings)}"]
        for finding in findings[:10]:
            lines.append(f"  [{finding.severity}] {finding.subject}: "
                         f"{finding.message}")
        self._sections.append(("Audit", lines))
        return self

    def add_custom_section(self, heading: str, lines) -> "AfterActionReport":
        self._sections.append((heading, list(lines)))
        return self

    # -- rendering -----------------------------------------------------------------

    def render(self) -> str:
        out = [f"=== {self.title} (t={self.sim.now:.1f}, "
               f"{self.sim.events_processed} events) ==="]
        for heading, lines in self._sections:
            out.append("")
            out.append(f"-- {heading} --")
            out.extend(lines)
        return "\n".join(out)

    def print(self) -> None:
        print(self.render())
