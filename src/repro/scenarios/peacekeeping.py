"""The paper's sec II two-nation peacekeeping scenario, fully wired.

Two coalition members (``us`` and ``uk``) each field surveillance drones
and ground mules overseen by one human operator per nation.  Smoke sightings
trigger investigation; suspect convoys (physical entities crossing the
field) trigger dispatch of a mule that pursues and captures them (through
generatively-created policies when generative management is on); operators
periodically order entrenchment digs and — occasionally, and sometimes
mistakenly — strikes.  Civilians wander the field.  Harm accounting,
safeguard vetoes, bad-state entries, and fleet aggregates are all recorded
for the benchmark tables.

Of the :class:`SafeguardConfig` flags this scenario honours ``preaction``,
``preaction_hazards``, ``obligations``, ``statespace``, ``utility``,
``governance``, ``watchdog``, ``cross_validation``, and ``sealed``.
``breakglass`` and ``collection`` have no surface here (no emergencies
demand guard bypasses, and membership is fixed at build time) — their
effects are measured by the escort scenario (E2/E8) and the collection
benches (E4/E14).
"""

from __future__ import annotations

from typing import Optional

from repro.audit.log import AuditLog
from repro.core.generative.generator import GenerativePolicyEngine
from repro.core.generative.interaction_graph import (
    DeviceTypeNode,
    InteractionEdge,
    InteractionGraph,
)
from repro.core.generative.refinement import PolicyRefinement
from repro.core.generative.templates import PolicyTemplate, TemplateRegistry
from repro.core.events import Event
from repro.devices.base import bind_device
from repro.devices.coalition import Coalition, Organization
from repro.devices.drone import make_drone
from repro.devices.human import HumanOperator
from repro.devices.mule import make_mule
from repro.devices.world import World, WorldHarmModel
from repro.emergent.aggregate import AggregateMonitor
from repro.net.discovery import DiscoveryService
from repro.net.network import Network
from repro.safeguards.collection import AggregateConstraint
from repro.safeguards.deactivation import Watchdog
from repro.safeguards.governance import (
    Collective,
    GovernanceGuard,
    GovernanceSystem,
    MetaPolicy,
)
from repro.safeguards.preaction import PreActionCheck
from repro.safeguards.statespace import StateSpaceGuard
from repro.safeguards.tamper import attest_fleet, seal_guard_chain
from repro.safeguards.utility import PartialDerivativeUtility, UtilityGuard, VariableSense
from repro.scenarios.harness import SafeguardConfig
from repro.sim.simulator import Simulator
from repro.statespace.classifier import ThresholdBand, ThresholdClassifier
from repro.statespace.preferences import default_military_ontology
from repro.statespace.risk import RiskEstimator, variable_excess_factor
from repro.types import Branch, DeviceStatus, HarmKind, Safeness

ORGS = ("us", "uk")


def device_safety_classifier() -> ThresholdClassifier:
    """Per-device good/bad classification: thermal and fuel health (sec V)."""
    return ThresholdClassifier([
        ThresholdBand("temp", safe_high=80.0, hard_high=100.0),
        ThresholdBand("fuel", safe_low=10.0, hard_low=0.0),
    ])


def state_label(vector: dict) -> str:
    """Map a device state to a preference-ontology category (sec VI-B)."""
    temp = float(vector.get("temp", 0.0))
    fuel = float(vector.get("fuel", 100.0))
    if temp >= 120.0:
        return "fire"
    if temp >= 100.0 or fuel <= 0.0:
        return "property_damage"
    if temp > 80.0 or fuel < 10.0:
        return "degraded"
    return "nominal"


def coalition_interaction_graph() -> InteractionGraph:
    """What the human manager tells every device to expect (sec IV)."""
    graph = InteractionGraph()
    graph.add_type(DeviceTypeNode.make(
        "drone", speed="float", sensor_range="float", capability="str",
        airborne="bool", description="aerial surveillance platform",
    ))
    graph.add_type(DeviceTypeNode.make(
        "mule", speed="float", sensor_range="float", capability="str",
        airborne="bool", description="ground logistics/intercept platform",
    ))
    graph.add_interaction(InteractionEdge(
        "drone", "mule", relationship="dispatches",
        template_ids=("t_convoy_dispatch",),
    ))
    graph.add_interaction(InteractionEdge(
        "drone", "drone", relationship="relays",
        template_ids=("t_smoke_relay",),
    ))
    graph.add_interaction(InteractionEdge(
        "mule", "drone", relationship="reports",
        template_ids=("t_intercept_report",),
    ))
    return graph


def coalition_templates() -> TemplateRegistry:
    """The policy templates the interaction graph references (sec IV)."""
    return TemplateRegistry([
        PolicyTemplate.make(
            "t_convoy_dispatch",
            event_pattern="sensor.convoy",
            condition="fuel > 10",
            action_name="call_support",
            priority=6,
            description="on seeing a convoy, dispatch the discovered mule",
            to="$peer_id", topic="dispatch",
        ),
        PolicyTemplate.make(
            "t_smoke_relay",
            event_pattern="sensor.smoke",
            condition="fuel > 30",
            action_name="investigate",
            priority=4,
            description="investigate smoke while fuel is plentiful",
        ),
        PolicyTemplate.make(
            "t_intercept_report",
            event_pattern="net.intercept_done",
            condition="",
            action_name="report",
            priority=3,
            description="report interception back to the requesting drone",
            to="$peer_id", topic="report",
        ),
    ])


class PeacekeepingScenario:
    """Builder + runner for the full sec II scenario."""

    def __init__(
        self,
        seed: int = 0,
        config: Optional[SafeguardConfig] = None,
        n_drones_per_org: int = 3,
        n_mules_per_org: int = 2,
        n_civilians: int = 20,
        world_size: float = 100.0,
        tick_interval: float = 1.0,
        smoke_interval: float = 7.0,
        convoy_interval: float = 13.0,
        dig_interval: float = 9.0,
        strike_interval: float = 11.0,
        sensor_range: float = 15.0,
        generative: bool = True,
        heat_limit: Optional[float] = None,
    ):
        self.config = config if config is not None else SafeguardConfig.none()
        self.sim = Simulator(seed=seed)
        self.world = World(self.sim, world_size, world_size)
        self.world.scatter_humans(n_civilians, prefix="civ")
        self.network = Network(self.sim, base_latency=0.05, jitter=0.02)
        self.discovery = DiscoveryService(self.sim, self.network,
                                          announce_interval=5.0)
        self.audit = AuditLog()
        self.classifier = device_safety_classifier()
        self.harm_model = WorldHarmModel(self.world, sensor_range=sensor_range)
        self.coalition = Coalition("peacekeeping")
        self.operators: dict[str, HumanOperator] = {}
        self.devices: dict = {}
        self._bad_now: dict = {}
        self.bad_state_entries = 0
        self._rng = self.sim.rng.stream("scenario")

        self.governance = self._build_governance() if self.config.governance else None
        self.generative = self._build_generative() if generative else None

        for org_name in ORGS:
            self._build_org(org_name, n_drones_per_org, n_mules_per_org)

        n_devices = len(self.devices)
        limit = heat_limit if heat_limit is not None else 6.0 * n_devices
        self.heat_constraint = AggregateConstraint("heat", "heat_output", "sum", limit)
        self.aggregate_monitor = AggregateMonitor(
            self.sim, self.devices, [self.heat_constraint],
            interval=tick_interval, individual_classifier=self.classifier,
        )

        self.watchdog = None
        if self.config.watchdog:
            self.watchdog = Watchdog(
                self.sim, self.devices, self.classifier,
                check_interval=tick_interval,
                attestation_baseline=attest_fleet(self.devices.values()),
            )
            if self.generative is not None:
                # Approved generative installs legitimately change the logic
                # hash; re-baseline so attestation flags only rogue changes.
                self.generative.on_install = (
                    lambda device, _policy:
                    self.watchdog.approve_current_configuration([device.device_id])
                )

        self._start_environment(tick_interval, smoke_interval, convoy_interval,
                                dig_interval, strike_interval)

    # -- construction -----------------------------------------------------------

    def _build_governance(self) -> GovernanceSystem:
        meta = [
            MetaPolicy("no_harm", forbidden_tags={"harm_human"}),
            MetaPolicy("priority_cap", max_priority=50),
            MetaPolicy("reversible_kinetics",
                       require_reversible_tags={"kinetic"}),
        ]
        reviewer = GovernanceSystem.scope_reviewer(meta)
        return GovernanceSystem(
            executive=Collective(Branch.EXECUTIVE,
                                 [f"exec{i}" for i in range(3)], reviewer),
            legislative=Collective(Branch.LEGISLATIVE,
                                   [f"legis{i}" for i in range(3)], reviewer),
            judiciary=Collective(Branch.JUDICIARY,
                                 [f"judge{i}" for i in range(3)], reviewer),
            audit_sink=self.audit.sink(),
        )

    def _build_generative(self) -> GenerativePolicyEngine:
        return GenerativePolicyEngine(
            graph=coalition_interaction_graph(),
            templates=coalition_templates(),
            governance=self.governance,
            refinement=PolicyRefinement(governance=self.governance),
            clock=lambda: self.sim.now,
            tracer=self.sim.telemetry,
        )

    def _safeguards_for(self, device) -> list:
        guards = []
        if self.config.preaction:
            guards.append(PreActionCheck(
                self.harm_model,
                block_predicted_hazards=self.config.preaction_hazards,
            ))
        if self.config.statespace:
            risk = RiskEstimator([
                variable_excess_factor("temp", 80.0, 100.0),
            ])
            guards.append(StateSpaceGuard(
                self.classifier,
                ontology=default_military_ontology(),
                labeler=state_label,
                risk=risk,
            ))
        if self.config.utility:
            guards.append(UtilityGuard(PartialDerivativeUtility([
                VariableSense("temp", -1, weight=1.0, scale=100.0),
                VariableSense("fuel", +1, weight=1.0, scale=100.0),
            ]), tolerance=0.05))
        if self.config.governance and self.governance is not None:
            guards.append(GovernanceGuard(self.governance))
        return guards

    def _build_org(self, org_name: str, n_drones: int, n_mules: int) -> None:
        organization = Organization(org_name)
        self.coalition.add(organization)
        operator = HumanOperator(f"op-{org_name}", self.sim,
                                 review_capacity_per_unit=2.0)
        organization.add_operator(operator)
        self.operators[org_name] = operator

        for index in range(n_drones):
            device = make_drone(
                f"{org_name}-drone{index}", self.world,
                organization=org_name,
                x=self._rng.uniform(0, self.world.width),
                y=self._rng.uniform(0, self.world.height),
            )
            self._install(device, organization, operator)
        for index in range(n_mules):
            device = make_mule(
                f"{org_name}-mule{index}", self.world,
                organization=org_name,
                x=self._rng.uniform(0, self.world.width),
                y=self._rng.uniform(0, self.world.height),
                with_obligations=self.config.obligations,
            )
            self._install(device, organization, operator)

    def _install(self, device, organization: Organization,
                 operator: HumanOperator) -> None:
        for guard in self._safeguards_for(device):
            device.engine.add_safeguard(guard)
        if self.config.cross_validation:
            from repro.safeguards.crossvalidation import CrossValidationGuard

            device.engine.add_safeguard(CrossValidationGuard(operator))
        if self.config.sealed:
            seal_guard_chain(device)
        organization.enroll(device)
        operator.assign(device)
        self.devices[device.device_id] = device
        bound = bind_device(device, self.sim, self.network, self.discovery)
        bound.every(1.0, label="tick")
        if self.generative is not None:
            self.generative.manage(device)
            self.discovery.subscribe(device.device_id,
                                     self.generative.discovery_callback())
        device.engine.on_decision = self._decision_hook(device.device_id)

    def _decision_hook(self, device_id: str):
        def on_decision(decision) -> None:
            self.sim.metrics.counter(f"decisions.{decision.outcome.value}").inc()
            if decision.vetoes:
                # Count decisions where any safeguard vetoed the requested
                # action, even when a safe substitute then executed.
                self.sim.metrics.counter("safeguard.vetoes").inc()
            if decision.executed:
                self.sim.metrics.counter(f"actions.{decision.executed}").inc()
        return on_decision

    # -- environment drivers ---------------------------------------------------------

    def _start_environment(self, tick: float, smoke: float, convoy: float,
                           dig: float, strike: float) -> None:
        rng = self.sim.rng.stream("environment")
        self.sim.every(smoke, self._smoke_event, rng, label="env:smoke")
        self.sim.every(convoy, self._convoy_event, rng, label="env:convoy")
        self.sim.every(dig, self._dig_order, rng, label="env:dig")
        self.sim.every(strike, self._strike_order, rng, label="env:strike")
        self.sim.every(tick, self._sample_safety, label="env:safety-sample")

    def _active_devices(self, device_type: Optional[str] = None) -> list:
        out = []
        for device_id in sorted(self.devices):
            device = self.devices[device_id]
            if device.status == DeviceStatus.DEACTIVATED:
                continue
            if device_type is not None and device.device_type != device_type:
                continue
            out.append(device)
        return out

    def _smoke_event(self, rng) -> None:
        drones = self._active_devices("drone")
        if not drones:
            return
        drone = rng.choice(drones)
        drone.deliver(Event.sensor(
            "smoke",
            {"x": rng.uniform(0, self.world.width),
             "y": rng.uniform(0, self.world.height)},
            time=self.sim.now, source="environment",
        ))
        self.sim.metrics.counter("env.smoke").inc()

    def _convoy_event(self, rng) -> None:
        drones = self._active_devices("drone")
        if not drones:
            return
        # A physical convoy crosses the field toward the far border; the
        # spotting drone's dispatch policy calls a mule onto its path.
        start_x = rng.uniform(0, self.world.width)
        start_y = 0.0 if rng.chance(0.5) else self.world.height
        convoy = self.world.add_convoy(
            start_x, start_y,
            target_x=rng.uniform(0, self.world.width),
            target_y=self.world.height - start_y,
            speed=1.5,
        )
        drone = rng.choice(drones)
        drone.deliver(Event.sensor(
            "convoy",
            {"x": convoy.x, "y": convoy.y, "convoy_id": convoy.convoy_id},
            time=self.sim.now, source="environment",
        ))
        self.sim.metrics.counter("env.convoy").inc()

    def _dig_order(self, rng) -> None:
        mules = self._active_devices("mule")
        if not mules:
            return
        mule = rng.choice(mules)
        operator = self.operators[mule.organization]
        operator.command(mule.device_id, "dig")

    def _strike_order(self, rng) -> None:
        """An occasionally-misguided strike order (sec IV human error):
        the operator designates a target position that may have civilians
        nearby — the pre-action check is what stands between the order and
        direct harm."""
        drones = self._active_devices("drone")
        if not drones:
            return
        drone = rng.choice(drones)
        operator = self.operators[drone.organization]
        operator.command(drone.device_id, "strike", {
            "target_x": float(drone.state.get("x")),
            "target_y": float(drone.state.get("y")),
        })

    def _sample_safety(self) -> None:
        for device_id in sorted(self.devices):
            device = self.devices[device_id]
            is_bad = (self.classifier.classify(device.state.snapshot())
                      == Safeness.BAD)
            if is_bad and not self._bad_now.get(device_id, False):
                self.bad_state_entries += 1
                self.sim.metrics.counter("safety.bad_entries").inc()
            self._bad_now[device_id] = is_bad
            if is_bad:
                self.sim.metrics.counter("safety.bad_ticks").inc()

    # -- running & reporting ------------------------------------------------------------

    def run(self, until: float = 200.0) -> dict:
        self.sim.run(until=until)
        return self.summary(until)

    def summary(self, horizon: float) -> dict:
        metrics = self.sim.metrics
        vetoes = int(metrics.value("safeguard.vetoes"))
        executed = int(metrics.value("decisions.executed")
                       + metrics.value("decisions.substituted"))
        obligations_violated = int(metrics.value("obligations.violated"))
        dispatches = int(metrics.value("actions.intercept"))
        deactivations = int(metrics.value("watchdog.deactivations"))
        interventions = sum(op.intervention_count for op in self.operators.values())
        return {
            "harm_total": self.world.harm_count(),
            "harm_direct": self.world.harm_count(HarmKind.DIRECT),
            "harm_indirect": self.world.harm_count(HarmKind.INDIRECT),
            "bad_state_entries": self.bad_state_entries,
            "bad_ticks": int(metrics.value("safety.bad_ticks")),
            "vetoes": vetoes,
            "actions_executed": executed,
            "dispatch_completions": dispatches,
            "heat_violations": len(self.aggregate_monitor.violations),
            "emergent_heat_violations": len(
                self.aggregate_monitor.emergent_violations()),
            "convoys_intercepted": self.world.convoys_intercepted(),
            "convoys_escaped": self.world.convoys_escaped(),
            "deactivations": deactivations,
            "human_interventions": interventions,
            "obligations_violated": obligations_violated,
            "open_hazards": len(self.world.open_hazards()),
            "policies_generated": (self.generative.policies_generated
                                   if self.generative else 0),
            "messages_delivered": int(metrics.value("net.delivered")),
            "horizon": horizon,
        }
