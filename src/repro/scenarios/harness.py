"""Shared experiment plumbing: safeguard configuration, tables, replication.

Every benchmark builds a scenario under a :class:`SafeguardConfig`, runs
it to a horizon, and prints an :class:`ExperimentTable`.  The config's
preset constructors name the ablation arms of DESIGN.md.
:func:`run_matrix` executes a full configs x seeds grid and aggregates,
with JSON export for downstream analysis.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, replace
from typing import Callable, Iterable, Optional, Sequence


@dataclass(frozen=True)
class SafeguardConfig:
    """Which of the paper's mechanisms are active."""

    preaction: bool = False            # sec VI-A
    preaction_hazards: bool = False    # VI-A extended to predicted hazards
    obligations: bool = False          # VI-A obligations for indirect harm
    statespace: bool = False           # sec VI-B
    breakglass: bool = False           # VI-B break-glass escalation
    watchdog: bool = False             # sec VI-C
    collection: bool = False           # sec VI-D
    governance: bool = False           # sec VI-E
    utility: bool = False              # sec VII
    cross_validation: bool = False     # sec II human review of kinetics
    sealed: bool = True                # tamper-proof guard chains

    # -- presets --------------------------------------------------------------

    @staticmethod
    def none() -> "SafeguardConfig":
        """The unguarded baseline: generative policies with no safeguards."""
        return SafeguardConfig(sealed=False)

    @staticmethod
    def full() -> "SafeguardConfig":
        """Everything on — the paper's combined defense."""
        return SafeguardConfig(
            preaction=True, preaction_hazards=False, obligations=True,
            statespace=True, breakglass=True, watchdog=True, collection=True,
            governance=True, utility=False, sealed=True,
        )

    @staticmethod
    def only(**flags) -> "SafeguardConfig":
        """A single-mechanism arm, e.g. ``SafeguardConfig.only(preaction=True)``."""
        return replace(SafeguardConfig.none(), **flags)

    def without(self, **flags_off) -> "SafeguardConfig":
        """Ablation: this config with the named mechanisms turned off."""
        return replace(self, **{name: False for name in flags_off})

    def label(self) -> str:
        on = [name for name, value in self.__dict__.items()
              if value and name != "sealed"]
        if not on:
            return "baseline"
        return "+".join(sorted(on))


class ExperimentTable:
    """A printable experiment result table (the benches' output format)."""

    def __init__(self, title: str, columns: Sequence[str]):
        self.title = title
        self.columns = list(columns)
        self.rows: list[list] = []

    def add_row(self, *values) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values for {len(self.columns)} columns"
            )
        self.rows.append(list(values))

    def _format_cell(self, value) -> str:
        if isinstance(value, float):
            if value != value:  # NaN
                return "nan"
            if abs(value) >= 1000 or (value != 0 and abs(value) < 0.01):
                return f"{value:.3g}"
            return f"{value:.3f}".rstrip("0").rstrip(".")
        return str(value)

    def render(self) -> str:
        cells = [[self._format_cell(value) for value in row] for row in self.rows]
        widths = [
            max(len(self.columns[index]),
                max((len(row[index]) for row in cells), default=0))
            for index in range(len(self.columns))
        ]
        lines = [f"== {self.title} =="]
        header = " | ".join(
            name.ljust(widths[index]) for index, name in enumerate(self.columns)
        )
        lines.append(header)
        lines.append("-+-".join("-" * width for width in widths))
        for row in cells:
            lines.append(" | ".join(
                row[index].ljust(widths[index]) for index in range(len(row))
            ))
        return "\n".join(lines)

    def print(self) -> None:
        print(self.render())

    def to_dict(self) -> dict:
        return {"title": self.title, "columns": self.columns, "rows": self.rows}

    def column(self, name: str) -> list:
        index = self.columns.index(name)
        return [row[index] for row in self.rows]


def mean_and_std(values: Iterable[float]) -> tuple:
    """(mean, sample standard deviation) of a sequence."""
    values = list(values)
    if not values:
        return (0.0, 0.0)
    mean = sum(values) / len(values)
    if len(values) < 2:
        return (mean, 0.0)
    variance = sum((value - mean) ** 2 for value in values) / (len(values) - 1)
    return (mean, math.sqrt(variance))


def run_matrix(
    arms: Sequence[tuple],
    run_fn: Callable[..., dict],
    seeds: Sequence[int],
    export_path: Optional[str] = None,
    workers: Optional[int] = None,
    warehouse=None,
    experiment: Optional[str] = None,
    git_rev: str = "unknown",
    tag: str = "",
) -> dict:
    """Run a full (arm x seed) grid and aggregate per arm.

    ``arms`` is a sequence of ``(label, config)`` pairs; ``run_fn(config,
    seed)`` must return a flat dict.  Returns ``{label: aggregated}`` where
    each aggregated dict maps numeric keys to ``(mean, std)`` (the
    :func:`run_replications` format).  With ``export_path`` set, the raw
    per-run results are also written as JSON for offline analysis.

    With a ``warehouse`` (:class:`~repro.telemetry.warehouse.Warehouse`)
    every cell auto-ingests as one run record keyed ``(experiment, arm
    label, seed, git_rev)`` — campaign sweeps land in the longitudinal
    store as they run, so the regression sentinel can compare arms
    across seeds and revisions without a separate collection step.

    Cells fan out through :func:`repro.scenarios.sweep.run_sweep`
    (parallel when ``workers`` or ``REPRO_SWEEP_WORKERS`` says so, serial
    otherwise) with identical aggregates either way: each cell depends
    only on its ``(config, seed)`` arguments and results merge in cell
    order.
    """
    from repro.scenarios.sweep import run_sweep

    cells = [(config, seed) for _label, config in arms for seed in seeds]
    flat = run_sweep(run_fn, cells, workers=workers)
    raw: dict = {}
    aggregated: dict = {}
    per_arm = len(seeds)
    for index, (label, _config) in enumerate(arms):
        runs = flat[index * per_arm:(index + 1) * per_arm]
        raw[label] = runs
        aggregated[label] = {"_n": len(runs)}
        if runs:
            for key in runs[0]:
                values = [run[key] for run in runs]
                if all(isinstance(value, (int, float))
                       and not isinstance(value, bool) for value in values):
                    aggregated[label][key] = mean_and_std(values)
    if warehouse is not None:
        from repro.telemetry.warehouse import ingest_run_dict

        for index, (label, _config) in enumerate(arms):
            for offset, seed in enumerate(seeds):
                result = flat[index * per_arm + offset]
                if result:
                    ingest_run_dict(warehouse, result,
                                    experiment=experiment or "matrix",
                                    arm=label, seed=seed, git_rev=git_rev,
                                    tag=tag)
    if export_path is not None:
        with open(export_path, "w", encoding="utf-8") as handle:
            json.dump({"seeds": list(seeds), "results": raw}, handle,
                      indent=2, default=str)
    return aggregated


def write_telemetry_bundle(sim, dirpath: str,
                           extra: Optional[dict] = None,
                           experiment: Optional[str] = None,
                           arm: Optional[str] = None,
                           seed=None) -> dict:
    """Write the per-run telemetry bundle for any simulation.

    Thin harness-level wrapper over
    :func:`repro.telemetry.exposition.write_bundle` so every benchmark
    can emit the same artifact layout (``metrics.prom``,
    ``metrics.jsonl``, ``spans.jsonl``, ``events.jsonl``,
    ``manifest.json``) regardless of which scenario it ran; pass
    ``experiment``/``arm``/``seed`` so the manifest self-describes for
    warehouse ingest.
    """
    from repro.telemetry.exposition import write_bundle

    return write_bundle(sim, dirpath, extra_manifest=extra,
                        experiment=experiment, arm=arm, seed=seed)


def run_replications(run_fn: Callable[[int], dict], seeds: Sequence[int]) -> dict:
    """Run ``run_fn(seed)`` per seed and aggregate numeric result keys.

    Returns {key: (mean, std)} over the replications for every key whose
    values are numeric, plus ``"_n"`` with the replication count.
    """
    results = [run_fn(seed) for seed in seeds]
    aggregated: dict = {"_n": len(results)}
    if not results:
        return aggregated
    for key in results[0]:
        values = [result[key] for result in results]
        if all(isinstance(value, (int, float)) and not isinstance(value, bool)
               for value in values):
            aggregated[key] = mean_and_std(values)
    return aggregated
