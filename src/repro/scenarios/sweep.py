"""Parallel sweep executor for experiment grids.

Benchmarks sweep (config, seed, intensity) grids whose cells are fully
independent simulations: every cell derives its behaviour from its
arguments alone (the library never reads wall clock or global RNG), so a
cell computes the same result in any process.  :func:`run_sweep` exploits
that to fan cells out to a :class:`~concurrent.futures.ProcessPoolExecutor`
while keeping the *results* exactly what the serial loop would produce:

* results come back in submission order regardless of completion order
  (order-independent merge keyed by submission index);
* per-cell seeding is the caller's cell arguments — nothing about
  worker identity or scheduling feeds a simulation;
* ``workers <= 1`` (the default without ``REPRO_SWEEP_WORKERS``) runs
  the plain serial loop, byte-for-byte the historical behaviour.

So ``run_sweep(fn, cells)`` is a drop-in for ``[fn(*c) for c in cells]``
with a speedup bounded by core count, and *identical* output either way.

``run_fn`` must be picklable (a module-level function) when workers > 1;
a cell that raises aborts the sweep with the original exception, like the
serial loop would.
"""

from __future__ import annotations

import os
import warnings
import zlib
from concurrent.futures import ProcessPoolExecutor
from pickle import PicklingError
from typing import Callable, Optional, Sequence

#: Environment knob: default worker count for sweeps that don't pass one.
WORKERS_ENV = "REPRO_SWEEP_WORKERS"

#: Bad WORKERS_ENV values already warned about (one warning per value, not
#: one per sweep — a grid of hundreds of cells must not spam the log).
_warned_values: set = set()


def default_workers() -> int:
    """Worker count from ``REPRO_SWEEP_WORKERS``, defaulting to serial.

    Parallelism is opt-in (CI and the tier-1 suite stay serial) because a
    process pool on a loaded or single-core host can be slower than the
    serial loop; set the variable to ``0`` to mean "one per CPU".

    A value that does not parse as an integer still falls back to serial
    — but *loudly*: a ``UserWarning`` names the bad value once, instead
    of a typo like ``REPRO_SWEEP_WORKERS=fourteen`` silently demoting
    every sweep of a long benchmark run to one core.
    """
    raw = os.environ.get(WORKERS_ENV, "")
    if not raw:
        return 1
    try:
        workers = int(raw)
    except ValueError:
        if raw not in _warned_values:
            _warned_values.add(raw)
            warnings.warn(
                f"{WORKERS_ENV}={raw!r} is not an integer; "
                f"falling back to serial execution (workers=1)",
                UserWarning, stacklevel=2)
        return 1
    if workers == 0:
        return os.cpu_count() or 1
    return max(1, workers)


def cell_seed(*parts) -> int:
    """A stable, well-spread seed derived from cell coordinates.

    ``hash()`` is salted per interpreter, so grids must not seed from it;
    CRC32 over the repr of the coordinates gives the same 32-bit seed in
    every process and every run.  Typical use::

        seed = cell_seed("e17", arm_label, base_seed, intensity)
    """
    text = "|".join(repr(part) for part in parts)
    return zlib.crc32(text.encode("utf-8"))


def run_sweep(
    run_fn: Callable,
    cells: Sequence[tuple],
    workers: Optional[int] = None,
) -> list:
    """Evaluate ``run_fn(*cell)`` for every cell; results in cell order.

    ``workers=None`` consults :func:`default_workers`; ``workers <= 1``
    or a single cell runs serially in-process.  The parallel path falls
    back to serial when ``run_fn`` or a cell cannot be pickled (e.g. a
    closure passed by older callers), so adopting the executor never
    breaks an existing sweep.
    """
    cells = list(cells)
    if workers is None:
        workers = default_workers()
    if workers <= 1 or len(cells) <= 1:
        return [run_fn(*cell) for cell in cells]
    try:
        results: list = [None] * len(cells)
        with ProcessPoolExecutor(max_workers=min(workers, len(cells))) as pool:
            futures = {pool.submit(run_fn, *cell): index
                       for index, cell in enumerate(cells)}
            for future, index in futures.items():
                results[index] = future.result()
        return results
    except PicklingError:
        # Unpicklable run_fn/cell (lambdas): serial loop still applies.
        return [run_fn(*cell) for cell in cells]
    except (AttributeError, TypeError) as exc:
        # Locally-defined closures fail the same way but via
        # AttributeError/TypeError; anything else is a real error.
        if "pickle" not in str(exc).lower():
            raise
        return [run_fn(*cell) for cell in cells]
