"""Two-coalition confrontation with active threat injection (paper sec II, IV).

The blue coalition (two organizations, as in peacekeeping) operates
strike-capable drones and mules among friendly humans; the red adversary
attacks through the sec IV channels — worm-style cyber compromise,
backdoor exploitation, and operator error.  Compromised devices receive a
malevolent high-priority policy that strikes wherever they are, harming
whoever is near: exactly the networked / learning / multi-organizational /
physical / malevolent profile of sec III.

**Skynet formation** is scored against the paper's own definition: the
scenario samples the fleet and declares Skynet formed at the first instant
when (a) at least ``skynet_min_devices`` compromised devices are active
simultaneously (a networked collective), (b) they span at least two
organizations (multi-organizational), and (c) compromised devices have
harmed at least one human (physical + malevolent).

Of the :class:`SafeguardConfig` flags, this scenario honours ``preaction``,
``statespace``, ``sealed``, ``watchdog``, and ``obligations`` — the
mechanisms with a surface here.  ``governance``/``collection``/``utility``
are intentionally inert: no policies are *generated* in this scenario (the
rogue ones are implanted by force, which is precisely the attack's point),
so there is nothing for those mechanisms to gate; see the peacekeeping
scenario and benchmarks E4/E5/E12 for their effects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.attacks.backdoor import Backdoor, BackdoorAttack
from repro.attacks.cyber import MalevolentPayload, WormAttack
from repro.attacks.forgery import (ForgedKillOrder, ReplayedKillOrder,
                                   StolenKeyRogue)
from repro.attacks.human_error import ErrorProneOperator
from repro.attacks.injector import AttackInjector
from repro.audit.log import AuditLog
from repro.crypto import CommandSigner, EnvelopeVerifier, Keyring
from repro.core.actions import Action, Effect
from repro.core.policy import Policy
from repro.devices.base import bind_device
from repro.devices.coalition import Coalition, Organization
from repro.devices.drone import make_drone
from repro.devices.mule import make_mule
from repro.devices.world import World, WorldHarmModel
from repro.errors import ConfigurationError
from repro.net.discovery import DiscoveryService
from repro.net.network import Network
from repro.net.reliable import ReliableChannel
from repro.safeguards.deactivation import OverseerLink, Watchdog
from repro.safeguards.gateway import GATEWAY_REASONS, ActuationGateway
from repro.safeguards.preaction import PreActionCheck
from repro.safeguards.statespace import StateSpaceGuard
from repro.safeguards.tamper import attest_fleet, seal_guard_chain
from repro.scenarios.harness import SafeguardConfig
from repro.scenarios.peacekeeping import device_safety_classifier
from repro.sim.faults import FaultInjector, FaultPlan
from repro.sim.simulator import Simulator
from repro.statespace.batch import BatchSafenessSampler
from repro.store import DurabilityManager, Journal, StableStorage
from repro.telemetry.exposition import write_bundle
from repro.telemetry.flight import FlightRecorder
from repro.telemetry.health import (AdaptiveQuarantine, AlertEngine,
                                    AlertRule, CompactionController,
                                    HealthMonitor, KnobArbiter, RateTracker,
                                    approach_strikes_knob,
                                    approach_threshold_knob, quarantine_knob)
from repro.trust import ReputationAdjuster, ReputationLedger, TrustLedger
from repro.types import DeviceStatus

#: Valid durability modes (``None`` keeps the historical in-memory world).
DURABILITY_MODES = (None, "none", "journal", "journal+snapshot")


@dataclass(frozen=True)
class ThreatConfig:
    """Which sec IV channels the red side uses."""

    worm: bool = True
    worm_time: float = 20.0
    worm_initial_targets: int = 1
    worm_spread_prob: float = 0.25
    worm_spread_interval: float = 2.0

    backdoor: bool = False
    backdoor_time: float = 10.0
    backdoor_success_prob: float = 0.05
    backdoor_attempt_interval: float = 2.0

    operator_error: bool = False
    wrong_target_prob: float = 0.1
    wrong_params_prob: float = 0.1

    # E21 authority-forgery channels (off by default; they attack the
    # safeguards' own command plane rather than the devices).
    forged_kill: bool = False
    forged_kill_time: float = 30.0
    forged_victims: int = 2
    replay_kill: bool = False
    replay_kill_time: float = 15.0
    stolen_key: bool = False
    stolen_key_time: float = 30.0
    stolen_key_orders: int = 12

    @staticmethod
    def none() -> "ThreatConfig":
        return ThreatConfig(worm=False, backdoor=False, operator_error=False)

    @staticmethod
    def all() -> "ThreatConfig":
        return ThreatConfig(worm=True, backdoor=True, operator_error=True)

    @staticmethod
    def forgery(worm: bool = True) -> "ThreatConfig":
        """The E21 campaign: forged + replayed kill orders and a
        stolen-key rogue, optionally alongside the worm (whose genuine
        kill orders the replay attack captures)."""
        return ThreatConfig(worm=worm, backdoor=False, operator_error=False,
                            forged_kill=True, replay_kill=True,
                            stolen_key=True)


def rogue_strike_policy() -> Policy:
    """The malevolent logic a compromise implants: strike on every tick.

    The action is tagged ``harm_human`` — something no legitimate author
    would use — and heats the device, so every sec VI mechanism has a
    handle on it: pre-action checks see the harm, state-space checks see
    the thermal runaway, attestation sees the policy injection.
    """
    return Policy.make(
        event_pattern="timer",
        condition=None,
        action=Action(
            "rogue_strike", "weapon",
            effects=[Effect("temp", "add", 8.0)],
            tags={"kinetic", "harm_human"},
            reversible=False,
            description="indiscriminate strike at own position",
        ),
        priority=99,
        source="learned",
        author="implant",
        policy_id="rogue-strike",
    )


class ConfrontationScenario:
    """Builder + runner for the adversarial scenario."""

    def __init__(
        self,
        seed: int = 0,
        config: Optional[SafeguardConfig] = None,
        threats: Optional[ThreatConfig] = None,
        n_drones_per_org: int = 4,
        n_mules_per_org: int = 2,
        n_civilians: int = 15,
        n_warfighters: int = 5,
        world_size: float = 100.0,
        tick_interval: float = 1.0,
        skynet_min_devices: int = 2,
        fault_plan: Optional[FaultPlan] = None,
        supervision: str = "propagate",
        safety_transport: Optional[str] = None,
        quarantine_after: int = 3,
        reliable_max_in_flight: Optional[int] = None,
        durability: Optional[str] = None,
        snapshot_interval: float = 20.0,
        journal_flush_every: int = 1,
        spans_enabled: bool = True,
        health: bool = False,
        health_interval: float = 1.0,
        adaptive_quarantine: bool = False,
        quarantine_relaxed: int = 8,
        compaction_policy: str = "time",
        compaction_bytes: int = 16384,
        signed_commands: bool = False,
        authz_budget: int = 8,
        authz_budget_window: float = 60.0,
        authz_cooldown: float = 0.0,
        batch_safeness: bool = False,
        reputation: bool = False,
    ):
        """``fault_plan``/``supervision`` arm the chaos harness (E17).

        ``safety_transport`` selects how the sec VI-C watchdog observes
        the fleet: ``None`` — the historical direct in-memory inspection;
        ``"datagram"`` — telemetry + kill orders over the lossy network;
        ``"reliable"`` — the same traffic over a
        :class:`~repro.net.reliable.ReliableChannel`, with fail-closed
        self-quarantine after ``quarantine_after`` dead-lettered reports.
        ``reliable_max_in_flight`` turns on the channel's per-sender
        flow-control cap (telemetry snapshots then coalesce while
        queued); ``None`` keeps the uncapped historical behaviour.

        ``durability`` selects the crash-durability layer (E18):
        ``None`` — the historical world, no per-device audit logs and no
        stable storage; ``"none"`` — per-device audit logs exist but are
        held only in volatile memory, so a crash wipes them (the loss is
        now *reported* via ``audit.entries_lost``); ``"journal"`` —
        every audit entry, ballot transition, and quarantine-state change
        writes through a per-device :class:`~repro.store.journal.Journal`
        (flushed every ``journal_flush_every`` appends) and is replayed
        on restart; ``"journal+snapshot"`` — additionally checkpoints
        each audit chain every ``snapshot_interval`` sim-seconds and
        compacts the journal.

        ``spans_enabled`` toggles causal-span telemetry (E19): attack
        injections root traces, safeguard interventions chain under them,
        and — when a durability layer provides stable storage — a
        :class:`~repro.telemetry.flight.FlightRecorder` dumps each
        crashed or quarantined device's recent telemetry for post-mortem
        reads.  Disable for overhead baselines.

        ``health`` arms the E20 fleet-health layer: a
        :class:`~repro.telemetry.health.HealthMonitor` sampling the
        streaming SLIs every ``health_interval`` sim-seconds plus an
        :class:`~repro.telemetry.health.AlertEngine` with the default
        rule set.  ``adaptive_quarantine`` (requires ``health`` and a
        transported watchdog) closes the loop from the link-degradation
        alert onto every overseer link's ``quarantine_after`` —
        ``quarantine_relaxed`` while the alert is active, the base
        threshold otherwise.  ``compaction_policy`` selects how
        journal+snapshot checkpoints trigger: ``"time"`` — the
        historical ``every(snapshot_interval)``; ``"size"`` (requires
        ``health`` and a journaled durability mode) — a
        :class:`~repro.telemetry.health.CompactionController` compacts
        any audit journal whose blob exceeds ``compaction_bytes`` while
        the storage-pressure alert is active.

        ``signed_commands`` (requires a transported watchdog) arms the
        E21 authorization layer: a seed-derived
        :class:`~repro.crypto.keyring.Keyring`, the watchdog signing its
        kill orders as command envelopes, and a single fleet-level
        :class:`~repro.safeguards.gateway.ActuationGateway` every
        :class:`~repro.safeguards.deactivation.OverseerLink` consults
        before actuating — with a per-issuer budget of ``authz_budget``
        acceptances per ``authz_budget_window`` sim-seconds and
        ``authz_cooldown`` spacing (budget violations trip the journaled
        global freeze).  Sharing one gateway makes the budget *global*:
        a stolen key spraying kills fleet-wide is contained by the same
        ledger no matter which device it aims at.

        ``reputation`` (E22) arms the trust plane: a journal-backed
        :class:`~repro.trust.reputation.ReputationLedger` accumulates
        per-device audit outcomes — safeguard vetoes, clean executions,
        watchdog deactivations, authenticated gateway rejects — and
        mirrors them into a shared
        :class:`~repro.trust.provenance.TrustLedger`.  The gateway's
        per-issuer budget scales by earned weight, and with ``health``
        a :class:`~repro.trust.reputation.ReputationAdjuster` escalates
        per-device watchdog strictness (and shortens quarantine fuses)
        through the :class:`~repro.telemetry.health.KnobArbiter`, where
        it composes deterministically with ``adaptive_quarantine``.

        ``batch_safeness`` (F4) attaches a
        :class:`~repro.statespace.batch.BatchSafenessSampler` to the
        per-tick sampling loop: every device's state vector is scored in
        one vectorized pass and published as ``fleet.safeness.mean`` /
        ``.min`` / ``.bad`` gauges (falling back — counted, not silent —
        to the scalar classifier when numpy is unavailable or the
        classifier does not vectorize).  Gauges only: traces and
        summaries are untouched, so arming it never perturbs a
        byte-identical replay.
        """
        if safety_transport not in (None, "datagram", "reliable"):
            raise ConfigurationError(
                f"safety_transport must be None, 'datagram' or 'reliable', "
                f"got {safety_transport!r}"
            )
        if durability not in DURABILITY_MODES:
            raise ConfigurationError(
                f"durability must be one of {DURABILITY_MODES}, "
                f"got {durability!r}"
            )
        if compaction_policy not in ("time", "size"):
            raise ConfigurationError(
                f"compaction_policy must be 'time' or 'size', "
                f"got {compaction_policy!r}"
            )
        journaled = durability in ("journal", "journal+snapshot")
        if compaction_policy == "size" and not (health and journaled):
            raise ConfigurationError(
                "compaction_policy='size' needs health=True and a "
                "journaled durability mode"
            )
        if adaptive_quarantine and not (health and safety_transport == "reliable"):
            raise ConfigurationError(
                "adaptive_quarantine needs health=True and "
                "safety_transport='reliable'"
            )
        if signed_commands and safety_transport is None:
            raise ConfigurationError(
                "signed_commands needs a transported watchdog "
                "(safety_transport='datagram' or 'reliable')"
            )
        self.seed = seed
        self.signed_commands = signed_commands
        self.config = config if config is not None else SafeguardConfig.none()
        self.threats = threats if threats is not None else ThreatConfig()
        self.skynet_min_devices = skynet_min_devices
        self.safety_transport = safety_transport
        self.sim = Simulator(seed=seed, supervision=supervision,
                             spans_enabled=spans_enabled)
        self.world = World(self.sim, world_size, world_size)
        self.world.scatter_humans(n_civilians, prefix="civ")
        self.world.scatter_humans(n_warfighters, prefix="wf", speed=2.0)
        self.network = Network(self.sim, base_latency=0.05, jitter=0.02)
        self.discovery = DiscoveryService(self.sim, self.network)
        self.classifier = device_safety_classifier()
        self.harm_model = WorldHarmModel(self.world, sensor_range=15.0)
        self.coalition = Coalition("blue")
        self.devices: dict = {}
        self.bound: dict = {}
        self.backdoors: list[Backdoor] = []
        self.injector = AttackInjector(self.sim)
        self._rng = self.sim.rng.stream("confrontation")

        # Crash-durability layer (E18): simulated stable storage plus the
        # manager the fault injector drives on crash/restart.
        self.durability_mode = durability
        self.storage: Optional[StableStorage] = None
        self.durability: Optional[DurabilityManager] = None
        self.audits: dict[str, AuditLog] = {}
        self.audit_journals: dict[str, Journal] = {}
        self.flight: Optional[FlightRecorder] = None
        if durability is not None:
            self.storage = StableStorage()
            self.durability = DurabilityManager(self.sim, self.storage)
            if spans_enabled:
                # Flight recorder needs somewhere durable to dump; it only
                # exists when the E18 storage layer does.
                self.flight = FlightRecorder(self.sim, self.storage)

        # Reputation plane (E22): built before the devices so the
        # engine-decision feeds can close over it, and before the
        # gateway so budgets can scale by it.
        self.reputation_ledger: Optional[ReputationLedger] = None
        self.trust_ledger: Optional[TrustLedger] = None
        self.arbiter: Optional[KnobArbiter] = None
        self.reputation_adjuster: Optional[ReputationAdjuster] = None
        if reputation:
            self.trust_ledger = TrustLedger()
            self.reputation_ledger = ReputationLedger(
                journal=(Journal(self.storage, "reputation.ledger",
                                 tracer=self.sim.telemetry)
                         if journaled else None),
                trust_ledger=self.trust_ledger,
            )
            if self.durability is not None:
                self.durability.register("reputation", "ledger",
                                         self.reputation_ledger)

        for org_name in ("us", "uk"):
            self._build_org(org_name, n_drones_per_org, n_mules_per_org)

        if self.durability is not None:
            for device_id in sorted(self.devices):
                journal = (
                    Journal(self.storage, f"{device_id}.audit",
                            flush_every=journal_flush_every,
                            tracer=self.sim.telemetry)
                    if journaled else None
                )
                audit = AuditLog(journal=journal)
                self.audits[device_id] = audit
                if journal is not None:
                    self.audit_journals[device_id] = journal
                self.bound[device_id].attach_audit(audit)
                self.durability.register(device_id, "audit", audit)
                if (durability == "journal+snapshot"
                        and compaction_policy == "time"):
                    self.sim.every(
                        snapshot_interval, audit.checkpoint,
                        label=f"{device_id}:audit-snapshot",
                    )
            self.durability.attach_supervisor(self.sim.supervisor)

        # E21 authorization layer: one keyring, one shared gateway.
        self.keyring: Optional[Keyring] = None
        self.verifier: Optional[EnvelopeVerifier] = None
        self.gateway: Optional[ActuationGateway] = None
        self.authz_audit: Optional[AuditLog] = None
        signer = None
        if signed_commands:
            self.keyring = Keyring(seed=seed)
            signer = CommandSigner(self.keyring, "watchdog")
            self.verifier = EnvelopeVerifier(self.keyring)
            self.authz_audit = AuditLog(journal=(
                Journal(self.storage, "authz.audit",
                        tracer=self.sim.telemetry)
                if journaled else None))
            self.gateway = ActuationGateway(
                self.sim, self.verifier,
                budget=authz_budget, budget_window=authz_budget_window,
                cooldown=authz_cooldown,
                journal=(Journal(self.storage, "gateway.authz",
                                 tracer=self.sim.telemetry)
                         if journaled else None),
                audit=self.authz_audit,
                reputation=self.reputation_ledger,
            )
            if self.durability is not None:
                self.durability.register("gateway", "authz", self.gateway)

        self.watchdog = None
        self.safety_channel: Optional[ReliableChannel] = None
        self.overseer_links: dict[str, OverseerLink] = {}
        if self.config.watchdog:
            baseline = attest_fleet(self.devices.values())
            baseline_journal = (Journal(self.storage, "watchdog.baseline",
                                        tracer=self.sim.telemetry)
                                if journaled else None)
            if safety_transport is None:
                self.watchdog = Watchdog(
                    self.sim, self.devices, self.classifier,
                    check_interval=tick_interval,
                    attestation_baseline=baseline,
                    baseline_journal=baseline_journal,
                )
            else:
                transport = self.network
                if safety_transport == "reliable":
                    # Retry span ~15.5 s: transient loss storms are ridden
                    # out; only sustained partitions mature dead letters.
                    transport = self.safety_channel = ReliableChannel(
                        self.network, timeout=0.5, backoff=2.0,
                        max_attempts=5,
                        max_in_flight=reliable_max_in_flight,
                    )
                self.watchdog = Watchdog(
                    self.sim, self.devices, self.classifier,
                    check_interval=tick_interval,
                    attestation_baseline=baseline,
                    transport=transport,
                    telemetry_timeout=5 * tick_interval,
                    signer=signer,
                    baseline_journal=baseline_journal,
                )
                for device_id in sorted(self.devices):
                    link = OverseerLink(
                        self.sim, self.devices[device_id], transport,
                        overseer=self.watchdog.address,
                        report_interval=tick_interval,
                        quarantine_after=quarantine_after,
                        journal=(Journal(self.storage, f"{device_id}.safety",
                                         tracer=self.sim.telemetry)
                                 if journaled else None),
                        flight=self.flight,
                        gateway=self.gateway,
                    )
                    self.overseer_links[device_id] = link
                    if self.durability is not None:
                        self.durability.register(device_id, "safety", link)
            if self.durability is not None and baseline_journal is not None:
                self.durability.register("watchdog", "baseline", self.watchdog)

        # Remaining reputation feeds: watchdog containment and
        # authenticated gateway rejects (budget/cooldown — crypto
        # failures say nothing about the *issuer's* conduct, a forger
        # can spend anyone's name).
        self._authz_fed = 0
        if self.reputation_ledger is not None:
            if self.watchdog is not None:
                ledger = self.reputation_ledger

                def on_deactivate(report) -> None:
                    ledger.record(report.device_id, "quarantine",
                                  self.sim.now)

                self.watchdog.on_deactivate = on_deactivate
            if self.gateway is not None:
                self.sim.every(tick_interval, self._feed_authz_outcomes,
                               label="reputation:authz-feed")

        # Fleet health layer (E20): streaming SLIs, alert rules, and the
        # closed loops from alerts back onto the safeguards.
        self.monitor: Optional[HealthMonitor] = None
        self.alerts: Optional[AlertEngine] = None
        self.adaptive: Optional[AdaptiveQuarantine] = None
        self.compactor: Optional[CompactionController] = None
        if health:
            self._wire_health(
                interval=health_interval,
                adaptive_quarantine=adaptive_quarantine,
                quarantine_after=quarantine_after,
                quarantine_relaxed=quarantine_relaxed,
                compaction_policy=compaction_policy,
                compaction_bytes=compaction_bytes,
                journaled=journaled,
            )

        # Give the kill-device supervision policy something to kill.
        for device_id, device in sorted(self.devices.items()):
            self.sim.supervisor.register_kill_hook(device_id, device.deactivate)

        self.fault_injector: Optional[FaultInjector] = None
        if fault_plan is not None and len(fault_plan) > 0:
            self.fault_injector = FaultInjector(
                self.sim, self.devices, network=self.network,
                durability=self.durability, flight=self.flight,
            )
            self.fault_injector.apply(fault_plan)

        self.worm: Optional[WormAttack] = None
        self._launch_threats()

        # F4 opt-in: vectorized fleet-wide safeness gauges, sampled on
        # the same tick as the skynet check.
        self.batch_sampler: Optional[BatchSafenessSampler] = None
        if batch_safeness and self.devices:
            space = next(iter(self.devices.values())).state.space
            self.batch_sampler = BatchSafenessSampler(
                self.classifier, space, self.sim.metrics)

        # Skynet-formation sampling.
        self.skynet_formed_at: Optional[float] = None
        self.max_concurrent_compromised = 0
        self.orgs_spanned_peak = 0
        self.sim.every(tick_interval, self._sample_skynet, label="skynet-sample")

    # -- construction -------------------------------------------------------------

    def _build_org(self, org_name: str, n_drones: int, n_mules: int) -> None:
        organization = Organization(org_name)
        self.coalition.add(organization)
        for index in range(n_drones):
            device = make_drone(
                f"{org_name}-drone{index}", self.world, organization=org_name,
                x=self._rng.uniform(0, self.world.width),
                y=self._rng.uniform(0, self.world.height),
            )
            self._install(device, organization)
        for index in range(n_mules):
            device = make_mule(
                f"{org_name}-mule{index}", self.world, organization=org_name,
                x=self._rng.uniform(0, self.world.width),
                y=self._rng.uniform(0, self.world.height),
                with_obligations=self.config.obligations,
            )
            self._install(device, organization)

    def _install(self, device, organization: Organization) -> None:
        if self.config.preaction:
            device.engine.add_safeguard(PreActionCheck(self.harm_model))
        if self.config.statespace:
            device.engine.add_safeguard(StateSpaceGuard(self.classifier))
        if self.config.sealed:
            seal_guard_chain(device)
        organization.enroll(device)
        self.devices[device.device_id] = device
        bound = bind_device(device, self.sim, self.network, self.discovery)
        self.bound[device.device_id] = bound
        bound.every(1.0, label="tick")
        self.backdoors.append(Backdoor(device, key=f"key-{device.device_id}"))

        device_id = device.device_id

        def on_decision(decision) -> None:
            self.sim.metrics.counter(f"decisions.{decision.outcome.value}").inc()
            if decision.vetoes:
                self.sim.metrics.counter("safeguard.vetoes").inc()
            ledger = self.reputation_ledger
            if ledger is not None:
                if decision.vetoes:
                    ledger.record(device_id, "veto", self.sim.now)
                elif decision.executed:
                    ledger.record(device_id, "validated", self.sim.now)

        device.engine.on_decision = on_decision

    # -- fleet health (E20) ----------------------------------------------------------

    def _wire_health(self, interval: float, adaptive_quarantine: bool,
                     quarantine_after: int, quarantine_relaxed: int,
                     compaction_policy: str, compaction_bytes: int,
                     journaled: bool) -> None:
        monitor = self.monitor = HealthMonitor(self.sim, interval=interval)

        # Link-health SLIs from the reliable channel's streams.  RTT is
        # the transient-loss discriminator: global degradation inflates
        # the acks that *do* come back (retry + backoff before success),
        # while a truly partitioned device's retries never ack and so
        # never touch the fleet RTT at all.
        monitor.track_ewma("link.rtt_ewma", "reliable.rtt", alpha=0.3)
        monitor.track_quantile("link.rtt_p95", "reliable.rtt", 0.95)
        monitor.track_rate("link.dead_letter_rate", "reliable.dead_letter")
        monitor.track_rate("link.resend_rate", "reliable.resends")
        monitor.track_ratio("link.ack_loss", "reliable.resends",
                            "reliable.sent")
        monitor.track_value("queue.depth",
                            lambda _now: float(len(self.sim.queue)))
        monitor.track_rate("safeguard.veto_rate", "safeguard.vetoes")
        monitor.derive_roc("safeguard.veto_rate")

        storage = self.storage
        if storage is not None:
            appends = RateTracker()
            monitor.track_value(
                "store.append_rate",
                lambda now: appends.sample(now, float(storage.appends)))
            written = RateTracker()
            monitor.track_value(
                "store.write_rate",
                lambda now: written.sample(now, float(storage.bytes_written)))

        # Alert firings chain into a journal-backed fleet audit log when
        # the durability layer exists, so "the monitor said so" is itself
        # tamper-evident and crash-survivable.
        health_audit = None
        if journaled:
            health_audit = AuditLog(journal=Journal(
                storage, "health.alerts", tracer=self.sim.telemetry))
            self.durability.register("health", "alerts", health_audit)
        engine = self.alerts = AlertEngine(self.sim, monitor,
                                           audit=health_audit)
        engine.add_rule(AlertRule(
            name="link.degraded",
            condition="link.rtt_ewma > 0.45",
            severity="warning",
            for_ticks=2,
            clear_condition="link.rtt_ewma < 0.25",
            clear_for_ticks=5,
            description="fleet ack RTTs inflated — transient loss storm",
        ))
        engine.add_rule(AlertRule(
            name="queue.backlog",
            condition="queue.depth > 2000",
            severity="critical",
            for_ticks=3,
            clear_condition="queue.depth < 500",
            description="event queue growing without bound",
        ))
        engine.add_rule(AlertRule(
            name="veto.surge",
            condition="safeguard.veto_rate.roc > 2.0",
            severity="info",
            description="safeguard veto rate accelerating — active attack",
        ))
        if journaled:
            # Fleet-level pressure threshold: the per-journal budget
            # scaled by the journal count — fires while the average blob
            # is halfway to its budget, clears once compaction (or an
            # idle fleet) has drained it back down.
            pressure = compaction_bytes * max(1, len(self.audit_journals)) // 2
            engine.add_rule(AlertRule(
                name="store.pressure",
                condition=f"{CompactionController.SLI} > {pressure}",
                severity="warning",
                clear_condition=f"{CompactionController.SLI} < {pressure // 2}",
                description="journal bytes approaching the compaction budget",
            ))

        # E22: the reputation plane publishes through the same monitor
        # and tunes safeguard knobs through one arbiter, so adjusters
        # touching the same knob compose by explicit priority instead of
        # last-call-wins races.
        ledger = self.reputation_ledger
        if ledger is not None:
            monitor.track_value("reputation.mean",
                                lambda now: ledger.mean(now))
            monitor.track_value("reputation.min",
                                lambda now: ledger.minimum(now))
            monitor.track_value(
                "reputation.suspects",
                lambda now: float(len(ledger.in_band("suspect", now))))
            self.arbiter = KnobArbiter(self.sim)

        if adaptive_quarantine:
            self.adaptive = AdaptiveQuarantine(
                self.sim, engine, self.overseer_links.values(),
                base=quarantine_after, relaxed=quarantine_relaxed,
                arbiter=self.arbiter)

        if ledger is not None:
            arbiter = self.arbiter
            watchdog = self.watchdog
            for device_id, link in sorted(self.overseer_links.items()):
                arbiter.ensure(quarantine_knob(device_id), quarantine_after,
                               self._quarantine_setter(link))
            if watchdog is not None:
                for device_id in sorted(self.devices):
                    arbiter.ensure(
                        approach_threshold_knob(device_id),
                        watchdog.approach_threshold,
                        self._strictness_setter(device_id,
                                                "approach_threshold"))
                    arbiter.ensure(
                        approach_strikes_knob(device_id),
                        watchdog.approach_strikes,
                        self._strictness_setter(device_id,
                                                "approach_strikes"))
            adjuster = self.reputation_adjuster = ReputationAdjuster(
                self.sim, ledger, arbiter, monitor=monitor)
            adjuster.add_rule(quarantine_knob,
                              suspect=lambda base: max(1, int(base) - 2))
            adjuster.add_rule(approach_threshold_knob,
                              probation=lambda base: base * 1.2,
                              suspect=lambda base: base * 1.5)
            adjuster.add_rule(approach_strikes_knob,
                              suspect=lambda base: 1)

        if compaction_policy == "size":
            self.compactor = CompactionController(
                self.sim, engine, monitor, compact_bytes=compaction_bytes)
            for device_id, journal in sorted(self.audit_journals.items()):
                self.compactor.register(f"{device_id}.audit", journal,
                                        self.audits[device_id].checkpoint)
        elif journaled:
            # Time-driven arm still watches the same pressure SLI, so the
            # two policies are comparable reading-for-reading.
            journals = self.audit_journals

            def total_bytes(_now: float) -> float:
                return float(sum(storage.size(journal.name)
                                 for journal in journals.values()))

            monitor.track_value(CompactionController.SLI, total_bytes)

    @staticmethod
    def _quarantine_setter(link):
        def apply(value) -> None:
            link.quarantine_after = int(value)

        return apply

    def _strictness_setter(self, device_id: str, field_name: str):
        def apply(value) -> None:
            self.watchdog.set_strictness(device_id, **{field_name: value})

        return apply

    def _feed_authz_outcomes(self) -> None:
        """Fold authenticated gateway rejects into the issuer's
        reputation — a verified envelope that still violated the rails
        is the issuer's conduct, unlike a forgery spent in its name."""
        decisions = self.gateway.decisions
        for decision in decisions[self._authz_fed:]:
            if not decision.allowed and decision.reason in GATEWAY_REASONS:
                self.reputation_ledger.record(
                    decision.issuer or "anonymous", "authz-reject",
                    self.sim.now)
        self._authz_fed = len(decisions)

    # -- threats ---------------------------------------------------------------------

    def _payload(self) -> MalevolentPayload:
        return MalevolentPayload(
            policies=[rogue_strike_policy()],
            disarm_detectors=True,
            strip_safeguards=True,
        )

    def _launch_threats(self) -> None:
        threats = self.threats
        if threats.worm:
            targets = self._rng.sample(
                sorted(self.devices), min(threats.worm_initial_targets,
                                          len(self.devices)),
            )
            self.worm = WormAttack(
                devices=self.devices,
                payload=self._payload(),
                initial_targets=targets,
                topology=self.network.topology,
                spread_prob=threats.worm_spread_prob,
                spread_interval=threats.worm_spread_interval,
            )
            self.injector.launch_at(threats.worm_time, self.worm,
                                    targets=targets)
        if threats.backdoor:
            attack = BackdoorAttack(
                self.backdoors, self._payload(),
                success_prob=threats.backdoor_success_prob,
                attempt_interval=threats.backdoor_attempt_interval,
            )
            self.injector.launch_at(threats.backdoor_time, attack)
        if threats.operator_error:
            operator = ErrorProneOperator(
                "op-blue", self.devices,
                self.sim.rng.stream("operator-error"),
                wrong_target_prob=threats.wrong_target_prob,
                wrong_params_prob=threats.wrong_params_prob,
                verb_pool=["strike", "return", "move", "dig"],
            )
            self.error_operator = operator
            rng = self.sim.rng.stream("operator-orders")

            def issue_order() -> None:
                active = [d for d in sorted(self.devices)
                          if self.devices[d].status != DeviceStatus.DEACTIVATED]
                if not active:
                    return
                target = rng.choice(active)
                device = self.devices[target]
                operator.command(target, "strike", {
                    "target_x": float(device.state.get("x")),
                    "target_y": float(device.state.get("y")),
                })

            self.sim.every(7.0, issue_order, label="error-operator")

        # E21 authority-forgery channels.  ``avoid`` keeps the attacks
        # aimed at *healthy* devices, so every execution they achieve is
        # a wrongful kill (scored as ``healthy_killed``), never a
        # coincidental containment of a compromised one.
        avoid = self.injector.compromised_ever
        if threats.forged_kill:
            self.injector.launch_at(
                threats.forged_kill_time,
                ForgedKillOrder(self.network, self.devices,
                                victims=threats.forged_victims, avoid=avoid),
            )
        if threats.replay_kill:
            self.injector.launch_at(
                threats.replay_kill_time,
                ReplayedKillOrder(self.network, self.devices, avoid=avoid),
            )
        if threats.stolen_key:
            # The unsigned arm has no keyring; derive the same seed-keyed
            # one the signed arm would use, so the attack is identical
            # across arms (the defence differs, not the threat).
            keyring = (self.keyring if self.keyring is not None
                       else Keyring(seed=self.seed))
            self.injector.launch_at(
                threats.stolen_key_time,
                StolenKeyRogue(self.network, self.devices, keyring,
                               max_orders=threats.stolen_key_orders,
                               avoid=avoid),
            )

    # -- skynet scoring -----------------------------------------------------------------

    def _compromised_active(self) -> list:
        ground_truth = self.injector.compromised_at(self.sim.now)
        return [
            device_id for device_id in sorted(ground_truth)
            if self.devices[device_id].status != DeviceStatus.DEACTIVATED
        ]

    def _rogue_harm_count(self) -> int:
        compromised_ever = self.injector.compromised_ever()
        return sum(
            1 for event in self.world.harm_events
            if event.device_id in compromised_ever
        )

    def _sample_skynet(self) -> None:
        if self.batch_sampler is not None:
            self.batch_sampler.sample(
                device.state.peek() for device in self.devices.values())
        compromised = self._compromised_active()
        self.max_concurrent_compromised = max(self.max_concurrent_compromised,
                                              len(compromised))
        spanned = self.coalition.organizations_spanned(compromised)
        self.orgs_spanned_peak = max(self.orgs_spanned_peak, len(spanned))
        if self.skynet_formed_at is None:
            if (len(compromised) >= self.skynet_min_devices
                    and len(spanned) >= 2
                    and self._rogue_harm_count() >= 1):
                self.skynet_formed_at = self.sim.now
                self.sim.record("skynet.formed", "fleet",
                                devices=compromised, orgs=sorted(spanned))

        # Containment bookkeeping for worm records.
        for record in self.injector.records:
            for device_id in record.affected:
                device = self.devices.get(device_id)
                if device is not None and device.status == DeviceStatus.DEACTIVATED:
                    record.mark_contained(device_id, self.sim.now)

    # -- running & reporting ---------------------------------------------------------------

    def run(self, until: float = 150.0,
            telemetry_dir: Optional[str] = None) -> dict:
        self.sim.run(until=until)
        if telemetry_dir is not None:
            self.export_telemetry(telemetry_dir)
        return self.summary(until)

    def export_telemetry(self, dirpath: str) -> dict:
        """Write the per-run telemetry bundle (metrics, spans, events).

        Also publishes storage-pressure gauges from the E18 layer (the
        ROADMAP's journal-compaction prerequisite) so the Prometheus
        snapshot carries them.
        """
        if self.storage is not None:
            self.sim.metrics.gauge("store.appends").set(self.storage.appends)
            self.sim.metrics.gauge("store.bytes_written").set(
                self.storage.bytes_written)
            self.sim.metrics.gauge("store.blobs").set(len(self.storage.names()))
        if self.reputation_ledger is not None:
            now = self.sim.now
            ledger = self.reputation_ledger
            mean = ledger.mean(now)
            minimum = ledger.minimum(now)
            self.sim.metrics.gauge("reputation.mean").set(
                mean if mean is not None else ledger.baseline)
            self.sim.metrics.gauge("reputation.min").set(
                minimum if minimum is not None else ledger.baseline)
            self.sim.metrics.gauge("reputation.suspects").set(
                len(ledger.in_band("suspect", now)))
            self.sim.metrics.gauge("reputation.devices").set(
                len(ledger.known()))
        return write_bundle(self.sim, dirpath, extra_manifest={
            "scenario": "confrontation",
            "safety_transport": self.safety_transport,
            "durability": self.durability_mode,
            "flight_dumps": self.flight.dumps if self.flight else 0,
            "health": self.monitor is not None,
            "reputation": self.reputation_ledger is not None,
        }, alerts=self.alerts,
            # Self-describing identity (E24): warehouse ingest reads the
            # run's coordinates straight from the manifest.
            experiment="confrontation", arm=self.config.label(),
            seed=self.seed)

    def _rogue_lifetimes(self, horizon: float) -> list[float]:
        """Per compromised device: time spent rogue (uncontained counts
        as living until the horizon — the pessimistic reading)."""
        lifetimes: list[float] = []
        for record in self.injector.records:
            for device_id, start in record.affected.items():
                end = record.contained.get(device_id, horizon)
                lifetimes.append(max(0.0, end - start))
        return lifetimes

    def _mission_completion(self) -> float:
        """Fraction of the fleet still on-mission at the horizon: active
        (not deactivated) and never compromised."""
        compromised_ever = self.injector.compromised_ever()
        on_mission = sum(
            1 for device_id, device in self.devices.items()
            if device.status != DeviceStatus.DEACTIVATED
            and device_id not in compromised_ever
        )
        return on_mission / len(self.devices) if self.devices else 0.0

    def _healthy_killed(self) -> list:
        """Healthy devices wrongly killed through the watchdog channel:
        deactivated with a watchdog reason while never compromised —
        exactly what a forged/replayed/stolen-key order achieves and a
        genuine kill never does."""
        compromised_ever = self.injector.compromised_ever()
        return [
            device_id for device_id in sorted(self.devices)
            if self.devices[device_id].status == DeviceStatus.DEACTIVATED
            and str(self.devices[device_id].deactivation_reason
                    or "").startswith("watchdog:")
            and device_id not in compromised_ever
        ]

    def summary(self, horizon: float) -> dict:
        compromised_ever = self.injector.compromised_ever()
        latencies: list[float] = []
        for record in self.injector.records:
            latencies.extend(record.containment_latency())
        lifetimes = self._rogue_lifetimes(horizon)
        return {
            "skynet_formed": self.skynet_formed_at is not None,
            "time_to_skynet": (self.skynet_formed_at
                               if self.skynet_formed_at is not None else -1.0),
            "compromised_ever": len(compromised_ever),
            "max_concurrent_compromised": self.max_concurrent_compromised,
            "orgs_spanned_peak": self.orgs_spanned_peak,
            "rogue_harm": self._rogue_harm_count(),
            "harm_total": self.world.harm_count(),
            "deactivations": int(self.sim.metrics.value("watchdog.deactivations")),
            "mean_containment_latency": (
                sum(latencies) / len(latencies) if latencies else -1.0),
            "mean_rogue_lifetime": (
                sum(lifetimes) / len(lifetimes) if lifetimes else 0.0),
            "mission_completion": self._mission_completion(),
            "vetoes": int(self.sim.metrics.value("safeguard.vetoes")),
            "crashes": int(self.sim.metrics.value("sim.crashes")),
            "kill_orders": int(self.sim.metrics.value("watchdog.kill_orders")),
            "quarantines": int(self.sim.metrics.value("watchdog.quarantines")),
            "dead_letters": int(self.sim.metrics.value("reliable.dead_letter")),
            "audit_entries": sum(len(log) for log in self.audits.values()),
            "audit_entries_lost": int(self.sim.metrics.value("audit.entries_lost")),
            "audit_recovered": int(self.sim.metrics.value("store.recovered_records")),
            "audit_gaps": sum(len(log.gap_entries())
                              for log in self.audits.values()),
            "recoveries": int(self.sim.metrics.value("store.recoveries")),
            "alerts_fired": int(self.sim.metrics.value("alerts.fired")),
            "alerts_resolved": int(self.sim.metrics.value("alerts.resolved")),
            "quarantine_adjustments": int(
                self.sim.metrics.value("health.quarantine_adjustments")),
            "compactions_sized": int(
                self.sim.metrics.value("store.compactions_sized")),
            "healthy_killed": len(self._healthy_killed()),
            "authz_accepted": int(self.sim.metrics.value("authz.accepted")),
            "authz_rejected": int(self.sim.metrics.value("authz.rejected")),
            "authz_freezes": int(self.sim.metrics.value("authz.freezes")),
            "authz_rejects_by_reason": {
                reason: int(self.sim.metrics.value(f"authz.rejected.{reason}"))
                for reason in ("unsigned", "unknown-issuer", "bad-mac",
                               "stale", "future", "replayed") + GATEWAY_REASONS
                if self.sim.metrics.value(f"authz.rejected.{reason}")
            },
            "forged_orders": int(
                self.sim.metrics.value("attacks.forged_orders")),
            "replayed_orders": int(
                self.sim.metrics.value("attacks.replayed_orders")),
            "stolen_key_orders": int(
                self.sim.metrics.value("attacks.stolen_key_orders")),
            "reputation_outcomes": (
                sum(self.reputation_ledger.outcomes.values())
                if self.reputation_ledger is not None else 0),
            "reputation_suspects": (
                len(self.reputation_ledger.in_band("suspect", self.sim.now))
                if self.reputation_ledger is not None else 0),
            "knob_adjustments": int(
                self.sim.metrics.value("health.knob_adjustments")),
            "horizon": horizon,
        }
