"""The escort dilemma scenario (paper sec VI-B's forced choice).

A device escorts humans; periodically a life-threatening emergency demands
an *overdrive* that saves the human but pushes the device into a bad
state — full overdrive into the "fire" category, partial overdrive into
the less-bad "property damage" category.  The paper's worked example
("no alternative but to run at maximum capacity to prevent loss of life
but risking a fire"), runnable under three regimes:

* ``baseline`` — no guard: always full overdrive;
* ``statespace`` — plain sec VI-B guard: overdrive vetoed, humans lost;
* ``combined`` — guard + break-glass + preference ontology + risk: the
  paper's resolution.

Used directly by benchmark E2 and available to library users as a worked
example of the dilemma machinery.
"""

from __future__ import annotations

from repro.audit.auditor import BreakGlassAuditor
from repro.audit.log import AuditLog
from repro.core.actions import Action, Effect
from repro.core.events import Event
from repro.core.policy import Policy
from repro.errors import ConfigurationError
from repro.safeguards.statespace import StateSpaceGuard
from repro.scenarios.peacekeeping import device_safety_classifier, state_label
from repro.statespace.breakglass import BreakGlassController, BreakGlassRule
from repro.statespace.preferences import default_military_ontology
from repro.statespace.risk import RiskEstimator, variable_excess_factor
from repro.types import Safeness

ARMS = ("baseline", "statespace", "combined")


class EscortScenario:
    """Builder + runner for the forced-choice dilemma workload."""

    def __init__(self, arm: str, ticks: int = 240, emergency_period: int = 12,
                 passive_cooling: float = 0.7):
        if arm not in ARMS:
            raise ConfigurationError(f"arm must be one of {ARMS}, got {arm!r}")
        self.arm = arm
        self.ticks = ticks
        self.emergency_period = emergency_period
        self.passive_cooling = passive_cooling
        self.audit = AuditLog()
        self._emergency_now = {"active": False}
        self.controller = self._build_controller() if arm == "combined" else None
        self.device = self._build_device()
        self.classifier = device_safety_classifier()
        self.ontology = default_military_ontology()

    # -- construction ---------------------------------------------------------

    def _build_controller(self) -> BreakGlassController:
        controller = BreakGlassController(
            context_verifier=lambda device_id: {
                "life_at_risk": self._emergency_now["active"],
            },
            audit_sink=self.audit.sink(),
        )
        controller.register_rule(BreakGlassRule.make(
            "save_life", "life_at_risk", {"statespace"},
            max_duration=2.0, max_uses=1,
            description="override the state guard to prevent loss of life",
        ))
        return controller

    def _build_device(self):
        from repro.core.device import Actuator, Device
        from repro.core.state import StateSpace, StateVariable

        device = Device("escort", "escort", StateSpace([
            StateVariable("temp", "float", 20.0, 0.0, 150.0),
            StateVariable("fuel", "float", 100.0, 0.0, 100.0),
        ]))
        device.add_actuator(Actuator("motor"))
        library = device.engine.actions
        library.add(Action("cool_down", "motor",
                           effects=[Effect("temp", "add", -10.0)]))
        library.add(Action("overdrive_full", "motor",
                           effects=[Effect("temp", "add", 105.0)],
                           tags={"overdrive"}))
        library.add(Action("overdrive_partial", "motor",
                           effects=[Effect("temp", "add", 85.0)],
                           tags={"overdrive"}))
        device.engine.policies.add(Policy.make(
            "sensor.emergency", None, library.get("overdrive_full"),
            priority=50,
        ))
        device.engine.policies.add(Policy.make(
            "timer", "temp > 40", library.get("cool_down"), priority=5,
        ))
        if self.arm != "baseline":
            device.engine.add_safeguard(StateSpaceGuard(
                device_safety_classifier(),
                ontology=default_military_ontology(),
                labeler=state_label,
                risk=RiskEstimator([
                    variable_excess_factor("temp", 80.0, 150.0),
                ]),
                breakglass=self.controller,
            ))
        return device

    # -- the dilemma resolution (the paper's combined flow) ---------------------

    def _resolve_with_breakglass(self, time: float) -> bool:
        """Verify the emergency, break the glass, take the least-bad
        overdrive.  Returns whether an overdrive executed."""
        grant = self.controller.request("escort", "save_life",
                                        "human life at risk", time)
        if grant is None:
            return False
        current = self.device.state.snapshot()
        options = [
            self.device.engine.actions.get("overdrive_partial"),
            self.device.engine.actions.get("overdrive_full"),
        ]
        predictions = []
        for option in options:
            predicted = dict(current)
            predicted.update(self.device.state.clamp_changes(
                option.predicted_changes(current)))
            predictions.append(predicted)
        least_bad = self.ontology.least_bad(predictions, state_label)
        chosen = options[predictions.index(least_bad)]
        decision = self.device.engine.propose(
            chosen, time, event=Event(kind="sensor.emergency", time=time),
        )
        return bool(
            decision.acted and decision.executed
            and "overdrive" in self.device.engine.actions.get(
                decision.executed).tags
        )

    # -- running -------------------------------------------------------------------

    def run(self) -> dict:
        humans_harmed = 0
        label_entries = {"fire": 0, "property_damage": 0}
        bad_entries = 0
        was_bad = False
        emergency_windows = []

        for tick in range(self.ticks):
            time = float(tick)
            if tick % self.emergency_period == 5:
                self._emergency_now["active"] = True
                emergency_windows.append((time, time + 1.0))
                if self.arm == "combined":
                    overdrove = self._resolve_with_breakglass(time)
                else:
                    decision = self.device.deliver(
                        Event(kind="sensor.emergency", time=time))
                    overdrove = bool(
                        decision.executed
                        and "overdrive" in self.device.engine.actions.get(
                            decision.executed).tags
                    )
                if not overdrove:
                    humans_harmed += 1
                self._emergency_now["active"] = False
            else:
                self.device.deliver(Event(kind="timer.tick", time=time))

            vector = self.device.state.snapshot()
            classification = self.classifier.classify(vector)
            if classification == Safeness.BAD and not was_bad:
                bad_entries += 1
                label = state_label(vector)
                if label in label_entries:
                    label_entries[label] += 1
            was_bad = classification == Safeness.BAD
            self.device.state.set(
                "temp",
                max(20.0, float(self.device.state.get("temp"))
                    * self.passive_cooling),
                time=time, cause="passive-cooling",
            )

        findings = []
        if self.arm == "combined":
            findings = BreakGlassAuditor().audit(
                self.audit, emergency_truth={"escort": emergency_windows},
            )
        return {
            "humans_harmed": humans_harmed,
            "bad_entries": bad_entries,
            "fire_entries": label_entries["fire"],
            "property_damage_entries": label_entries["property_damage"],
            "grants": (len(self.controller.all_grants())
                       if self.controller else 0),
            "audit_violations": sum(1 for finding in findings
                                    if finding.severity == "violation"),
        }
