"""Scenario builders and the experiment harness.

``peacekeeping`` builds the paper's sec II two-nation surveillance
scenario; ``confrontation`` the two-opposing-coalitions scenario with
threat injection; ``harness`` the configuration/metrics plumbing every
benchmark shares.
"""

from repro.scenarios.confrontation import ConfrontationScenario, ThreatConfig
from repro.scenarios.harness import (
    ExperimentTable,
    SafeguardConfig,
    mean_and_std,
    run_replications,
)
from repro.scenarios.peacekeeping import PeacekeepingScenario
from repro.scenarios.reputation import ReputationFleetSpec, ReputationScenario
from repro.scenarios.sharded import ShardedFleetSpec, ShardedScenario
from repro.scenarios.report import AfterActionReport

__all__ = [
    "AfterActionReport",
    "ConfrontationScenario",
    "ExperimentTable",
    "PeacekeepingScenario",
    "ReputationFleetSpec",
    "ReputationScenario",
    "SafeguardConfig",
    "ShardedFleetSpec",
    "ShardedScenario",
    "ThreatConfig",
    "mean_and_std",
    "run_replications",
]
