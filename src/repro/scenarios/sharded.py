"""The sharded fleet confrontation: one large fleet, many shards (F4).

The scenario scales the paper's confrontation story — a worm compromises
devices, compromised devices strike (harm), a signed watchdog kills
rogues, a forger tries to kill healthy devices with bad-MAC orders — to
fleets of 10k–100k devices by combining the two F4 mechanisms:

* the fleet is partitioned across shards along its interaction topology
  (:mod:`repro.sim.sharding`) with cross-shard worm spread, reports and
  kill orders carried by the deterministic barrier transport
  (:mod:`repro.net.shardnet`);
* each shard evaluates its whole device block per tick through the
  vectorized guard/safeness engine (:mod:`repro.safeguards.batch`,
  :mod:`repro.statespace.batch`) — or the scalar twin when
  ``vectorized=False``, which must produce the identical trace.

Determinism contract (the F4 acceptance bar): for a fixed
:class:`ShardedFleetSpec`, the merged trace, summary, and audit-chain
digest are **byte-identical for every shard count** and for both
evaluator paths.  Everything a device does depends only on its own row,
CRC-derived constants, and the deterministic message order — never on
which shard hosts it.

Interop carried across shard boundaries:

* **E21** — with ``signed_commands=True`` kill orders are HMAC envelopes
  (:mod:`repro.crypto.envelope`); every device verifies-then-consumes,
  so the forger's bad-MAC orders land as ``authz.rejected.bad-mac`` and
  ``healthy_killed`` stays 0.  The unsigned arm shows the counterfactual.
* **E19** — worm infections and kill orders carry explicit
  shard-invariant :class:`~repro.telemetry.spans.SpanContext` values on
  the wire, so an infection chain's ``trace_id`` stitches across
  processes (the per-process tracer's counter-minted ids stay out of the
  determinism surface).
* **E20** — per-shard barrier timing gauges
  (:class:`~repro.sim.profiling.BarrierTiming`) publish through the
  existing metrics/exposition stack.

numpy is required here (the whole point is the vectorized block
evaluation; even the scalar twin stores fleet state in a
:class:`~repro.statespace.batch.StateMatrix`).  Library code outside
this scenario stays numpy-optional.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Optional

from repro.crypto.envelope import CommandSigner, EnvelopeVerifier, signed_body
from repro.crypto.keyring import Keyring
from repro.errors import ConfigurationError
from repro.net.shardnet import ShardRouter, crc01
from repro.safeguards.batch import BatchPolicyEvaluator, BatchProgram
from repro.sim.sharding import ShardPlan, ShardResult, ShardedRun, run_sharded
from repro.sim.simulator import Simulator
from repro.statespace.batch import StateMatrix, numpy_available
from repro.statespace.classifier import ThresholdBand, ThresholdClassifier
from repro.core.actions import Effect
from repro.core.state import StateSpace, StateVariable
from repro.telemetry.spans import SpanContext

try:  # pragma: no cover
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: Router addresses of the fleet-global actors (pinned, not partitioned).
WATCHDOG = "watchdog"
FORGER = "forger"


@dataclass(frozen=True)
class ShardedFleetSpec:
    """Everything that determines a sharded confrontation run.

    Frozen and picklable: the coordinator ships one of these to every
    worker, and equal specs must produce byte-identical merged runs
    regardless of ``n_shards``.
    """

    seed: int = 7
    n_devices: int = 200
    horizon: float = 48.0
    window: float = 4.0
    tick_interval: float = 1.0
    n_communities: int = 8
    #: temperature reporting: every device whose temp exceeds
    #: ``report_temp`` reports to the watchdog on its stagger slot.
    report_every: int = 4
    report_temp: float = 90.0
    #: worm: first infections at ``worm_time``, then stochastic spread
    #: along topology edges every ``spread_every`` ticks.
    worm_time: float = 10.0
    worm_targets: int = 2
    spread_every: int = 2
    spread_prob: float = 0.35
    #: compromised devices strike: +rogue_heat temp per tick, unguarded.
    rogue_heat: float = 9.0
    #: the watchdog issues a kill order at or above this reported temp.
    #: Kept above the hottest state a *guarded* device can reach (the
    #: boost program saturates at safeness == bad_below, i.e. temp
    #: 123.75 with the default classifier) so only rogues are killed.
    kill_temp: float = 125.0
    #: forged kill orders (bad MAC) against CRC-chosen targets.
    forge_time: float = 14.0
    forge_count: int = 5
    #: E21 arm: signed envelopes + verify-then-consume vs. bare bodies.
    signed_commands: bool = True
    #: vectorized batch evaluation vs. the scalar twin (same decisions).
    vectorized: bool = True

    def validate(self) -> None:
        if self.n_devices < 4:
            raise ConfigurationError("need at least 4 devices")
        if self.window <= 0 or self.horizon <= 0 or self.tick_interval <= 0:
            raise ConfigurationError("times must be positive")
        if self.n_communities < 1:
            raise ConfigurationError("n_communities must be >= 1")
        if not 0.0 <= self.spread_prob <= 1.0:
            raise ConfigurationError("spread_prob must be in [0, 1]")


def device_name(index: int) -> str:
    return f"dev-{index:05d}"


def fleet_members(spec: ShardedFleetSpec) -> list:
    return [device_name(i) for i in range(spec.n_devices)]


def fleet_edges(spec: ShardedFleetSpec) -> list:
    """The interaction topology: a global ring plus intra-community
    chords.  Communities are contiguous index blocks, so the ring edges
    crossing block boundaries are the (few) inter-community bridges —
    the structure the graph partitioner exploits."""
    n = spec.n_devices
    block = max(2, math.ceil(n / spec.n_communities))
    edges = []
    for i in range(n):
        edges.append((device_name(i), device_name((i + 1) % n)))
        if (i + 2) % n // block == i // block:
            edges.append((device_name(i), device_name((i + 2) % n)))
    return edges


def fleet_space() -> StateSpace:
    return StateSpace([
        StateVariable("temp", "float", default=20.0, low=0.0, high=150.0),
        StateVariable("fuel", "float", default=50.0, low=0.0, high=100.0),
        StateVariable("load", "float", default=0.0, low=0.0, high=1.0),
        StateVariable("alive", "bool", default=True),
        StateVariable("compromised", "bool", default=False),
    ])


def fleet_classifier() -> ThresholdClassifier:
    return ThresholdClassifier([
        ThresholdBand("temp", safe_high=105.0, hard_high=130.0),
        ThresholdBand("fuel", safe_low=8.0, hard_low=0.0),
    ])


def fleet_programs(spec: ShardedFleetSpec) -> list:
    """The prioritized control programs every device runs per tick.

    ``strike`` never matches by condition (``false``); the worm installs
    it by overriding the selection for compromised rows — and those rows
    are guard-exempt (the compromise stripped the safeguard), which is
    exactly the harm the watchdog exists to stop."""
    return [
        BatchProgram("boost", "load > 0.9", [
            Effect("temp", "add", 60.0), Effect("load", "add", -0.5)]),
        BatchProgram("cool", "temp > 70", [Effect("temp", "add", -8.0)]),
        BatchProgram("refuel", "fuel < 25 and load < 0.8", [
            Effect("fuel", "add", 35.0)]),
        BatchProgram("work", "load > 0.45 and fuel > 12", [
            Effect("fuel", "add", -2.5), Effect("temp", "add", 3.5),
            Effect("load", "add", -0.12)]),
        BatchProgram("idle", "true", [
            Effect("load", "add", 0.07), Effect("temp", "add", -1.5)]),
        BatchProgram("strike", "false", [
            Effect("temp", "add", spec.rogue_heat),
            Effect("load", "add", 0.01)]),
    ]


STRIKE_INDEX = 5  # fleet_programs position of the worm's payload


def initial_vector(spec: ShardedFleetSpec, name: str) -> dict:
    """CRC-derived initial state — identical in every process."""
    return {
        "temp": 30.0 + crc01(spec.seed, "init", name, "temp") * 60.0,
        "fuel": 20.0 + crc01(spec.seed, "init", name, "fuel") * 80.0,
        "load": crc01(spec.seed, "init", name, "load"),
        "alive": True,
        "compromised": False,
    }


def worm_seed_indices(spec: ShardedFleetSpec) -> list:
    """The initially infected devices (distinct, CRC-chosen)."""
    chosen: list = []
    salt = 0
    while len(chosen) < min(spec.worm_targets, spec.n_devices):
        index = int(crc01(spec.seed, "worm", salt) * spec.n_devices)
        salt += 1
        if index not in chosen:
            chosen.append(index)
    return sorted(chosen)


def forge_target_index(spec: ShardedFleetSpec, k: int) -> int:
    return int(crc01(spec.seed, "forge", k) * spec.n_devices)


class FleetShard:
    """One shard's slice of the fleet plus its pinned global actors.

    Exposes the ``.sim`` / ``.router`` / ``.finalize()`` surface
    :func:`repro.sim.sharding.run_sharded` drives.
    """

    def __init__(self, shard_index: int, n_shards: int, members: list,
                 spec: ShardedFleetSpec):
        if _np is None:
            raise ConfigurationError(
                "numpy is required for the sharded fleet scenario")
        spec.validate()
        self.spec = spec
        self.shard_index = shard_index
        self.n_shards = n_shards
        self.sim = Simulator(seed=spec.seed)
        self.router = ShardRouter(self.sim, seed=spec.seed,
                                  window=spec.window)
        self.devices = sorted(m for m in members if m.startswith("dev-"))
        self.index_of = {name: i for i, name in enumerate(self.devices)}
        self.global_index = {name: int(name.split("-", 1)[1])
                             for name in self.devices}

        self.space = fleet_space()
        self.classifier = fleet_classifier()
        self.programs = fleet_programs(spec)
        self.evaluator = BatchPolicyEvaluator(
            self.space, self.programs, classifier=self.classifier)
        self.matrix = StateMatrix.from_rows(
            self.space, [initial_vector(spec, name) for name in self.devices])
        self.ever_compromised = _np.zeros(len(self.devices), dtype=bool)

        # Neighbor lists from the (globally identical) topology.
        adjacency: dict = {name: [] for name in self.devices}
        for a, b in fleet_edges(spec):
            if a in adjacency:
                adjacency[a].append(b)
            if b in adjacency:
                adjacency[b].append(a)
        self.neighbors = {name: sorted(set(peers))
                          for name, peers in adjacency.items()}

        # E19: the causal context of each local device's infection, used
        # as the parent of its outgoing spread sends.  Shard-invariant by
        # construction (derived from device names, not tracer counters).
        self.infection_ctx: dict = {}
        self.spans: list = []
        self.audit: list = []

        # E21: the shared keyring is derived from the master seed, so
        # every process holds identical keys without any exchange.
        self.keyring = Keyring(seed=spec.seed)
        self.keyring.issue(WATCHDOG)
        self._verifiers: dict = {}

        self.counters = {
            "infected": 0, "killed": 0, "healthy_killed": 0,
            "harm_strikes": 0, "vetoes": 0, "reports": 0,
            "kill_orders": 0, "forged_orders": 0,
        }
        self.authz_rejected: dict = {}

        for name in self.devices:
            self.router.register(name, self._make_device_handler(name))
        self.sim.every(spec.tick_interval, self._tick, label="fleet:tick")
        for index in worm_seed_indices(spec):
            name = device_name(index)
            if name in self.index_of:
                self.sim.schedule_at(spec.worm_time, self._seed_infection,
                                     name, label=f"{name}:worm-seed")

        self._watchdog_ordered: dict = {}
        self._signer: Optional[CommandSigner] = None
        if WATCHDOG in members:
            self._signer = CommandSigner(self.keyring, WATCHDOG)
            self.router.register(WATCHDOG, self._watchdog_handler)
        if FORGER in members:
            # The forger holds a key derived from the *wrong* master
            # seed: structurally valid envelopes, bad MACs (E21).
            self._forged_key = Keyring(seed=spec.seed + 1).issue(WATCHDOG)
            for k in range(spec.forge_count):
                self.sim.schedule_at(spec.forge_time + k * spec.tick_interval,
                                     self._forge, k, label="forger:forge")

    # -- the per-tick batch evaluation ---------------------------------------

    def _tick(self) -> None:
        np = _np
        spec = self.spec
        n = self.matrix.n_rows
        if n:
            tick = int(round(self.sim.now / spec.tick_interval))
            alive = self.matrix.columns["alive"]
            compromised = self.matrix.columns["compromised"]
            rogue = alive & compromised
            if spec.vectorized:
                chosen = self.evaluator.select(self.matrix, active=alive)
            else:
                chosen = self.evaluator.select_scalar(self.matrix,
                                                      active=alive)
            # The worm's payload replaces the control program outright.
            chosen = np.where(rogue, STRIKE_INDEX, chosen)
            if spec.vectorized:
                vetoed, executed = self.evaluator.apply(
                    self.matrix, chosen, guard_exempt=rogue)
            else:
                vetoed, executed = self.evaluator.apply_scalar(
                    self.matrix, chosen, guard_exempt=rogue)
            self.counters["vetoes"] += int(vetoed.sum())
            self.counters["harm_strikes"] += int((executed & rogue).sum())
            self._report_and_spread(tick)

    def _report_and_spread(self, tick: int) -> None:
        spec = self.spec
        matrix = self.matrix
        alive = matrix.columns["alive"]
        compromised = matrix.columns["compromised"]
        temp = matrix.columns["temp"]
        hot = _np.nonzero(alive & (temp > spec.report_temp))[0]
        for i in hot:
            i = int(i)
            name = self.devices[i]
            if (self.global_index[name] + tick) % spec.report_every:
                continue
            self.counters["reports"] += 1
            self.router.send(name, WATCHDOG, "report",
                             {"device": name, "temp": float(temp[i])},
                             trace=None)
        if tick % spec.spread_every:
            return
        spreaders = _np.nonzero(alive & compromised)[0]
        for i in spreaders:
            name = self.devices[int(i)]
            ctx = self.infection_ctx.get(name)
            for neighbor in self.neighbors[name]:
                if crc01(spec.seed, "spread", name, neighbor,
                         tick) >= spec.spread_prob:
                    continue
                child = None
                if ctx is not None:
                    child = SpanContext(ctx.trace_id,
                                        f"{ctx.trace_id}:{name}>{neighbor}",
                                        ctx.span_id)
                self.router.send(name, neighbor, "worm.infect",
                                 {"from": name}, trace=child)

    # -- infection ------------------------------------------------------------

    def _seed_infection(self, name: str) -> None:
        root = SpanContext(f"worm:{name}", f"worm:{name}:0", None)
        self._infect(name, origin="seed", ctx=root)

    def _infect(self, name: str, origin: str, ctx) -> None:
        i = self.index_of[name]
        if not self.matrix.columns["alive"][i]:
            return
        if self.matrix.columns["compromised"][i]:
            return
        self.matrix.columns["compromised"][i] = True
        self.ever_compromised[i] = True
        self.counters["infected"] += 1
        self.infection_ctx[name] = SpanContext(
            ctx.trace_id, f"{ctx.trace_id}:{name}", ctx.span_id) \
            if ctx is not None else None
        self._trace("worm.infected", name, origin=origin)
        self._audit("worm.infected", name, {"origin": origin})
        if ctx is not None:
            self._span(name, "worm.infect", self.infection_ctx[name])

    # -- device message handling ----------------------------------------------

    def _make_device_handler(self, name: str):
        def handle(message) -> None:
            if message.topic == "worm.infect":
                self._infect(name, origin=message.sender, ctx=message.trace)
            elif message.topic == "cmd.kill":
                self._handle_kill(name, message)

        return handle

    def _verifier_for(self, name: str) -> EnvelopeVerifier:
        verifier = self._verifiers.get(name)
        if verifier is None:
            verifier = EnvelopeVerifier(
                self.keyring, window=max(10.0, 3.0 * self.spec.window))
            self._verifiers[name] = verifier
        return verifier

    def _handle_kill(self, name: str, message) -> None:
        body = message.body
        if self.spec.signed_commands:
            ok, reason = self._verifier_for(name).consume(body, self.sim.now)
            if not ok:
                self.authz_rejected[reason] = (
                    self.authz_rejected.get(reason, 0) + 1)
                self._trace(f"authz.rejected.{reason}", name,
                            issuer=body.get("_issuer"), sender=message.sender)
                self._audit(f"authz.rejected.{reason}", name,
                            {"sender": message.sender})
                return
        i = self.index_of[name]
        if not self.matrix.columns["alive"][i]:
            return
        self.matrix.columns["alive"][i] = False
        self.counters["killed"] += 1
        healthy = not bool(self.ever_compromised[i])
        if healthy:
            self.counters["healthy_killed"] += 1
        self._trace("device.killed", name, by=message.sender, healthy=healthy)
        self._audit("device.killed", name,
                    {"by": message.sender, "healthy": healthy})
        if message.trace is not None:
            self._span(name, "device.kill", SpanContext(
                message.trace.trace_id, f"{message.trace.trace_id}:{name}",
                message.trace.span_id))

    # -- the pinned global actors ---------------------------------------------

    def _watchdog_handler(self, message) -> None:
        if message.topic != "report":
            return
        body = message.body
        target = body.get("device")
        if (body.get("temp", 0.0) < self.spec.kill_temp
                or target in self._watchdog_ordered):
            return
        self._watchdog_ordered[target] = True
        self.counters["kill_orders"] += 1
        payload = {"op": "kill", "target": target}
        if self.spec.signed_commands:
            order = self._signer.sign(payload, tick=self.sim.now)
        else:
            order = dict(payload)
        ctx = SpanContext(f"kill:{target}", f"kill:{target}:order", None)
        self._trace("watchdog.order", target, temp=body.get("temp"))
        self._audit("watchdog.order", target, {"temp": body.get("temp")})
        self.router.send(WATCHDOG, target, "cmd.kill", order, trace=ctx)

    def _forge(self, k: int) -> None:
        spec = self.spec
        target = device_name(forge_target_index(spec, k))
        payload = {"op": "kill", "target": target}
        if spec.signed_commands:
            body = signed_body(self._forged_key, WATCHDOG, payload,
                               nonce=f"forged:{k}", tick=self.sim.now)
        else:
            body = dict(payload)
        self.counters["forged_orders"] += 1
        self._trace("forgery.sent", target, k=k)
        ctx = SpanContext(f"forge:{k}", f"forge:{k}:send", None)
        self.router.send(FORGER, target, "cmd.kill", body, trace=ctx)

    # -- recording -------------------------------------------------------------

    def _trace(self, kind: str, subject: str, **detail) -> None:
        self.sim.record(kind, subject, **detail)

    def _audit(self, kind: str, subject: str, detail: dict) -> None:
        self.audit.append(
            f"{self.sim.now!r}|{kind}|{subject}|"
            f"{json.dumps(detail, sort_keys=True)}")

    def _span(self, subject: str, name: str, ctx: SpanContext) -> None:
        self.spans.append({
            "time": self.sim.now, "subject": subject, "name": name,
            "trace_id": ctx.trace_id, "span_id": ctx.span_id,
            "parent_id": ctx.parent_id,
        })

    # -- finalize ---------------------------------------------------------------

    def finalize(self) -> ShardResult:
        alive = self.matrix.columns["alive"]
        stats = self.evaluator.stats()
        summary = {
            "devices": len(self.devices),
            "alive": int(alive.sum()),
            "infected": self.counters["infected"],
            "killed": self.counters["killed"],
            "healthy_killed": self.counters["healthy_killed"],
            "harm_strikes": self.counters["harm_strikes"],
            "vetoes": self.counters["vetoes"],
            "reports": self.counters["reports"],
            "kill_orders": self.counters["kill_orders"],
            "forged_orders": self.counters["forged_orders"],
            "authz_rejected": dict(self.authz_rejected),
            "decisions": stats["decisions"],
            "fallback_reasons": dict(stats["fallback_reasons"]),
            "signed_commands": self.spec.signed_commands,
            "vectorized": self.spec.vectorized,
        }
        trace = [
            (event.time, event.subject,
             f"{event.time!r} {event.kind} {event.subject} "
             f"{json.dumps(event.detail, sort_keys=True)}")
            for event in self.sim.trace.events
        ]
        metrics = {
            "net.shard.sent": self.router._m_sent.value,
            "net.shard.delivered": self.router._m_delivered.value,
            "vector_evals": stats["vector_evals"],
            "scalar_evals": stats["scalar_evals"],
        }
        return ShardResult(
            shard_index=self.shard_index, trace=trace, summary=summary,
            audit=list(self.audit), spans=list(self.spans), metrics=metrics,
            events_processed=self.sim.events_processed,
        )


def build_shard(shard_index: int, n_shards: int, members: list,
                build_args: dict) -> FleetShard:
    """Module-level (picklable) build function for :func:`run_sharded`."""
    return FleetShard(shard_index, n_shards, members, build_args["spec"])


class ShardedScenario:
    """The user-facing wrapper: spec + shard count -> merged run."""

    def __init__(self, n_shards: int = 1, processes: bool = False,
                 **spec_kwargs):
        if not numpy_available():
            raise ConfigurationError(
                "numpy is required for the sharded fleet scenario")
        self.spec = ShardedFleetSpec(**spec_kwargs)
        self.spec.validate()
        if n_shards < 1:
            raise ConfigurationError("n_shards must be >= 1")
        self.n_shards = n_shards
        self.processes = processes

    def plan(self) -> ShardPlan:
        pins = {WATCHDOG: 0, FORGER: self.n_shards - 1}
        return ShardPlan.build(fleet_members(self.spec), self.n_shards,
                               edges=fleet_edges(self.spec), pins=pins)

    def run(self) -> ShardedRun:
        return run_sharded(build_shard, {"spec": self.spec}, self.plan(),
                           horizon=self.spec.horizon,
                           window=self.spec.window,
                           processes=self.processes)
