"""Break-glass rules (paper sec VI-B, ref [12]).

"Break-glass rules are typically used in medical systems to allow
operators emergency access to data and IT systems when normal
authentication cannot be successfully completed or the access control
policies would not allow access.  Use of such rules in our context would
require support for audits to verify that devices did not abuse the
break-glass rules."

A :class:`BreakGlassRule` names an emergency condition under which a
specific safeguard may be bypassed for a bounded duration.  Every grant
and every use is recorded through an audit sink; the paper further
requires "trustworthy information concerning its own status and the
environment", which is modelled by a pluggable *context verifier* (backed
by ``repro.trust`` secure aggregation in the experiments).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core.conditions import Condition, parse_condition
from repro.errors import BreakGlassError

_grant_ids = itertools.count(1)


@dataclass(frozen=True)
class BreakGlassRule:
    """An emergency bypass authorization.

    ``emergency_condition`` must hold over the *verified* context for a
    grant to issue.  ``bypasses`` names the safeguards whose vetoes are
    suspended (e.g. ``{"statespace"}``).  ``max_duration`` bounds the
    grant in simulated time; ``max_uses`` bounds how many vetoes it can
    absorb.
    """

    rule_id: str
    emergency_condition: Condition
    bypasses: frozenset
    max_duration: float = 10.0
    max_uses: int = 5
    description: str = ""

    def __post_init__(self):
        object.__setattr__(self, "bypasses", frozenset(self.bypasses))
        if self.max_duration <= 0:
            raise BreakGlassError("max_duration must be positive")
        if self.max_uses <= 0:
            raise BreakGlassError("max_uses must be positive")

    @staticmethod
    def make(rule_id: str, condition: object, bypasses: set, *,
             max_duration: float = 10.0, max_uses: int = 5,
             description: str = "") -> "BreakGlassRule":
        if isinstance(condition, str):
            condition = parse_condition(condition)
        return BreakGlassRule(
            rule_id=rule_id, emergency_condition=condition,
            bypasses=frozenset(bypasses), max_duration=max_duration,
            max_uses=max_uses, description=description,
        )


@dataclass
class BreakGlassGrant:
    """An active (or expired) emergency bypass for one device."""

    rule: BreakGlassRule
    device_id: str
    justification: str
    granted_at: float
    expires_at: float
    grant_id: int = field(default_factory=lambda: next(_grant_ids))
    uses: int = 0
    revoked: bool = False

    def active(self, time: float) -> bool:
        return (not self.revoked and time <= self.expires_at
                and self.uses < self.rule.max_uses)

    def covers(self, safeguard_name: str, time: float) -> bool:
        return self.active(time) and safeguard_name in self.rule.bypasses


class BreakGlassController:
    """Issues, tracks, and audits break-glass grants for a fleet.

    ``context_verifier(device_id) -> dict`` supplies the trustworthy
    context the emergency condition is evaluated against — the paper's
    requirement that the decision to break the glass rest "on true
    information".  ``audit_sink(kind, detail)`` receives every grant,
    use, denial, and revocation.
    """

    def __init__(
        self,
        context_verifier: Callable[[str], dict],
        audit_sink: Optional[Callable[[str, dict], None]] = None,
    ):
        self._rules: dict[str, BreakGlassRule] = {}
        self._grants: list[BreakGlassGrant] = []
        self._verify = context_verifier
        self._audit = audit_sink or (lambda kind, detail: None)

    def register_rule(self, rule: BreakGlassRule) -> None:
        if rule.rule_id in self._rules:
            raise BreakGlassError(f"duplicate break-glass rule {rule.rule_id!r}")
        self._rules[rule.rule_id] = rule

    def rules(self) -> list[BreakGlassRule]:
        return list(self._rules.values())

    def request(self, device_id: str, rule_id: str, justification: str,
                time: float) -> Optional[BreakGlassGrant]:
        """Request an emergency grant; returns it, or ``None`` when denied.

        Denials happen when the verified context does not satisfy the
        rule's emergency condition — the defense against devices claiming
        fake emergencies.
        """
        rule = self._rules.get(rule_id)
        if rule is None:
            raise BreakGlassError(f"unknown break-glass rule {rule_id!r}")
        if not justification.strip():
            raise BreakGlassError("break-glass requests require a justification")
        context = self._verify(device_id)
        if not rule.emergency_condition.evaluate(context, None):
            self._audit("breakglass.denied", {
                "device": device_id, "rule": rule_id,
                "justification": justification, "time": time,
                "context": dict(context),
            })
            return None
        grant = BreakGlassGrant(
            rule=rule, device_id=device_id, justification=justification,
            granted_at=time, expires_at=time + rule.max_duration,
        )
        self._grants.append(grant)
        self._audit("breakglass.granted", {
            "device": device_id, "rule": rule_id, "grant_id": grant.grant_id,
            "justification": justification, "time": time,
            "expires_at": grant.expires_at,
        })
        return grant

    def is_bypassed(self, device_id: str, safeguard_name: str, time: float) -> bool:
        """True when an active grant covers this safeguard for this device.

        A ``True`` answer consumes one use of the covering grant and is
        audited — uses are exactly what the post-hoc abuse audit counts.
        """
        for grant in self._grants:
            if grant.device_id == device_id and grant.covers(safeguard_name, time):
                grant.uses += 1
                self._audit("breakglass.used", {
                    "device": device_id, "safeguard": safeguard_name,
                    "grant_id": grant.grant_id, "use": grant.uses, "time": time,
                })
                return True
        return False

    def revoke(self, grant_id: int, time: float, reason: str) -> bool:
        for grant in self._grants:
            if grant.grant_id == grant_id and not grant.revoked:
                grant.revoked = True
                self._audit("breakglass.revoked", {
                    "grant_id": grant_id, "reason": reason, "time": time,
                })
                return True
        return False

    def grants_for(self, device_id: str) -> list[BreakGlassGrant]:
        return [grant for grant in self._grants if grant.device_id == device_id]

    def all_grants(self) -> list[BreakGlassGrant]:
        return list(self._grants)
