"""Good / neutral / bad state classification with a safeness metric.

Paper sec V: "one could consider a 'safeness' (or risk) metric associated
with each state.  The safeness metric would induce a partial ordering on
the set of states. ... the truly 'bad' states where the safeness is below
an acceptable level must be avoided."

Every classifier maps a state vector to a safeness score in ``[0, 1]``
(1 = maximally safe) and derives the three-way classification from two
thresholds.  :class:`BoxClassifier` directly realizes Figure 3 — a good
region surrounded by bad regions in variable space.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence

from repro.errors import ConfigurationError
from repro.types import Safeness


class SafenessClassifier:
    """Base class: subclasses implement :meth:`safeness`.

    ``bad_below`` and ``good_above`` set the classification thresholds:
    safeness < bad_below → BAD; safeness ≥ good_above → GOOD; otherwise
    NEUTRAL.
    """

    def __init__(self, bad_below: float = 0.25, good_above: float = 0.75):
        if not 0.0 <= bad_below <= good_above <= 1.0:
            raise ConfigurationError(
                f"require 0 <= bad_below <= good_above <= 1, got "
                f"{bad_below}, {good_above}"
            )
        self.bad_below = bad_below
        self.good_above = good_above

    def safeness(self, vector: dict) -> float:
        raise NotImplementedError

    def classify(self, vector: dict) -> Safeness:
        score = self.safeness(vector)
        if score < self.bad_below:
            return Safeness.BAD
        if score >= self.good_above:
            return Safeness.GOOD
        return Safeness.NEUTRAL

    def is_bad(self, vector: dict) -> bool:
        return self.classify(vector) == Safeness.BAD

    def is_good(self, vector: dict) -> bool:
        return self.classify(vector) == Safeness.GOOD

    def prefer(self, a: dict, b: dict) -> int:
        """Partial-order comparison by safeness: 1 if a safer, -1 if b, 0 tie."""
        sa, sb = self.safeness(a), self.safeness(b)
        if sa > sb:
            return 1
        if sb > sa:
            return -1
        return 0


@dataclass(frozen=True)
class BoxRegion:
    """An axis-aligned box: per-variable closed intervals.

    Variables not mentioned are unconstrained.  ``None`` endpoints are
    open in that direction.
    """

    name: str
    bounds: tuple  # tuple of (variable, low_or_None, high_or_None)

    @staticmethod
    def make(name: str, **intervals) -> "BoxRegion":
        """``BoxRegion.make("hot", temp=(90, None))``"""
        bounds = []
        for variable, interval in intervals.items():
            low, high = interval
            if low is not None and high is not None and low > high:
                raise ConfigurationError(
                    f"region {name!r}: empty interval for {variable!r}"
                )
            bounds.append((variable, low, high))
        return BoxRegion(name=name, bounds=tuple(bounds))

    def contains(self, vector: dict) -> bool:
        for variable, low, high in self.bounds:
            if variable not in vector:
                return False
            value = vector[variable]
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                return False
            if low is not None and value < low:
                return False
            if high is not None and value > high:
                return False
        return True

    def margin(self, vector: dict) -> float:
        """Distance from the vector to this box (0 if inside).

        L∞-style: the largest per-variable violation, which gives a
        smooth "how close to the region am I" signal for safeness decay.
        """
        worst = 0.0
        for variable, low, high in self.bounds:
            value = vector.get(variable)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                return float("inf")
            if low is not None and value < low:
                worst = max(worst, low - value)
            elif high is not None and value > high:
                worst = max(worst, value - high)
        return worst


class BoxClassifier(SafenessClassifier):
    """Figure 3 realized: good box(es), bad box(es), neutral elsewhere.

    Safeness: 0 inside any bad region; otherwise decays toward bad regions
    — ``min(1, distance_to_nearest_bad / decay_scale)`` — and is pinned to
    1.0 deep inside a good region.
    """

    def __init__(
        self,
        good: Sequence[BoxRegion],
        bad: Sequence[BoxRegion],
        decay_scale: float = 10.0,
        bad_below: float = 0.25,
        good_above: float = 0.75,
    ):
        super().__init__(bad_below, good_above)
        if decay_scale <= 0:
            raise ConfigurationError("decay_scale must be positive")
        self.good = list(good)
        self.bad = list(bad)
        self.decay_scale = decay_scale

    def bad_region_of(self, vector: dict) -> Optional[BoxRegion]:
        for region in self.bad:
            if region.contains(vector):
                return region
        return None

    def safeness(self, vector: dict) -> float:
        if self.bad_region_of(vector) is not None:
            return 0.0
        in_good = any(region.contains(vector) for region in self.good)
        if not self.bad:
            return 1.0 if in_good else 0.5
        nearest = min(region.margin(vector) for region in self.bad)
        if nearest == float("inf"):
            return 1.0 if in_good else 0.5
        proximity_score = min(1.0, nearest / self.decay_scale)
        if in_good:
            # Good regions guarantee at least the good threshold.
            return max(self.good_above, proximity_score)
        return proximity_score


@dataclass(frozen=True)
class ThresholdBand:
    """A per-variable safe band with soft margins.

    Safeness contribution is 1 inside ``[safe_low, safe_high]``, 0 beyond
    ``[hard_low, hard_high]``, linear in between.
    """

    variable: str
    safe_low: Optional[float] = None
    safe_high: Optional[float] = None
    hard_low: Optional[float] = None
    hard_high: Optional[float] = None

    def score(self, vector: dict) -> float:
        value = vector.get(self.variable)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            return 0.0
        score = 1.0
        if self.safe_high is not None and value > self.safe_high:
            if self.hard_high is None or self.hard_high <= self.safe_high:
                return 0.0
            score = min(score, max(0.0, (self.hard_high - value)
                                   / (self.hard_high - self.safe_high)))
        if self.safe_low is not None and value < self.safe_low:
            if self.hard_low is None or self.hard_low >= self.safe_low:
                return 0.0
            score = min(score, max(0.0, (value - self.hard_low)
                                   / (self.safe_low - self.hard_low)))
        return score


class ThresholdClassifier(SafenessClassifier):
    """Safeness = the minimum band score (the weakest variable dominates)."""

    def __init__(self, bands: Iterable[ThresholdBand],
                 bad_below: float = 0.25, good_above: float = 0.75):
        super().__init__(bad_below, good_above)
        self.bands = list(bands)
        if not self.bands:
            raise ConfigurationError("ThresholdClassifier needs at least one band")

    def safeness(self, vector: dict) -> float:
        return min(band.score(vector) for band in self.bands)


class FunctionClassifier(SafenessClassifier):
    """Wraps an arbitrary safeness function f: vector -> [0, 1].

    This models the paper's sec VII premise that the true f(x1..xN) may
    exist but be unknown to the humans configuring the system: experiments
    use a FunctionClassifier as hidden ground truth while devices only get
    derivative signs.
    """

    def __init__(self, fn: Callable[[dict], float],
                 bad_below: float = 0.25, good_above: float = 0.75):
        super().__init__(bad_below, good_above)
        self._fn = fn

    def safeness(self, vector: dict) -> float:
        score = float(self._fn(vector))
        return min(1.0, max(0.0, score))


class CompositeClassifier(SafenessClassifier):
    """Conservative composition: safeness = min over children.

    Used when a device's safety is judged along several independent
    dimensions (thermal, spatial, mission): any one failing makes the
    state unsafe.
    """

    def __init__(self, children: Sequence[SafenessClassifier],
                 bad_below: float = 0.25, good_above: float = 0.75):
        super().__init__(bad_below, good_above)
        if not children:
            raise ConfigurationError("CompositeClassifier needs children")
        self.children = list(children)

    def safeness(self, vector: dict) -> float:
        return min(child.safeness(vector) for child in self.children)
