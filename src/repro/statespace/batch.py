"""Vectorized safeness evaluation over structured state arrays (F4).

The per-device hot path evaluates one state vector at a time; at fleet
scale (10k-100k devices, benchmark F4) that per-device Python dispatch
dominates the run.  This module batches the sec V safeness metric across
a whole device block:

* :class:`StateMatrix` — column-per-variable arrays mirroring a
  :class:`~repro.core.state.StateSpace` (one float64/bool/object column
  per declared variable, with the declared physical bounds available for
  vectorized clamping);
* :func:`compile_safeness` — compiles a
  :class:`~repro.statespace.classifier.SafenessClassifier` into a closure
  that scores every row at once.  The compiled arithmetic mirrors the
  scalar implementations operation-for-operation (same IEEE-754 ops in
  the same order), so vector and scalar scores are bit-identical and the
  BAD/NEUTRAL/GOOD decisions agree exactly.

Not every classifier vectorizes: :class:`FunctionClassifier` wraps an
opaque Python function, and unknown subclasses may override
``safeness``.  Those raise :class:`BatchCompileError` with a stable
``reason`` slug — callers fall back to the scalar path and **count** the
fallback (silent degradation is how perf regressions hide).

numpy is optional for the library as a whole: everything here degrades
to the scalar path when numpy is absent (:func:`numpy_available`), and
:class:`BatchSafenessSampler` — the confrontation-scenario opt-in —
counts scalar fallbacks per reason instead of failing.
"""

from __future__ import annotations

from typing import Optional

from repro.core.state import StateSpace
from repro.errors import ConfigurationError
from repro.statespace.classifier import (
    BoxClassifier,
    CompositeClassifier,
    SafenessClassifier,
    ThresholdClassifier,
)

try:  # pragma: no cover - exercised implicitly by every import
    import numpy as _np
except ImportError:  # pragma: no cover - container always ships numpy
    _np = None

#: Numeric variable kinds a compiled classifier may read.
_NUMERIC_KINDS = ("float", "int")


def numpy_available() -> bool:
    """Whether the vectorized paths can run at all."""
    return _np is not None


class BatchCompileError(Exception):
    """A construct the vectorizer cannot express.

    ``reason`` is a stable slug used as a fallback-counter key:
    ``opaque-function``, ``unsupported-classifier``, ``unknown-variable``,
    ``non-numeric-variable``, ``no-numpy`` (plus the condition-side
    reasons minted by :mod:`repro.safeguards.batch`).
    """

    def __init__(self, reason: str, detail: str = ""):
        self.reason = reason
        self.detail = detail
        super().__init__(f"{reason}: {detail}" if detail else reason)


class StateMatrix:
    """Column-per-variable arrays mirroring a :class:`StateSpace`.

    Row ``i`` is one device's state vector; :meth:`row` materializes it
    back into the plain-dict form every scalar API consumes (values are
    converted to native Python scalars so ``Condition.evaluate`` and
    ``SafenessClassifier.safeness`` see exactly what a
    :class:`~repro.core.state.DeviceState` would hand them).
    """

    def __init__(self, space: StateSpace, n_rows: int, np_module=None):
        np = np_module if np_module is not None else _np
        if np is None:
            raise ConfigurationError(
                "numpy is required for StateMatrix; install it or use the "
                "scalar per-device path"
            )
        if n_rows < 0:
            raise ConfigurationError("n_rows must be non-negative")
        self.np = np
        self.space = space
        self.n_rows = int(n_rows)
        self.columns: dict = {}
        for var in space.variables():
            if var.kind == "float":
                col = np.full(self.n_rows, float(var.default), dtype=np.float64)
            elif var.kind == "int":
                col = np.full(self.n_rows, int(var.default), dtype=np.int64)
            elif var.kind == "bool":
                col = np.full(self.n_rows, bool(var.default), dtype=bool)
            else:  # str
                col = np.array([var.default] * self.n_rows, dtype=object)
            self.columns[var.name] = col

    @classmethod
    def from_rows(cls, space: StateSpace, rows, np_module=None) -> "StateMatrix":
        """Build a matrix from an iterable of state-vector dicts."""
        rows = list(rows)
        matrix = cls(space, len(rows), np_module=np_module)
        for name, col in matrix.columns.items():
            for i, vector in enumerate(rows):
                if name in vector:
                    col[i] = vector[name]
        return matrix

    def column(self, name: str):
        try:
            return self.columns[name]
        except KeyError:
            raise ConfigurationError(
                f"state variable {name!r} not declared in the matrix space"
            ) from None

    def set_column(self, name: str, values) -> None:
        col = self.column(name)
        col[:] = values

    def row(self, i: int) -> dict:
        """Row ``i`` as a plain dict of native Python scalars."""
        out = {}
        for name, col in self.columns.items():
            value = col[i]
            kind = self.space.variable(name).kind
            if kind == "float":
                out[name] = float(value)
            elif kind == "int":
                out[name] = int(value)
            elif kind == "bool":
                out[name] = bool(value)
            else:
                out[name] = value
        return out

    def rows(self):
        for i in range(self.n_rows):
            yield self.row(i)

    def clamp(self, name: str, values):
        """Values saturated at the variable's declared physical bounds.

        Mirrors :meth:`repro.core.state.DeviceState.resolve_changes`:
        ``low`` is applied before ``high``, via ``maximum`` then
        ``minimum`` — the same result as the scalar two-``if`` form.
        """
        np = self.np
        var = self.space.variable(name)
        if var.low is not None:
            values = np.maximum(values, var.low)
        if var.high is not None:
            values = np.minimum(values, var.high)
        return values


# ---------------------------------------------------------------------------
# Classifier compilation
# ---------------------------------------------------------------------------


def _require_numeric(space: StateSpace, name: str) -> None:
    if name not in space:
        raise BatchCompileError("unknown-variable", name)
    if space.variable(name).kind not in _NUMERIC_KINDS:
        raise BatchCompileError("non-numeric-variable", name)


def _compile_threshold(clf: ThresholdClassifier, space: StateSpace, np):
    bands = list(clf.bands)
    for band in bands:
        _require_numeric(space, band.variable)

    def safeness(columns: dict, n: int):
        score = None
        for band in bands:
            v = columns[band.variable]
            s = np.ones(n, dtype=np.float64)
            if band.safe_high is not None:
                over = v > band.safe_high
                if band.hard_high is None or band.hard_high <= band.safe_high:
                    s = np.where(over, 0.0, s)
                else:
                    cand = np.minimum(s, np.maximum(
                        0.0, (band.hard_high - v)
                        / (band.hard_high - band.safe_high)))
                    s = np.where(over, cand, s)
            if band.safe_low is not None:
                under = v < band.safe_low
                if band.hard_low is None or band.hard_low >= band.safe_low:
                    s = np.where(under, 0.0, s)
                else:
                    cand = np.minimum(s, np.maximum(
                        0.0, (v - band.hard_low)
                        / (band.safe_low - band.hard_low)))
                    s = np.where(under, cand, s)
            score = s if score is None else np.minimum(score, s)
        return score

    return safeness


def _compile_box(clf: BoxClassifier, space: StateSpace, np):
    for region in list(clf.good) + list(clf.bad):
        for variable, _low, _high in region.bounds:
            _require_numeric(space, variable)

    def contains(region, columns, n):
        inside = np.ones(n, dtype=bool)
        for variable, low, high in region.bounds:
            v = columns[variable]
            if low is not None:
                inside = inside & (v >= low)
            if high is not None:
                inside = inside & (v <= high)
        return inside

    def margin(region, columns, n):
        # Largest per-variable violation; the low branch takes precedence
        # where both could fire, matching the scalar if/elif.
        worst = np.zeros(n, dtype=np.float64)
        for variable, low, high in region.bounds:
            v = columns[variable]
            contrib = np.zeros(n, dtype=np.float64)
            if high is not None:
                contrib = np.where(v > high, v - high, contrib)
            if low is not None:
                contrib = np.where(v < low, low - v, contrib)
            worst = np.maximum(worst, contrib)
        return worst

    def safeness(columns: dict, n: int):
        in_bad = np.zeros(n, dtype=bool)
        nearest = None
        for region in clf.bad:
            in_bad = in_bad | contains(region, columns, n)
            m = margin(region, columns, n)
            nearest = m if nearest is None else np.minimum(nearest, m)
        in_good = np.zeros(n, dtype=bool)
        for region in clf.good:
            in_good = in_good | contains(region, columns, n)
        if nearest is None:  # no bad regions declared
            base = np.where(in_good, 1.0, 0.5)
        else:
            proximity = np.minimum(1.0, nearest / clf.decay_scale)
            base = np.where(in_good,
                            np.maximum(clf.good_above, proximity), proximity)
        return np.where(in_bad, 0.0, base)

    return safeness


def _compile(clf: SafenessClassifier, space: StateSpace, np):
    # Exact-type dispatch on purpose: a subclass may override safeness(),
    # and compiling the parent's semantics would silently diverge.
    kind = type(clf)
    if kind is ThresholdClassifier:
        return _compile_threshold(clf, space, np)
    if kind is BoxClassifier:
        return _compile_box(clf, space, np)
    if kind is CompositeClassifier:
        children = [_compile(child, space, np) for child in clf.children]

        def safeness(columns: dict, n: int):
            score = None
            for child in children:
                s = child(columns, n)
                score = s if score is None else np.minimum(score, s)
            return score

        return safeness
    if kind.__name__ == "FunctionClassifier":
        raise BatchCompileError("opaque-function", kind.__name__)
    raise BatchCompileError("unsupported-classifier", kind.__name__)


class BatchSafeness:
    """A compiled classifier: scores/classifies every row at once."""

    __slots__ = ("classifier", "np", "_fn", "calls")

    def __init__(self, classifier: SafenessClassifier, fn, np):
        self.classifier = classifier
        self.np = np
        self._fn = fn
        self.calls = 0

    def safeness(self, columns: dict, n: int):
        """Safeness score per row, bit-identical to the scalar metric."""
        self.calls += 1
        return self._fn(columns, n)

    def bad_mask(self, columns: dict, n: int):
        """Rows whose predicted state classifies BAD (score < bad_below)."""
        return self.safeness(columns, n) < self.classifier.bad_below


def compile_safeness(classifier: SafenessClassifier, space: StateSpace,
                     np_module=None) -> BatchSafeness:
    """Compile ``classifier`` for batch evaluation over ``space`` columns.

    Raises :class:`BatchCompileError` (with a stable ``reason``) for
    constructs the vectorizer cannot express; callers catch it, count the
    fallback, and use the scalar classifier instead.
    """
    np = np_module if np_module is not None else _np
    if np is None:
        raise BatchCompileError("no-numpy")
    return BatchSafeness(classifier, _compile(classifier, space, np), np)


class BatchSafenessSampler:
    """Fleet-wide safeness gauges from device snapshots (E20 integration).

    The confrontation scenario's ``batch_safeness`` opt-in builds one of
    these; each :meth:`sample` call scores every device vector in a
    single vectorized pass (or a counted scalar fallback) and publishes
    ``<prefix>.mean`` / ``<prefix>.min`` / ``<prefix>.bad`` gauges to the
    metrics registry, where the E20 health monitor and the Prometheus
    exposition already pick gauges up.
    """

    def __init__(self, classifier: SafenessClassifier, space: StateSpace,
                 metrics, prefix: str = "fleet.safeness", np_module=None):
        self.classifier = classifier
        self.space = space
        self.metrics = metrics
        self.prefix = prefix
        self.np = np_module if np_module is not None else _np
        self.samples = 0
        self.vectorized_samples = 0
        self.fallback_samples = 0
        self.fallback_reasons: dict = {}
        self._compiled: Optional[BatchSafeness] = None
        self._compile_reason: Optional[str] = None
        try:
            self._compiled = compile_safeness(classifier, space, self.np)
        except BatchCompileError as exc:
            self._compile_reason = exc.reason

    def _count_fallback(self, reason: str) -> None:
        self.fallback_samples += 1
        self.fallback_reasons[reason] = self.fallback_reasons.get(reason, 0) + 1
        self.metrics.counter(f"{self.prefix}.fallback").inc()

    def sample(self, vectors) -> dict:
        """Score ``vectors`` (state-vector dicts); publish + return stats."""
        vectors = list(vectors)
        self.samples += 1
        bad_below = self.classifier.bad_below
        if self._compiled is not None and vectors:
            matrix = StateMatrix.from_rows(self.space, vectors, self.np)
            scores = self._compiled.safeness(matrix.columns, matrix.n_rows)
            mean = float(scores.mean())
            low = float(scores.min())
            bad = int((scores < bad_below).sum())
            self.vectorized_samples += 1
        else:
            if self._compile_reason is not None:
                self._count_fallback(self._compile_reason)
            scores_list = [self.classifier.safeness(v) for v in vectors]
            if scores_list:
                mean = sum(scores_list) / len(scores_list)
                low = min(scores_list)
                bad = sum(1 for s in scores_list if s < bad_below)
            else:
                mean, low, bad = 1.0, 1.0, 0
        self.metrics.gauge(f"{self.prefix}.mean").set(mean)
        self.metrics.gauge(f"{self.prefix}.min").set(low)
        self.metrics.gauge(f"{self.prefix}.bad").set(bad)
        return {"mean": mean, "min": low, "bad": bad,
                "devices": len(vectors)}

    def stats(self) -> dict:
        return {
            "samples": self.samples,
            "vectorized": self.vectorized_samples,
            "fallbacks": self.fallback_samples,
            "fallback_reasons": dict(self.fallback_reasons),
            "compiled": self._compiled is not None,
            "compile_reason": self._compile_reason,
        }
