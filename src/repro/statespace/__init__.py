"""State-space analysis: classifiers, preferences, risk, break-glass, reachability.

Implements the paper's section V state model (good / neutral / bad states
with a safeness metric) and the section VI-B support machinery: state
preference ontologies (ref [14]), risk estimation, break-glass rules
(ref [12]), and next-state anticipation.
"""

from repro.statespace.batch import (
    BatchCompileError,
    BatchSafeness,
    BatchSafenessSampler,
    StateMatrix,
    compile_safeness,
    numpy_available,
)
from repro.statespace.breakglass import BreakGlassController, BreakGlassGrant, BreakGlassRule
from repro.statespace.classifier import (
    BoxClassifier,
    BoxRegion,
    CompositeClassifier,
    FunctionClassifier,
    SafenessClassifier,
    ThresholdBand,
    ThresholdClassifier,
)
from repro.statespace.estimation import (
    NoisyChannel,
    StateEstimator,
    estimated_state_reader,
)
from repro.statespace.preferences import StatePreferenceOntology
from repro.statespace.reachability import ReachabilityAnalyzer, ReachableState
from repro.statespace.risk import RiskEstimator, RiskFactor

__all__ = [
    "BatchCompileError",
    "BatchSafeness",
    "BatchSafenessSampler",
    "BoxClassifier",
    "BoxRegion",
    "BreakGlassController",
    "BreakGlassGrant",
    "BreakGlassRule",
    "CompositeClassifier",
    "FunctionClassifier",
    "NoisyChannel",
    "ReachabilityAnalyzer",
    "ReachableState",
    "RiskEstimator",
    "RiskFactor",
    "SafenessClassifier",
    "StateEstimator",
    "StateMatrix",
    "StatePreferenceOntology",
    "ThresholdBand",
    "ThresholdClassifier",
    "compile_safeness",
    "estimated_state_reader",
    "numpy_available",
]
