"""State inference from noisy observation (paper sec V, ref [10]).

"This requires the devices to be able to automatically detect their
current states ... There is today a lot of technology that would make this
possible; see for example the use of a vision analytics approach to
support automatic state inference for helicopters."

In the field, a watchdog (or the device itself) often cannot read state
variables directly — it *observes* them through noisy, occasionally
dropping channels.  :class:`NoisyChannel` models that observation process;
:class:`StateEstimator` recovers per-variable estimates via exponential
filtering with residual-based outlier rejection, exposing a confidence
score so consumers (e.g. the sec VI-C watchdog) can refuse to act on
estimates that have not converged.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError
from repro.sim.rng import SeededRNG


class NoisyChannel:
    """Observes a device's numeric state through noise and dropouts.

    ``noise_sigma`` is the standard deviation of additive Gaussian noise;
    ``dropout`` the probability a variable is missing from an observation
    (occlusion, packet loss).  Deterministic per seed.
    """

    def __init__(self, rng: SeededRNG, noise_sigma: float = 1.0,
                 dropout: float = 0.0):
        if noise_sigma < 0:
            raise ConfigurationError("noise_sigma must be non-negative")
        if not 0.0 <= dropout < 1.0:
            raise ConfigurationError("dropout must be in [0, 1)")
        self._rng = rng
        self.noise_sigma = noise_sigma
        self.dropout = dropout

    def observe(self, vector: dict) -> dict:
        """A noisy partial view of the numeric variables in ``vector``."""
        observation = {}
        for name in sorted(vector):
            value = vector[name]
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            if self._rng.chance(self.dropout):
                continue
            observation[name] = float(value) + self._rng.gauss(
                0.0, self.noise_sigma)
        return observation


@dataclass
class _VariableEstimate:
    value: float
    variance: float
    observations: int


class StateEstimator:
    """Per-variable exponential filtering with outlier rejection.

    Each update folds an observation in with weight ``alpha``; observations
    more than ``outlier_sigmas`` standard deviations (of the running
    residual spread) from the estimate are rejected — a deception-resistant
    default consistent with sec VI-B's trustworthy-data requirement.  A
    genuine regime change (the variable really did jump) produces
    *consecutive* outliers; after ``outlier_override`` of them in a row the
    estimator accepts the new level and re-inflates its variance, so a
    single spoofed reading is ignored but a persistent real change is
    tracked.
    """

    def __init__(self, alpha: float = 0.3, outlier_sigmas: float = 4.0,
                 min_observations: int = 3, outlier_override: int = 3):
        if not 0.0 < alpha <= 1.0:
            raise ConfigurationError("alpha must be in (0, 1]")
        if outlier_override < 1:
            raise ConfigurationError("outlier_override must be >= 1")
        self.alpha = alpha
        self.outlier_sigmas = outlier_sigmas
        self.min_observations = min_observations
        self.outlier_override = outlier_override
        self._estimates: dict[str, _VariableEstimate] = {}
        self._consecutive_outliers: dict[str, int] = {}
        self.rejected = 0

    def update(self, observation: dict) -> dict:
        """Fold one (partial) observation in; returns the current estimates."""
        for name, value in observation.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            current = self._estimates.get(name)
            if current is None:
                self._estimates[name] = _VariableEstimate(
                    value=float(value), variance=1.0, observations=1,
                )
                continue
            residual = float(value) - current.value
            spread = math.sqrt(max(current.variance, 1e-9))
            if (current.observations >= self.min_observations
                    and abs(residual) > self.outlier_sigmas * spread):
                streak = self._consecutive_outliers.get(name, 0) + 1
                self._consecutive_outliers[name] = streak
                if streak < self.outlier_override:
                    self.rejected += 1
                    continue
                # Persistent outliers = a real regime change: re-seed.
                current.value = float(value)
                current.variance = max(current.variance, residual * residual
                                       * self.alpha)
                current.observations += 1
                self._consecutive_outliers[name] = 0
                continue
            self._consecutive_outliers[name] = 0
            current.value += self.alpha * residual
            current.variance = ((1 - self.alpha) * current.variance
                                + self.alpha * residual * residual)
            current.observations += 1
        return self.estimate()

    def estimate(self) -> dict:
        return {name: est.value for name, est in self._estimates.items()}

    def get(self, name: str) -> Optional[float]:
        est = self._estimates.get(name)
        return est.value if est is not None else None

    def confidence(self, name: str) -> float:
        """0..1: how settled the estimate is (observation count + spread)."""
        est = self._estimates.get(name)
        if est is None or est.observations < self.min_observations:
            return 0.0
        settled = min(1.0, est.observations / (3.0 * self.min_observations))
        tightness = 1.0 / (1.0 + math.sqrt(max(est.variance, 0.0)))
        return settled * tightness

    def converged(self, names, minimum_confidence: float = 0.2) -> bool:
        return all(self.confidence(name) >= minimum_confidence
                   for name in names)


def estimated_state_reader(device, channel: NoisyChannel,
                           estimator: StateEstimator):
    """A drop-in replacement for direct state reads.

    Returns a zero-argument callable producing the estimator's current
    view of the device (falling back to the last estimate for dropped
    variables).  Wire it into a watchdog to exercise sec VI-C under
    realistic observation instead of godlike state access.
    """

    def read() -> dict:
        estimator.update(channel.observe(device.state.snapshot()))
        merged = device.state.snapshot()
        for name, value in estimator.estimate().items():
            merged[name] = value
        return merged

    return read
