"""Risk estimation (paper sec VI-B).

"The use of a state preference ontology would work particularly well when
combined with risk estimation techniques in that it would allow devices to
make a more articulated decision about which next state to move to."

A :class:`RiskEstimator` combines weighted :class:`RiskFactor` s — each an
application-dependent function of the state vector and a context dict
("reliable and up-to-date information about the context") — into a scalar
risk in [0, 1].  It can also score candidate actions by the risk of their
predicted successor states.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class RiskFactor:
    """One application-dependent contributor to total risk.

    ``fn(vector, context) -> [0, 1]``.  ``weight`` scales its share of the
    aggregate.  The paper stresses these "may be very specialized not only
    for specific applications but also for specific situations" — hence
    the free-form context dict.
    """

    name: str
    fn: Callable[[dict, dict], float]
    weight: float = 1.0
    description: str = ""

    def __post_init__(self):
        if self.weight < 0:
            raise ConfigurationError(f"risk factor {self.name!r}: negative weight")

    def score(self, vector: dict, context: dict) -> float:
        raw = float(self.fn(vector, context))
        return min(1.0, max(0.0, raw))


class RiskEstimator:
    """Weighted aggregation of risk factors."""

    def __init__(self, factors: Iterable[RiskFactor] = ()):
        self.factors: list[RiskFactor] = list(factors)

    def add(self, factor: RiskFactor) -> None:
        self.factors.append(factor)

    def estimate(self, vector: dict, context: Optional[dict] = None) -> float:
        """Total risk in [0, 1]: weighted mean of factor scores."""
        context = context or {}
        if not self.factors:
            return 0.0
        total_weight = sum(factor.weight for factor in self.factors)
        if total_weight == 0:
            return 0.0
        weighted = sum(
            factor.weight * factor.score(vector, context) for factor in self.factors
        )
        return weighted / total_weight

    def breakdown(self, vector: dict, context: Optional[dict] = None) -> dict:
        """Per-factor scores, for audit records and explanations."""
        context = context or {}
        return {factor.name: factor.score(vector, context) for factor in self.factors}

    def rank_states(self, candidates: Sequence[dict],
                    context: Optional[dict] = None) -> list[tuple[float, dict]]:
        """Candidates as (risk, vector) pairs, lowest risk first (stable)."""
        scored = [
            (self.estimate(vector, context), index, vector)
            for index, vector in enumerate(candidates)
        ]
        scored.sort(key=lambda item: (item[0], item[1]))
        return [(risk, vector) for risk, _index, vector in scored]


# -- commonly useful factors --------------------------------------------------

def humans_nearby_factor(radius_key: str = "humans_within_radius",
                         saturation: int = 3) -> RiskFactor:
    """Risk grows with the number of humans reported near the device."""

    def fn(vector: dict, context: dict) -> float:
        count = context.get(radius_key, 0)
        return min(1.0, count / float(saturation))

    return RiskFactor(name="humans_nearby", fn=fn,
                      description="more humans in range = more risk")


def variable_excess_factor(variable: str, safe_limit: float,
                           hard_limit: float, weight: float = 1.0) -> RiskFactor:
    """Risk rises linearly as ``variable`` exceeds its safe limit."""
    if hard_limit <= safe_limit:
        raise ConfigurationError("hard_limit must exceed safe_limit")

    def fn(vector: dict, context: dict) -> float:
        value = vector.get(variable)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            return 0.0
        if value <= safe_limit:
            return 0.0
        return min(1.0, (value - safe_limit) / (hard_limit - safe_limit))

    return RiskFactor(name=f"excess:{variable}", fn=fn, weight=weight)


def irreversibility_factor(flag_key: str = "action_irreversible",
                           weight: float = 0.5) -> RiskFactor:
    """Irreversible pending actions add fixed risk (context-supplied flag)."""

    def fn(vector: dict, context: dict) -> float:
        return 1.0 if context.get(flag_key) else 0.0

    return RiskFactor(name="irreversibility", fn=fn, weight=weight)
