"""State preference ontology (paper sec VI-B, ref [14]).

"A state preference ontology organizes the possible states of a device
into an ontology based on a preference relationship.  Organizing the set
of bad states into such an ontology allows a device, which has to decide
between two bad states, to select the 'less bad' state."

The canonical example from the paper: losing human life is worse than
starting a fire, so a device forced to choose enters the fire state.

Categories are labels assigned to states by a labelling function; the
ontology is a DAG of ``preferred_over`` edges among categories, from which
a total severity rank is derived by longest-path layering.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence

import networkx as nx

from repro.errors import ConfigurationError


class StatePreferenceOntology:
    """A DAG of 'this category of state is preferable to that one'."""

    def __init__(self) -> None:
        self._graph = nx.DiGraph()
        self._rank_cache: Optional[dict] = None

    def add_category(self, label: str, description: str = "") -> None:
        self._graph.add_node(label, description=description)
        self._rank_cache = None

    def prefer(self, better: str, worse: str) -> None:
        """Declare that states labelled ``better`` are preferable to ``worse``."""
        if better == worse:
            raise ConfigurationError(f"category {better!r} cannot be preferred to itself")
        self._graph.add_edge(better, worse)
        if not nx.is_directed_acyclic_graph(self._graph):
            self._graph.remove_edge(better, worse)
            raise ConfigurationError(
                f"preference {better!r} > {worse!r} would create a cycle"
            )
        self._rank_cache = None

    def categories(self) -> list[str]:
        return sorted(self._graph.nodes)

    def is_preferred(self, a: str, b: str) -> bool:
        """True when a is (transitively) preferred to b."""
        if a not in self._graph or b not in self._graph:
            return False
        return nx.has_path(self._graph, a, b) and a != b

    def comparable(self, a: str, b: str) -> bool:
        return a == b or self.is_preferred(a, b) or self.is_preferred(b, a)

    def severity_rank(self) -> dict:
        """Map category -> integer severity (0 = most preferred).

        Computed by longest-path layering over the DAG, so a category's
        rank strictly exceeds every category preferred to it.  Categories
        in disconnected components rank relative to their own roots.
        """
        if self._rank_cache is None:
            rank: dict[str, int] = {}
            for node in nx.topological_sort(self._graph):
                preds = list(self._graph.predecessors(node))
                rank[node] = 0 if not preds else 1 + max(rank[p] for p in preds)
            self._rank_cache = rank
        return dict(self._rank_cache)

    def least_bad(
        self,
        candidates: Sequence[dict],
        labeler: Callable[[dict], str],
        tie_break: Optional[Callable[[dict], float]] = None,
    ) -> dict:
        """Choose among candidate (bad) states the least-severe one.

        ``labeler`` maps a state vector to an ontology category.  Unlisted
        categories are treated as maximally severe (unknown harm is assumed
        worst — fail closed).  ``tie_break`` (lower wins) disambiguates
        same-rank candidates; by default the first candidate wins, keeping
        selection deterministic.
        """
        if not candidates:
            raise ConfigurationError("least_bad requires at least one candidate")
        rank = self.severity_rank()
        worst = (max(rank.values()) + 1) if rank else 0

        def key(indexed: tuple) -> tuple:
            index, vector = indexed
            label = labeler(vector)
            severity = rank.get(label, worst)
            secondary = tie_break(vector) if tie_break is not None else 0.0
            return (severity, secondary, index)

        return min(enumerate(candidates), key=key)[1]

    def order_labels(self, labels: Iterable[str]) -> list[str]:
        """Sort labels best-first by severity rank (unknowns last)."""
        rank = self.severity_rank()
        worst = (max(rank.values()) + 1) if rank else 0
        return sorted(labels, key=lambda label: (rank.get(label, worst), label))


def default_military_ontology() -> StatePreferenceOntology:
    """The paper's worked example, extended to the coalition domain.

    Severity ordering (best to worst): nominal < degraded < property-damage
    < fire < human-injury < human-life-loss.  "most likely the former
    [loss of human life] will be the worse bad state and thus the device
    would go into the state that would... start[] a fire."
    """
    ontology = StatePreferenceOntology()
    for label in ("nominal", "degraded", "property_damage", "fire",
                  "human_injury", "human_life_loss"):
        ontology.add_category(label)
    ontology.prefer("nominal", "degraded")
    ontology.prefer("degraded", "property_damage")
    ontology.prefer("property_damage", "fire")
    ontology.prefer("fire", "human_injury")
    ontology.prefer("human_injury", "human_life_loss")
    return ontology
