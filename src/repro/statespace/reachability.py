"""Next-state anticipation via bounded reachability analysis (paper sec V).

"This requires the devices to be able to automatically detect their
current states and possibly anticipate the potential next states."

Given the current state vector, an action library, and a safeness
classifier, :class:`ReachabilityAnalyzer` explores the states reachable
within ``depth`` actions (using each action's *declared* effects) and
reports which action sequences lead into bad states.  The state-space
safeguard uses depth-1 anticipation on its fast path and deeper lookahead
for the paper's "dangerous... sequences of states with some cumulative
effects" concern.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.core.actions import Action
from repro.statespace.classifier import SafenessClassifier
from repro.types import Safeness


def _freeze(vector: dict, precision: int = 9) -> tuple:
    """A hashable, float-rounded key for a state vector."""
    items = []
    for name in sorted(vector):
        value = vector[name]
        if isinstance(value, float):
            value = round(value, precision)
        items.append((name, value))
    return tuple(items)


@dataclass
class ReachableState:
    """One node discovered during exploration."""

    vector: dict
    depth: int
    path: tuple  # action names from the root
    safeness: float
    classification: Safeness
    children: list = field(default_factory=list)


class ReachabilityAnalyzer:
    """Bounded breadth-first exploration of the declared-effect transition graph."""

    def __init__(self, actions: Iterable[Action], classifier: SafenessClassifier,
                 max_states: int = 10000):
        self.actions = [action for action in actions if not action.is_noop]
        self.classifier = classifier
        self.max_states = max_states

    def _successor(self, vector: dict, action: Action) -> Optional[dict]:
        changes = action.predicted_changes(vector)
        if not changes:
            return None  # action is a state no-op from here
        successor = dict(vector)
        successor.update(changes)
        return successor

    def explore(self, root_vector: dict, depth: int) -> ReachableState:
        """Explore up to ``depth`` actions ahead; returns the rooted tree.

        Previously-seen state vectors are not re-expanded (graph search),
        so cyclic effect structures terminate.  Exploration also stops at
        bad states — the question is whether we *reach* them, not what
        lies beyond.
        """
        root = ReachableState(
            vector=dict(root_vector),
            depth=0,
            path=(),
            safeness=self.classifier.safeness(root_vector),
            classification=self.classifier.classify(root_vector),
        )
        seen = {_freeze(root_vector)}
        frontier = [root]
        states_visited = 1
        while frontier and states_visited < self.max_states:
            next_frontier = []
            for node in frontier:
                if node.depth >= depth or node.classification == Safeness.BAD:
                    continue
                for action in self.actions:
                    successor = self._successor(node.vector, action)
                    if successor is None:
                        continue
                    key = _freeze(successor)
                    if key in seen:
                        continue
                    seen.add(key)
                    child = ReachableState(
                        vector=successor,
                        depth=node.depth + 1,
                        path=node.path + (action.name,),
                        safeness=self.classifier.safeness(successor),
                        classification=self.classifier.classify(successor),
                    )
                    node.children.append(child)
                    next_frontier.append(child)
                    states_visited += 1
                    if states_visited >= self.max_states:
                        break
                if states_visited >= self.max_states:
                    break
            frontier = next_frontier
        return root

    def bad_paths(self, root_vector: dict, depth: int) -> list[tuple]:
        """Action-name sequences (within ``depth``) that end in a bad state."""
        paths = []

        def walk(node: ReachableState) -> None:
            if node.classification == Safeness.BAD and node.path:
                paths.append(node.path)
                return
            for child in node.children:
                walk(child)

        walk(self.explore(root_vector, depth))
        return paths

    def safe_actions(self, root_vector: dict, depth: int = 1) -> list[str]:
        """Actions whose entire reachable sub-tree (to ``depth``) avoids bad states.

        Depth 1 is the plain sec VI-B check; higher depths implement the
        "cumulative effects" lookahead.
        """
        root = self.explore(root_vector, depth)
        safe = []
        for child in root.children:
            if not self._subtree_has_bad(child):
                safe.append(child.path[0])
        return safe

    def min_steps_to_bad(self, root_vector: dict, depth: int) -> Optional[int]:
        """Length of the shortest bad path within ``depth``, else ``None``."""
        paths = self.bad_paths(root_vector, depth)
        return min((len(path) for path in paths), default=None)

    @staticmethod
    def _subtree_has_bad(node: ReachableState) -> bool:
        if node.classification == Safeness.BAD:
            return True
        return any(ReachabilityAnalyzer._subtree_has_bad(child)
                   for child in node.children)
