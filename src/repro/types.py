"""Shared enums and type aliases used across the library."""

from __future__ import annotations

import enum
from typing import Union

#: A state-variable value.  The paper's state model (sec V) treats state as a
#: vector of attribute values; we support the scalar types that appear in the
#: paper's examples (configuration parameters, thresholds, flags, labels).
Value = Union[int, float, bool, str]

#: Mapping of variable name to value — a point in the state space.
StateVector = dict


class Safeness(enum.IntEnum):
    """Classification of a state per the paper's sec V.

    The integer ordering matters: ``BAD < NEUTRAL < GOOD`` so the enum
    itself induces the coarse partial order the paper describes ("the
    safeness metric would induce a partial ordering on the set of states").
    """

    BAD = 0
    NEUTRAL = 1
    GOOD = 2


class DeviceStatus(enum.Enum):
    """Lifecycle of a managed device."""

    ACTIVE = "active"
    DEGRADED = "degraded"       # needs repair; still allowed to act
    DEACTIVATED = "deactivated"  # killed by the sec VI-C watchdog
    COMPROMISED = "compromised"  # internally flagged by attack injection
    RETIRED = "retired"


class ActionOutcome(enum.Enum):
    """What the engine did with a policy-selected action."""

    EXECUTED = "executed"
    VETOED = "vetoed"            # a safeguard refused it
    SUBSTITUTED = "substituted"  # an alternative safe action ran instead
    NOOP = "noop"                # no applicable action / deliberate no-op
    FAILED = "failed"            # actuator raised


class HarmKind(enum.Enum):
    """How an action can harm a human (sec VI-A)."""

    DIRECT = "direct"      # the action itself injures a human
    INDIRECT = "indirect"  # a hazard left behind injures a human later
    AGGREGATE = "aggregate"  # collective effect of individually-safe actions


class Branch(enum.Enum):
    """The three governance collectives of sec VI-E."""

    EXECUTIVE = "executive"
    LEGISLATIVE = "legislative"
    JUDICIARY = "judiciary"


class ThreatChannel(enum.Enum):
    """The sec IV mechanisms by which malevolence can creep in."""

    LEARNING_MISTAKE = "learning_mistake"
    CYBER_ATTACK = "cyber_attack"
    ADVERSARIAL_ML = "adversarial_ml"
    BACKDOOR = "backdoor"
    EMULATION = "inappropriate_emulation"
    MALICIOUS_ACTOR = "malicious_actor"
    HUMAN_ERROR = "human_error"


class Verdict(enum.Enum):
    """Outcome of a governance or audit review."""

    APPROVE = "approve"
    REJECT = "reject"
    ESCALATE = "escalate"
