"""Simulated stable storage: the medium crashes cannot erase.

A :class:`StableStorage` holds named byte blobs standing in for the
flash/disk a real device journals to.  The fault layer's contract is the
whole point of the abstraction: a :class:`~repro.sim.faults.DeviceCrash`
wipes a device's *volatile* (in-process) state but never touches this
object, so whatever a component pushed through a
:class:`~repro.store.journal.Journal` before the crash is still there
when the restart path replays it.

The only faults that reach stable storage are the explicit
:class:`~repro.sim.faults.JournalCorruption` specs (torn tails and bit
flips), applied through :meth:`corrupt_tail` — the failure modes real
write-ahead logs must survive, and the reason the journal frames every
record with a CRC.
"""

from __future__ import annotations

from repro.errors import StorageError


class StableStorage:
    """Named append-only byte blobs that survive simulated crashes."""

    def __init__(self) -> None:
        self._blobs: dict[str, bytearray] = {}
        self.appends = 0
        self.bytes_written = 0

    # -- basic blob IO ---------------------------------------------------------

    def append(self, name: str, data: bytes) -> None:
        """Append ``data`` to blob ``name`` (created on first write)."""
        blob = self._blobs.get(name)
        if blob is None:
            blob = self._blobs[name] = bytearray()
        blob.extend(data)
        self.appends += 1
        self.bytes_written += len(data)

    def write(self, name: str, data: bytes) -> None:
        """Replace blob ``name`` wholesale (snapshot/compaction writes)."""
        self._blobs[name] = bytearray(data)
        self.appends += 1
        self.bytes_written += len(data)

    def read(self, name: str) -> bytes:
        """The blob's current contents (empty for a never-written name)."""
        blob = self._blobs.get(name)
        return bytes(blob) if blob is not None else b""

    def exists(self, name: str) -> bool:
        return name in self._blobs

    def delete(self, name: str) -> None:
        self._blobs.pop(name, None)

    def names(self, prefix: str = "") -> list[str]:
        """Blob names, optionally filtered by ``prefix`` (sorted)."""
        return sorted(name for name in self._blobs if name.startswith(prefix))

    def size(self, name: str) -> int:
        blob = self._blobs.get(name)
        return len(blob) if blob is not None else 0

    def truncate(self, name: str, length: int) -> None:
        """Cut blob ``name`` down to its first ``length`` bytes."""
        blob = self._blobs.get(name)
        if blob is None:
            raise StorageError(f"no blob named {name!r} to truncate")
        if length < 0 or length > len(blob):
            raise StorageError(
                f"cannot truncate {name!r} ({len(blob)} bytes) to {length}"
            )
        del blob[length:]

    # -- fault hooks -----------------------------------------------------------

    def corrupt_tail(self, name: str, drop_bytes: int = 0,
                     flip_bit: int | None = None) -> dict:
        """Damage the end of blob ``name`` the way interrupted writes do.

        ``drop_bytes`` removes that many bytes from the tail (a torn
        write); ``flip_bit`` flips one bit counted from the blob's end (a
        media error near the write head).  Both are clamped to the blob's
        actual size; returns what was done for the fault trace.
        """
        blob = self._blobs.get(name)
        if blob is None or not blob:
            return {"dropped": 0, "flipped": None}
        dropped = min(max(0, drop_bytes), len(blob))
        if dropped:
            del blob[len(blob) - dropped:]
        flipped = None
        if flip_bit is not None and blob:
            offset = len(blob) - 1 - min(flip_bit // 8, len(blob) - 1)
            blob[offset] ^= 1 << (flip_bit % 8)
            flipped = offset
        return {"dropped": dropped, "flipped": flipped}
