"""Append-only write-ahead journal with CRC-framed records.

Each record is one length-prefixed, CRC32-guarded frame holding a
canonical-JSON payload plus its sequence number::

    +----------+----------+------------------+
    | length   | crc32    | payload bytes    |
    | 4B big-e | 4B big-e | ``length`` bytes |
    +----------+----------+------------------+

Replay (:meth:`Journal.replay`) walks the frames front to back and stops
at the first one that cannot be trusted — a header promising more bytes
than remain (torn write) or a CRC/decode/sequence mismatch (bit rot,
corruption) — then truncates the blob back to the last good frame, so a
damaged tail can never poison a later append.  The CRC catches
*accidental* damage; deliberate tampering with a recomputed CRC is the
hash chain's job (:meth:`repro.audit.log.AuditLog.recover` re-verifies).

A journal can pair with a snapshot blob (``<name>.snap``): `
:meth:`snapshot` persists a full state dict stamped with the sequence
number it covers and compacts the journal down to the frames after it,
so recovery is one snapshot load plus a short tail replay instead of a
full-history walk.

Durability is per-append by default (``flush_every=1``).  A larger
``flush_every`` batches frames in volatile memory — faster, but a crash
discards the unflushed tail (:meth:`drop_volatile` models exactly that),
which is how "journaled" and "lost in the crash" can differ even for a
journal-backed component.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import StorageError
from repro.store.stable import StableStorage

_HEADER = struct.Struct(">II")        # (payload length, payload crc32)

#: Suffix of the snapshot blob paired with a journal blob.
SNAPSHOT_SUFFIX = ".snap"


def _encode(payload: dict) -> bytes:
    """Canonical JSON bytes (sorted keys, no whitespace drift)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"),
                      default=str).encode("utf-8")


def _frame(payload: dict) -> bytes:
    body = _encode(payload)
    return _HEADER.pack(len(body), zlib.crc32(body)) + body


@dataclass(frozen=True)
class JournalRecord:
    """One replayed record: its sequence number and payload dict."""

    seq: int
    payload: dict


@dataclass
class ReplayReport:
    """What a replay found (and repaired) in one journal blob."""

    records: int = 0                  # good frames decoded
    snapshot_seq: Optional[int] = None
    torn_bytes: int = 0               # bytes truncated off the tail
    corrupt_frame: bool = False       # truncation was CRC/decode, not torn
    truncated: bool = False
    detail: dict = field(default_factory=dict)


class Journal:
    """A named write-ahead journal on a :class:`StableStorage`."""

    def __init__(self, storage: StableStorage, name: str,
                 flush_every: int = 1, tracer=None):
        """``tracer`` (a :class:`~repro.telemetry.spans.Tracer`) annotates
        appends that happen *inside an active causal context* with a
        ``store.append`` span — journal writes triggered by a traced
        decision or intervention then show up in its explanation.  Appends
        outside any context (and all appends when no tracer is given) add
        nothing."""
        if flush_every < 1:
            raise StorageError("flush_every must be >= 1")
        self.storage = storage
        self.name = name
        self.flush_every = flush_every
        self.tracer = tracer
        self._buffer: list[bytes] = []
        self._next_seq = 1
        self._flushed_records = 0
        self.snapshot_seq: Optional[int] = None
        # The sequence number the first frame of the blob must carry, per
        # this journal's own accounting (``None`` only while a cold open
        # is still learning it from the blob itself).  Scans anchor on it
        # so storage damage can never make later appends replay as a
        # bogus suffix of history — see :meth:`recover`.
        self._blob_first_seq: Optional[int] = None
        # Resuming over an existing blob continues its sequence.
        if storage.exists(name) or storage.exists(name + SNAPSHOT_SUFFIX):
            self.recover()
        else:
            self._blob_first_seq = 1

    # -- writing ---------------------------------------------------------------

    def append(self, payload: dict) -> int:
        """Frame ``payload`` and stage it; returns its sequence number.

        The frame reaches stable storage immediately when ``flush_every``
        is 1 (the default), otherwise when the buffer fills or
        :meth:`flush` is called.
        """
        seq = self._next_seq
        self._next_seq += 1
        self._buffer.append(_frame({"seq": seq, **payload}))
        if len(self._buffer) >= self.flush_every:
            self.flush()
        tracer = self.tracer
        if tracer is not None and tracer.current is not None:
            # Guard on ``current`` (never materialize a lazy root): only
            # appends already inside a real trace annotate it.
            tracer.start_span("store.append", self.name,
                              parent=tracer.current, seq=seq)
        return seq

    def flush(self) -> int:
        """Push every buffered frame to stable storage; returns the count."""
        flushed = len(self._buffer)
        if flushed:
            self.storage.append(self.name, b"".join(self._buffer))
            self._buffer.clear()
            self._flushed_records += flushed
        return flushed

    @property
    def unflushed(self) -> int:
        """Frames still in volatile memory (lost if the device crashes now)."""
        return len(self._buffer)

    @property
    def flushed_records(self) -> int:
        """Frames known durable (what a crash provably cannot erase)."""
        return self._flushed_records

    def drop_volatile(self) -> int:
        """Crash semantics: discard the unflushed buffer; returns the loss."""
        lost = len(self._buffer)
        self._buffer.clear()
        return lost

    # -- snapshots -------------------------------------------------------------

    def snapshot(self, state: dict, seq: Optional[int] = None) -> int:
        """Persist ``state`` as of ``seq`` (default: last appended) and
        compact the journal to the frames after it."""
        self.flush()
        upto = self._next_seq - 1 if seq is None else seq
        self.storage.write(self.name + SNAPSHOT_SUFFIX,
                           _frame({"seq": upto, "state": state}))
        keep = [record
                for record in self._scan(self._blob_first_seq)[0]
                if record.seq > upto]
        self.storage.write(self.name,
                           b"".join(_frame({"seq": record.seq, **record.payload})
                                    for record in keep))
        self._flushed_records = len(keep)
        self.snapshot_seq = upto
        self._blob_first_seq = keep[0].seq if keep else self._next_seq
        return upto

    @property
    def durable_records(self) -> int:
        """Records a crash provably cannot erase: the frames flushed to
        stable storage plus whatever the snapshot covers (valid for the
        common one-record-per-sequence usage, where ``seq`` counts
        appends)."""
        return (self.snapshot_seq or 0) + self._flushed_records

    # -- recovery --------------------------------------------------------------

    def _scan(self, expected_first: Optional[int] = None,
              ) -> tuple[list[JournalRecord], ReplayReport]:
        """Decode trustworthy frames; truncate the blob past the last one.

        ``expected_first`` anchors the run: when given, the first frame
        must carry exactly that sequence number, otherwise the whole blob
        is distrusted.  Without it (a cold open of an unknown blob) any
        contiguous run is accepted — a sequence starting past 1 is then
        the *visible* mark of a compaction whose snapshot was lost."""
        blob = self.storage.read(self.name)
        report = ReplayReport()
        records: list[JournalRecord] = []
        offset = 0
        good_end = 0
        while offset < len(blob):
            if offset + _HEADER.size > len(blob):
                break                               # torn mid-header
            length, crc = _HEADER.unpack_from(blob, offset)
            start = offset + _HEADER.size
            end = start + length
            if end > len(blob):
                break                               # torn mid-payload
            body = blob[start:end]
            if zlib.crc32(body) != crc:
                report.corrupt_frame = True
                break                               # bit rot from here on
            try:
                payload = json.loads(body.decode("utf-8"))
                seq = int(payload.pop("seq"))
            except (ValueError, KeyError, TypeError):
                report.corrupt_frame = True
                break
            expected = records[-1].seq + 1 if records else expected_first
            if expected is not None and seq != expected:
                report.corrupt_frame = True
                break                               # sequence gap: distrust
            records.append(JournalRecord(seq=seq, payload=payload))
            offset = end
            good_end = end
        if good_end < len(blob):
            report.truncated = True
            report.torn_bytes = len(blob) - good_end
            if self.storage.exists(self.name):
                self.storage.truncate(self.name, good_end)
        report.records = len(records)
        return records, report

    def _read_snapshot(self) -> Optional[dict]:
        """The snapshot payload, or ``None`` when absent or damaged.

        A damaged snapshot is discarded (recovery falls back to the full
        journal walk) rather than trusted.
        """
        name = self.name + SNAPSHOT_SUFFIX
        blob = self.storage.read(name)
        if len(blob) < _HEADER.size:
            return None
        length, crc = _HEADER.unpack_from(blob, 0)
        body = blob[_HEADER.size:_HEADER.size + length]
        if len(body) != length or zlib.crc32(body) != crc:
            self.storage.delete(name)
            return None
        try:
            return json.loads(body.decode("utf-8"))
        except ValueError:
            self.storage.delete(name)
            return None

    def recover(self) -> tuple[Optional[dict], list[JournalRecord], ReplayReport]:
        """(snapshot payload or None, post-snapshot records, report).

        Also realigns the journal's own accounting with the recovered
        reality — the next sequence number continues from the last
        trustworthy frame, so an append after a torn-tail truncation
        never leaves a sequence gap the next replay would distrust.

        A journal that already knows where its blob starts (it wrote or
        previously recovered it) additionally anchors the scan there, so
        storage damage that erases the front of the run can never make a
        later append replay as a bogus *suffix* of history: recovery is
        prefix-exact, a frame whose predecessors are gone is distrusted
        and truncated away.  Only a cold open (constructing a
        :class:`Journal` over an existing blob with no intact snapshot)
        accepts a run starting past sequence 1, because only there is
        the gap *visible* to the consumer instead of silently
        resequenced.
        """
        snapshot = self._read_snapshot()
        snap_seq = int(snapshot.get("seq", 0)) if snapshot is not None else None
        expected_first = self._blob_first_seq
        if expected_first is None and snap_seq is not None:
            expected_first = snap_seq + 1
        records, report = self._scan(expected_first)
        if snap_seq is not None:
            report.snapshot_seq = snap_seq
            records = [record for record in records if record.seq > snap_seq]
            report.records = len(records)
        self.snapshot_seq = snap_seq
        self._flushed_records = len(records)
        self._next_seq = (records[-1].seq if records else (snap_seq or 0)) + 1
        self._blob_first_seq = (records[0].seq if records else self._next_seq)
        return snapshot, records, report

    def replay(self) -> list[JournalRecord]:
        """Just the trustworthy post-snapshot records, oldest first."""
        return self.recover()[1]
