"""Directory-backed stable storage: the E18 journal contract on disk.

:class:`FileStorage` implements the :class:`~repro.store.stable.
StableStorage` surface over a real directory, one file per blob, so the
CRC-framed :class:`~repro.store.journal.Journal` (torn-tail truncation,
snapshot compaction, sequence anchoring) persists across *processes*,
not just across simulated crashes.  This is what the telemetry
warehouse (E24) journals into: an interrupted ingest leaves a torn tail
the next open truncates away, exactly like a device journal after a
power cut.

Write semantics mirror what the journal expects from flash:

* :meth:`append` is an ``O_APPEND``-mode write followed by a flush —
  the frame either lands whole or lands torn, and a torn tail is the
  journal's problem to detect (its CRC framing exists for this);
* :meth:`write` (snapshot/compaction replacement) goes through a
  temp file + ``os.replace`` so a crash mid-compaction leaves the
  previous blob intact, never a half-written one;
* blob names map to file names directly, so they must be simple
  (no path separators, no traversal).
"""

from __future__ import annotations

import os

from repro.errors import StorageError
from repro.store.stable import StableStorage

_FORBIDDEN = ("/", "\\", "\x00")


class FileStorage(StableStorage):
    """Named byte blobs as files under one directory."""

    def __init__(self, dirpath: str):
        super().__init__()
        self.dirpath = dirpath
        os.makedirs(dirpath, exist_ok=True)

    def _path(self, name: str) -> str:
        if not name or name in (".", "..") or any(
                sep in name for sep in _FORBIDDEN):
            raise StorageError(f"illegal blob name {name!r}")
        return os.path.join(self.dirpath, name)

    # -- basic blob IO ---------------------------------------------------------

    def append(self, name: str, data: bytes) -> None:
        with open(self._path(name), "ab") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        self.appends += 1
        self.bytes_written += len(data)

    def write(self, name: str, data: bytes) -> None:
        path = self._path(name)
        tmp = path + ".tmp"
        try:
            with open(tmp, "wb") as handle:
                handle.write(data)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.remove(tmp)
            raise
        self.appends += 1
        self.bytes_written += len(data)

    def read(self, name: str) -> bytes:
        path = self._path(name)
        if not os.path.exists(path):
            return b""
        with open(path, "rb") as handle:
            return handle.read()

    def exists(self, name: str) -> bool:
        return os.path.exists(self._path(name))

    def delete(self, name: str) -> None:
        path = self._path(name)
        if os.path.exists(path):
            os.remove(path)

    def names(self, prefix: str = "") -> list:
        return sorted(
            entry for entry in os.listdir(self.dirpath)
            if entry.startswith(prefix) and not entry.endswith(".tmp")
            and os.path.isfile(os.path.join(self.dirpath, entry))
        )

    def size(self, name: str) -> int:
        path = self._path(name)
        return os.path.getsize(path) if os.path.exists(path) else 0

    def truncate(self, name: str, length: int) -> None:
        path = self._path(name)
        if not os.path.exists(path):
            raise StorageError(f"no blob named {name!r} to truncate")
        current = os.path.getsize(path)
        if length < 0 or length > current:
            raise StorageError(
                f"cannot truncate {name!r} ({current} bytes) to {length}"
            )
        with open(path, "r+b") as handle:
            handle.truncate(length)

    # -- fault hooks -----------------------------------------------------------

    def corrupt_tail(self, name: str, drop_bytes: int = 0,
                     flip_bit=None) -> dict:
        """Same damage model as the in-memory storage, applied on disk
        (tests exercise recovery of a warehouse whose last ingest tore)."""
        path = self._path(name)
        if not os.path.exists(path) or os.path.getsize(path) == 0:
            return {"dropped": 0, "flipped": None}
        size = os.path.getsize(path)
        dropped = min(max(0, drop_bytes), size)
        if dropped:
            with open(path, "r+b") as handle:
                handle.truncate(size - dropped)
            size -= dropped
        flipped = None
        if flip_bit is not None and size:
            offset = size - 1 - min(flip_bit // 8, size - 1)
            with open(path, "r+b") as handle:
                handle.seek(offset)
                byte = handle.read(1)[0]
                handle.seek(offset)
                handle.write(bytes([byte ^ (1 << (flip_bit % 8))]))
            flipped = offset
        return {"dropped": dropped, "flipped": flipped}
