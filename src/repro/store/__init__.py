"""Durable storage: simulated stable media, write-ahead journal, recovery.

The paper's record-keeping is only "tamper-proof" if it also survives the
substrate: a hash chain that lives in process memory is erased by the
very crash an auditor would investigate.  This package provides the
durability layer — :class:`StableStorage` (the simulated medium crashes
preserve), :class:`Journal` (CRC-framed write-ahead records with
snapshots and torn-tail-truncating replay), and :class:`DurabilityManager`
(the crash-wipe / restart-recovery orchestration the fault layer drives).
"""

from repro.store.filestorage import FileStorage
from repro.store.journal import Journal, JournalRecord, ReplayReport, SNAPSHOT_SUFFIX
from repro.store.recovery import DurabilityManager
from repro.store.stable import StableStorage

__all__ = [
    "DurabilityManager",
    "FileStorage",
    "Journal",
    "JournalRecord",
    "ReplayReport",
    "SNAPSHOT_SUFFIX",
    "StableStorage",
]
