"""Crash-wipe and restart-recovery orchestration.

The simulator's fault layer models a crash as *amnesia*: everything a
device held in process memory is gone, and only what reached the
:class:`~repro.store.stable.StableStorage` survives.  Components opt in
by registering with a :class:`DurabilityManager` under their owning
device id, exposing two hooks:

* ``crash_volatile() -> dict`` — throw away in-memory state exactly as a
  power cut would, returning loss accounting (at least ``{"lost": n}``);
* ``recover() -> dict`` — rebuild from stable storage, returning replay
  accounting (at least ``{"replayed": n}``).

The manager is what the :class:`~repro.sim.faults.FaultInjector` calls on
the crash/restart path, and what the
:class:`~repro.sim.simulator.Supervisor` notifies when its ``kill-device``
policy takes a device down (a supervised kill is a crash as far as RAM is
concerned).  It aggregates the accounting into metrics and trace events —
including the previously *silent* loss of unjournaled audit entries,
which legacy journal-less runs now surface as ``audit.loss`` trace
records and the ``audit.entries_lost`` counter.

Recovery wall time lands in the ``store.recovery_seconds`` histogram
only; trace records carry deterministic facts alone, so recovered runs
still replay byte-identically.
"""

from __future__ import annotations

from time import perf_counter
from typing import Optional

from repro.store.stable import StableStorage


class DurabilityManager:
    """Registry of per-device durable components the fault layer drives."""

    def __init__(self, sim, storage: Optional[StableStorage] = None):
        self.sim = sim
        self.storage = storage if storage is not None else StableStorage()
        self._components: dict[str, list[tuple[str, object]]] = {}
        self.crashes_wiped = 0
        self.recoveries = 0

    def register(self, device_id: str, name: str, component) -> None:
        """Track ``component`` (duck-typed ``crash_volatile``/``recover``)
        as part of ``device_id``'s volatile footprint."""
        self._components.setdefault(device_id, []).append((name, component))

    def components(self, device_id: str) -> list[str]:
        return [name for name, _component in self._components.get(device_id, [])]

    # -- the two fault-path hooks ----------------------------------------------

    def crash(self, device_id: str) -> dict:
        """Wipe every registered component's volatile state; returns
        aggregated loss accounting."""
        losses: dict[str, int] = {}
        for name, component in self._components.get(device_id, []):
            accounting = component.crash_volatile()
            lost = int(accounting.get("lost", 0))
            losses[name] = lost
            if lost and accounting.get("kind") == "audit":
                # The satellite bugfix: audit loss used to vanish silently.
                self.sim.metrics.counter("audit.entries_lost").inc(lost)
                self.sim.record("audit.loss", device_id, component=name,
                                lost=lost,
                                journaled=bool(accounting.get("journaled")))
        if losses:
            self.crashes_wiped += 1
            self.sim.metrics.counter("store.crash_wipes").inc()
        return losses

    def restart(self, device_id: str) -> dict:
        """Recover every registered component from stable storage."""
        replays: dict[str, dict] = {}
        started = perf_counter()
        for name, component in self._components.get(device_id, []):
            accounting = component.recover()
            replays[name] = accounting
            self.sim.metrics.counter("store.recovered_records").inc(
                int(accounting.get("replayed", 0)))
            if accounting.get("gap"):
                self.sim.metrics.counter("store.recovery_gaps").inc()
        elapsed = perf_counter() - started
        if replays:
            self.recoveries += 1
            self.sim.metrics.counter("store.recoveries").inc()
            self.sim.metrics.histogram("store.recovery_seconds").observe(elapsed)
            self.sim.record(
                "store.recover", device_id,
                components={name: int(accounting.get("replayed", 0))
                            for name, accounting in sorted(replays.items())},
            )
        return replays

    # -- supervision wiring ----------------------------------------------------

    def attach_supervisor(self, supervisor) -> None:
        """Make supervised ``kill-device`` terminations count as crashes."""
        supervisor.add_kill_listener(lambda owner: self.crash(owner))
