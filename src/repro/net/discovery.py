"""Dynamic device discovery (paper sec IV).

"Based on these two classes of information, devices discover other devices
in the system and decide on the policies to be used in their interaction
with those devices."  The generative-policy attribute list also calls the
system "Networked: ... a networked set of devices, with dynamic discovery."

Devices announce themselves periodically over the network; the service
maintains a registry per observer (what *that device* can currently see,
honouring topology/partitions) and invokes discovery callbacks exactly
once per newly visible (observer, discovered) pair — those callbacks are
where generative policy instantiation hooks in.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.net.message import Message
from repro.net.network import Network
from repro.sim.simulator import Simulator

#: callback(observer_id, discovered_record) — record is the describe() dict.
DiscoveryCallback = Callable[[str, dict], None]

_DISCOVERY_TOPIC = "discovery.announce"


class DiscoveryService:
    """Announcement-based discovery over the network substrate."""

    def __init__(self, sim: Simulator, network: Network,
                 announce_interval: float = 5.0):
        self.sim = sim
        self.network = network
        self.announce_interval = announce_interval
        #: observer -> {device_id: record}
        self._seen: dict[str, dict] = {}
        self._callbacks: dict[str, list[DiscoveryCallback]] = {}
        self._describers: dict[str, Callable[[], dict]] = {}
        self._tasks: dict[str, object] = {}

    # -- participation -------------------------------------------------------------

    def join(self, device_id: str, describe: Callable[[], dict],
             on_discovery: Optional[DiscoveryCallback] = None) -> None:
        """Start announcing for ``device_id`` and listening for others.

        ``describe`` yields the announcement record (id, type, attributes);
        it is re-evaluated at every announcement so attribute changes
        propagate.  The caller must already have registered ``device_id``
        with the network and route ``net.discovery.announce`` messages to
        :meth:`handle_announcement`.
        """
        self._describers[device_id] = describe
        self._seen.setdefault(device_id, {})
        if on_discovery is not None:
            self._callbacks.setdefault(device_id, []).append(on_discovery)
        self._tasks[device_id] = self.sim.every(
            self.announce_interval, self._announce, device_id,
            start_after=self.sim.rng.stream("discovery").uniform(
                0.0, self.announce_interval),
            label=f"discovery:{device_id}",
        )
        # Announce immediately as well so joins are visible without a period lag.
        self._announce(device_id)

    def leave(self, device_id: str) -> None:
        task = self._tasks.pop(device_id, None)
        if task is not None:
            task.cancel()
        self._describers.pop(device_id, None)

    def subscribe(self, device_id: str, callback: DiscoveryCallback) -> None:
        self._callbacks.setdefault(device_id, []).append(callback)

    # -- protocol --------------------------------------------------------------------

    def _announce(self, device_id: str) -> None:
        describe = self._describers.get(device_id)
        if describe is None:
            return
        self.network.broadcast(device_id, _DISCOVERY_TOPIC, describe())

    def handle_announcement(self, observer_id: str, message: Message) -> None:
        """Process an inbound announcement at ``observer_id``."""
        record = dict(message.body)
        discovered_id = record.get("device_id")
        if not discovered_id or discovered_id == observer_id:
            return
        registry = self._seen.setdefault(observer_id, {})
        is_new = discovered_id not in registry
        registry[discovered_id] = record
        if is_new:
            self.sim.metrics.counter("discovery.new").inc()
            self.sim.record("discovery.new", observer_id, discovered=discovered_id,
                            device_type=record.get("device_type"))
            for callback in self._callbacks.get(observer_id, []):
                callback(observer_id, record)

    # -- queries ------------------------------------------------------------------------

    def visible_to(self, observer_id: str) -> dict:
        """{device_id: record} of everything the observer has discovered."""
        return dict(self._seen.get(observer_id, {}))

    def forget(self, observer_id: str, device_id: str) -> None:
        """Drop a device from an observer's registry (e.g. after deactivation)."""
        self._seen.get(observer_id, {}).pop(device_id, None)

    @staticmethod
    def is_announcement(message: Message) -> bool:
        return message.topic == _DISCOVERY_TOPIC
