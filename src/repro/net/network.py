"""The in-simulation message bus.

Delivers :class:`~repro.net.message.Message` objects between registered
handlers with configurable latency and loss, respecting a
:class:`~repro.net.topology.Topology`.  All timing flows through the
discrete-event simulator; all randomness through its seeded RNG, so runs
replay exactly.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import NetworkError
from repro.net.message import BROADCAST, Message
from repro.net.topology import Topology
from repro.sim.simulator import Simulator

Handler = Callable[[Message], None]


class Network:
    """Latency/loss message delivery over a topology."""

    def __init__(
        self,
        sim: Simulator,
        topology: Optional[Topology] = None,
        base_latency: float = 0.1,
        jitter: float = 0.05,
        loss_rate: float = 0.0,
    ):
        if base_latency < 0 or jitter < 0:
            raise NetworkError("latency parameters must be non-negative")
        if not 0.0 <= loss_rate <= 1.0:
            # loss_rate == 1.0 is a total blackout link, used by the
            # partition/chaos experiments (E17).
            raise NetworkError("loss_rate must be in [0, 1]")
        self.sim = sim
        self.topology = topology if topology is not None else Topology()
        self.base_latency = base_latency
        self.jitter = jitter
        self.loss_rate = loss_rate
        self._handlers: dict[str, Handler] = {}
        self._suspended: set = set()
        self._rng = sim.rng.stream("net")
        self._taps: list[Callable[[Message], None]] = []
        # Cached metric handles: send/deliver run once per message, so the
        # registry's dict-lookup-by-string is hoisted out of the hot path.
        metrics = sim.metrics
        self._m_sent = metrics.counter("net.sent")
        self._m_unroutable = metrics.counter("net.unroutable")
        self._m_unreachable = metrics.counter("net.unreachable")
        self._m_dropped = metrics.counter("net.dropped")
        self._m_suspended_drop = metrics.counter("net.suspended_drop")
        self._m_delivered = metrics.counter("net.delivered")
        self._m_latency = metrics.histogram("net.latency")
        self._telemetry = sim.telemetry

    # -- registration ------------------------------------------------------------

    def register(self, address: str, handler: Handler) -> None:
        """Attach a handler; the address joins the topology if absent."""
        if address == BROADCAST:
            raise NetworkError(f"{BROADCAST!r} is reserved for broadcasts")
        if address in self._handlers:
            raise NetworkError(f"address {address!r} already registered")
        self._handlers[address] = handler
        if address not in self.topology:
            self.topology.add_member(address)

    def unregister(self, address: str) -> None:
        self._handlers.pop(address, None)
        self._suspended.discard(address)
        self.topology.remove_member(address)

    def replace_handler(self, address: str, handler: Handler) -> Handler:
        """Swap the handler at ``address``; returns the previous one.

        Transport layers (e.g. :class:`~repro.net.reliable.ReliableChannel`)
        use this to wrap an already-registered endpoint.
        """
        if address not in self._handlers:
            raise NetworkError(f"address {address!r} is not registered")
        previous = self._handlers[address]
        self._handlers[address] = handler
        return previous

    def suspend(self, address: str) -> None:
        """Silence an address (crashed device): inbound deliveries drop,
        counted as ``net.suspended_drop``; the registration survives for
        :meth:`resume`."""
        if address in self._handlers:
            self._suspended.add(address)

    def resume(self, address: str) -> None:
        self._suspended.discard(address)

    def is_suspended(self, address: str) -> bool:
        return address in self._suspended

    def addresses(self) -> list[str]:
        return sorted(self._handlers)

    def tap(self, callback: Callable[[Message], None]) -> None:
        """Observe every *sent* message (monitoring, worm propagation studies)."""
        self._taps.append(callback)

    # -- sending -----------------------------------------------------------------

    def send(self, sender: str, recipient: str, topic: str, body: dict) -> Message:
        """Queue a message for delivery.  Returns the message object.

        Loss and unreachability are silent at the sender (datagram
        semantics) but counted in metrics and recorded in the trace.
        """
        # Reads (never materializes) the active causal context: plain
        # datagram traffic under an unmaterialized lazy root stays
        # span-free, while traffic inside a real trace carries it along.
        ctx = self._telemetry.current
        message = Message(sender=sender, recipient=recipient, topic=topic,
                         body=dict(body), sent_at=self.sim.now, trace=ctx)
        for tap in self._taps:
            tap(message)
        self._m_sent.inc()
        if ctx is not None and not topic.startswith("__"):
            self._telemetry.start_span("net.send", sender, parent=ctx,
                                       topic=topic, recipient=recipient)
        if message.is_broadcast:
            for address in self.addresses():
                if address != sender:
                    self._deliver_one(message, address)
        else:
            self._deliver_one(message, recipient)
        return message

    def _deliver_one(self, message: Message, recipient: str) -> None:
        if recipient not in self._handlers:
            self._m_unroutable.inc()
            self.sim.record("net.unroutable", message.sender, recipient=recipient,
                            topic=message.topic)
            return
        if not self.topology.can_reach(message.sender, recipient):
            self._m_unreachable.inc()
            self.sim.record("net.unreachable", message.sender, recipient=recipient,
                            topic=message.topic)
            return
        if self._rng.chance(self.loss_rate):
            self._m_dropped.inc()
            self.sim.record("net.dropped", message.sender, recipient=recipient,
                            topic=message.topic)
            return
        latency = self.base_latency
        if self.jitter > 0:
            latency += self._rng.uniform(0.0, self.jitter)
        self.sim.schedule(latency, self._arrive, message, recipient,
                          label=f"net:{message.topic}")

    def _arrive(self, message: Message, recipient: str) -> None:
        handler = self._handlers.get(recipient)
        if handler is None:
            self._m_unroutable.inc()
            return
        if recipient in self._suspended:
            self._m_suspended_drop.inc()
            return
        self._m_delivered.inc()
        self._m_latency.observe(self.sim.now - message.sent_at)
        if message.trace is not None and not message.topic.startswith("__"):
            self._telemetry.start_span("net.deliver", recipient,
                                       parent=message.trace,
                                       topic=message.topic,
                                       sender=message.sender)
        handler(message)

    # -- convenience -----------------------------------------------------------------

    def broadcast(self, sender: str, topic: str, body: dict) -> Message:
        return self.send(sender, BROADCAST, topic, body)

    def delivered_count(self) -> int:
        return int(self.sim.metrics.value("net.delivered"))
