"""In-simulation network substrate.

Message passing with latency/loss, topology constraints, dynamic device
discovery (the entry point of the paper's generative-policy flow, sec IV),
and gossip-based knowledge sharing ("share the information and policies
they generate with other devices").
"""

from repro.net.discovery import DiscoveryService
from repro.net.gossip import GossipNode, KnowledgeItem
from repro.net.message import Message
from repro.net.network import Network
from repro.net.reliable import PendingSend, ReliableChannel
from repro.net.shardnet import ShardRouter, WireMessage, wire_sort_key
from repro.net.topology import Topology

__all__ = [
    "DiscoveryService",
    "GossipNode",
    "KnowledgeItem",
    "Message",
    "Network",
    "PendingSend",
    "ReliableChannel",
    "ShardRouter",
    "Topology",
    "WireMessage",
    "wire_sort_key",
]
