"""Connectivity constraints between network addresses.

A :class:`Topology` answers "can A currently reach B?".  It combines a
static adjacency graph (who has a link) with dynamic partitions (which
links are currently severed), so experiments can model coalition networks
that split and heal.
"""

from __future__ import annotations

from typing import Iterable

import networkx as nx

from repro.errors import NetworkError


class Topology:
    """Adjacency + partition model.

    With no explicit links declared, the topology is fully connected over
    its member set (the common case for small device fleets); declaring
    any link switches it to explicit-adjacency mode.
    """

    def __init__(self, members: Iterable[str] = ()):
        self._graph = nx.Graph()
        self._graph.add_nodes_from(members)
        self._explicit = False
        self._partition_of: dict[str, int] = {}

    # -- membership -----------------------------------------------------------

    def add_member(self, address: str) -> None:
        self._graph.add_node(address)

    def remove_member(self, address: str) -> None:
        if address in self._graph:
            self._graph.remove_node(address)
        self._partition_of.pop(address, None)

    def members(self) -> list[str]:
        return sorted(self._graph.nodes)

    def __contains__(self, address: str) -> bool:
        return address in self._graph

    # -- links ----------------------------------------------------------------

    def add_link(self, a: str, b: str) -> None:
        if a == b:
            raise NetworkError("self-links are not allowed")
        self._explicit = True
        self._graph.add_edge(a, b)

    def remove_link(self, a: str, b: str) -> None:
        if self._graph.has_edge(a, b):
            self._graph.remove_edge(a, b)

    def neighbors(self, address: str) -> list[str]:
        if address not in self._graph:
            return []
        if not self._explicit:
            return [m for m in self._graph.nodes
                    if m != address and self._same_partition(address, m)]
        return sorted(
            n for n in self._graph.neighbors(address)
            if self._same_partition(address, n)
        )

    # -- partitions -------------------------------------------------------------

    def partition(self, groups: Iterable[Iterable[str]]) -> None:
        """Split members into isolated groups (e.g. a netsplit).

        Members not mentioned in any group keep partition 0 with group 0's
        complement — simplest rule: unmentioned members join group index -1
        together.
        """
        self._partition_of = {}
        for index, group in enumerate(groups):
            for address in group:
                self._partition_of[address] = index

    def heal(self) -> None:
        """Remove all partitions."""
        self._partition_of = {}

    def _same_partition(self, a: str, b: str) -> bool:
        return self._partition_of.get(a, -1) == self._partition_of.get(b, -1)

    # -- reachability -------------------------------------------------------------

    def can_reach(self, a: str, b: str) -> bool:
        """Direct link (explicit mode) or co-membership (implicit), same partition."""
        if a not in self._graph or b not in self._graph or a == b:
            return False
        if not self._same_partition(a, b):
            return False
        if not self._explicit:
            return True
        return self._graph.has_edge(a, b)

    def connected_component(self, address: str) -> set:
        """All members transitively reachable from ``address`` (incl. itself)."""
        if address not in self._graph:
            return set()
        if not self._explicit:
            return {m for m in self._graph.nodes if self._same_partition(address, m)}
        component = set()
        frontier = [address]
        while frontier:
            node = frontier.pop()
            if node in component:
                continue
            component.add(node)
            frontier.extend(
                n for n in self._graph.neighbors(node)
                if self._same_partition(node, n) and n not in component
            )
        return component

    # -- canned shapes --------------------------------------------------------------

    @staticmethod
    def full(members: Iterable[str]) -> "Topology":
        return Topology(members)

    @staticmethod
    def star(hub: str, leaves: Iterable[str]) -> "Topology":
        topo = Topology()
        topo.add_member(hub)
        for leaf in leaves:
            topo.add_member(leaf)
            topo.add_link(hub, leaf)
        return topo

    @staticmethod
    def ring(members: list) -> "Topology":
        topo = Topology()
        if len(members) < 3:
            raise NetworkError("a ring needs at least 3 members")
        for member in members:
            topo.add_member(member)
        for i, member in enumerate(members):
            topo.add_link(member, members[(i + 1) % len(members)])
        return topo

    @staticmethod
    def line(members: list) -> "Topology":
        topo = Topology()
        for member in members:
            topo.add_member(member)
        for a, b in zip(members, members[1:]):
            topo.add_link(a, b)
        return topo
