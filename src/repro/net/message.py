"""Network message model."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

_msg_ids = itertools.count(1)

#: Address used for broadcasts.
BROADCAST = "*"


@dataclass(frozen=True)
class Message:
    """One unit of communication between devices.

    ``topic`` routes the message at the receiver (it becomes the event
    kind suffix: topic ``"dispatch"`` arrives as event ``"net.dispatch"``).
    """

    sender: str
    recipient: str
    topic: str
    body: dict = field(default_factory=dict)
    sent_at: float = 0.0
    msg_id: int = field(default_factory=lambda: next(_msg_ids))
    #: Causal span context riding the envelope (telemetry); excluded from
    #: equality so trace propagation never changes message semantics.
    trace: object = field(default=None, repr=False, compare=False)

    @property
    def is_broadcast(self) -> bool:
        return self.recipient == BROADCAST

    def __repr__(self) -> str:
        return (f"Message(#{self.msg_id} {self.sender} -> {self.recipient} "
                f"topic={self.topic!r} at {self.sent_at})")
