"""Gossip-based knowledge sharing (paper sec IV, ref [3]).

Devices "share the information and policies they generate with other
devices".  Each :class:`GossipNode` holds versioned :class:`KnowledgeItem`
records (policy shares, learned models, intelligence reports) and performs
periodic anti-entropy exchanges with random reachable peers: newer
versions win, ties break by origin id for determinism.

Gossip is also the vector by which *bad* knowledge spreads — "a
reprogrammed device may turn malevolent and convert other devices into
following the same behaviors" — which the E3/E10 experiments exploit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.net.message import Message
from repro.net.network import Network
from repro.sim.simulator import Simulator

_GOSSIP_TOPIC = "gossip.exchange"


@dataclass(frozen=True)
class KnowledgeItem:
    """A versioned, gossiped fact.

    ``key`` identifies the fact (e.g. ``"policy:patrol-42"``); ``version``
    orders updates; ``origin`` is the device that produced this version;
    ``payload`` is the content.  ``tainted`` marks items produced by a
    compromised origin — invisible to honest nodes (they copy it blindly),
    but visible to the experiment harness for ground-truth accounting.
    """

    key: str
    version: int
    origin: str
    payload: dict
    tainted: bool = False

    def beats(self, other: Optional["KnowledgeItem"]) -> bool:
        if other is None:
            return True
        if self.version != other.version:
            return self.version > other.version
        return self.origin < other.origin  # deterministic tie-break


class GossipNode:
    """One device's gossip participant."""

    def __init__(
        self,
        device_id: str,
        sim: Simulator,
        network: Network,
        interval: float = 2.0,
        fanout: int = 1,
        on_update: Optional[Callable[[KnowledgeItem], None]] = None,
    ):
        self.device_id = device_id
        self.sim = sim
        self.network = network
        self.fanout = max(1, fanout)
        self.on_update = on_update
        self.store: dict[str, KnowledgeItem] = {}
        self._rng = sim.rng.stream(f"gossip/{device_id}")
        self._task = sim.every(interval, self._round, label=f"gossip:{device_id}")
        self.rounds = 0
        self.updates_applied = 0

    # -- local API ----------------------------------------------------------------

    def publish(self, key: str, payload: dict, *, tainted: bool = False) -> KnowledgeItem:
        """Create/advance a fact locally; it will spread via gossip."""
        current = self.store.get(key)
        item = KnowledgeItem(
            key=key,
            version=(current.version + 1) if current else 1,
            origin=self.device_id,
            payload=dict(payload),
            tainted=tainted,
        )
        self.store[key] = item
        return item

    def get(self, key: str) -> Optional[KnowledgeItem]:
        return self.store.get(key)

    def keys(self) -> list[str]:
        return sorted(self.store)

    def stop(self) -> None:
        self._task.cancel()

    # -- protocol ------------------------------------------------------------------

    def _round(self) -> None:
        """Push current store digests to ``fanout`` random reachable peers."""
        self.rounds += 1
        if not self.store:
            return
        peers = [
            address for address in self.network.addresses()
            if address != self.device_id
            and self.network.topology.can_reach(self.device_id, address)
        ]
        if not peers:
            return
        targets = self._rng.sample(peers, min(self.fanout, len(peers)))
        digest = [
            {"key": item.key, "version": item.version, "origin": item.origin,
             "payload": item.payload, "tainted": item.tainted}
            for item in self.store.values()
        ]
        for target in targets:
            self.network.send(self.device_id, target, _GOSSIP_TOPIC,
                              {"items": digest})

    def handle_exchange(self, message: Message) -> None:
        """Merge an inbound digest (newer-version-wins anti-entropy)."""
        for raw in message.body.get("items", []):
            item = KnowledgeItem(
                key=raw["key"], version=raw["version"], origin=raw["origin"],
                payload=dict(raw["payload"]), tainted=raw.get("tainted", False),
            )
            if item.beats(self.store.get(item.key)):
                self.store[item.key] = item
                self.updates_applied += 1
                self.sim.metrics.counter("gossip.updates").inc()
                if self.on_update is not None:
                    self.on_update(item)

    @staticmethod
    def is_exchange(message: Message) -> bool:
        return message.topic == _GOSSIP_TOPIC
