"""Reliable delivery over the lossy datagram :class:`~repro.net.network.Network`.

The base network is deliberately fire-and-forget: ordinary fleet gossip
should stay cheap and lossy.  Safety-critical traffic — watchdog
telemetry and kill orders (sec VI-C), governance ballots (sec VI-E),
collection join reviews (sec VI-D) — instead rides a
:class:`ReliableChannel`: positive acknowledgement, retry with
exponential backoff and jitter, duplicate suppression by message id, a
bounded attempt budget, and a dead-letter queue.  A dead letter is a
*signal*, not a shrug: the safeguard that sent it can fail closed (e.g. a
device that cannot reach its overseer quarantines itself).

Both endpoints must be registered (or :meth:`~ReliableChannel.attach`\\ ed)
through the channel so acknowledgements and duplicates are intercepted;
plain datagram messages pass through to the wrapped handler untouched.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Callable, Optional

from repro.errors import NetworkError
from repro.net.message import BROADCAST, Message
from repro.net.network import Handler, Network

#: Topic carrying acknowledgements (never delivered to application handlers).
ACK_TOPIC = "__ack__"

_PROTOCOL_KEYS = ("_rmid", "_rfrom")


@dataclass
class PendingSend:
    """One reliable send in flight, queued, or finished.

    ``coalesce`` tags sends that carry full-state snapshots: while such a
    send waits in the flow-control queue, a newer send with the same
    ``(recipient, topic, coalesce)`` replaces it (the old handle reads
    ``superseded=True`` and none of its callbacks ever fire).
    """

    rmid: str
    sender: str
    recipient: str
    topic: str
    body: dict
    first_sent: float
    attempts: int = 0
    acked: bool = False
    dead: bool = False
    superseded: bool = False
    coalesce: Optional[str] = None
    acked_at: Optional[float] = None
    on_fail: Optional[Callable[["PendingSend"], None]] = field(
        default=None, repr=False)
    on_ack: Optional[Callable[["PendingSend"], None]] = field(
        default=None, repr=False)
    #: Causal span context captured at send(); every (re)transmission of
    #: this message is attributed to it, even when a queued send finally
    #: drains during some other message's resolution.
    ctx: object = field(default=None, repr=False)


class ReliableChannel:
    """Ack/retry unicast channel over a datagram network."""

    #: Duck-typing marker: safeguards check this to know dead-letter
    #: feedback exists (a raw ``Network`` gives none).
    reliable = True

    def __init__(
        self,
        network: Network,
        timeout: float = 0.5,
        backoff: float = 2.0,
        jitter: float = 0.1,
        max_attempts: int = 4,
        max_in_flight: Optional[int] = None,
        rmid_prefix: str = "r",
    ):
        """``max_in_flight`` caps how many of one sender's messages may be
        on the wire (transmitted, unresolved) at once; excess sends queue
        per sender in FIFO order and drain as earlier ones ack or die.
        ``None`` (the default) keeps the historical uncapped behaviour.
        Under a fault storm the cap stops a cut-off sender from pyramiding
        retries for every queued snapshot at once — combined with
        ``coalesce`` tags, stale telemetry collapses to the newest
        snapshot instead of replaying a backlog after the partition heals.

        ``rmid_prefix`` namespaces this channel's message ids.  Duplicate
        suppression at a receiver is keyed by rmid alone, so when several
        channel instances can reach one recipient — one per shard in an F4
        sharded run — each must mint ids from a distinct prefix (e.g.
        ``f"s{shard_index}-"``) or two channels' ``r1`` messages would
        shadow each other in the receiver's seen-set.
        """
        if not rmid_prefix:
            raise NetworkError("rmid_prefix must be non-empty")
        if timeout <= 0:
            raise NetworkError("timeout must be positive")
        if backoff < 1.0:
            raise NetworkError("backoff factor must be >= 1")
        if jitter < 0:
            raise NetworkError("jitter must be non-negative")
        if max_attempts < 1:
            raise NetworkError("max_attempts must be >= 1")
        if max_in_flight is not None and max_in_flight < 1:
            raise NetworkError("max_in_flight must be >= 1 or None")
        self.network = network
        self.sim = network.sim
        self.timeout = timeout
        self.backoff = backoff
        self.jitter = jitter
        self.max_attempts = max_attempts
        self.max_in_flight = max_in_flight
        self.dead_letters: list[PendingSend] = []
        self.rmid_prefix = rmid_prefix
        self._rng = self.sim.rng.stream("net.reliable")
        self._counter = itertools.count(1)
        self._pending: dict[str, PendingSend] = {}
        self._seen: dict[str, set] = {}   # receiving address -> rmids delivered
        self._in_flight: dict[str, int] = {}        # sender -> wire count
        self._queued: dict[str, list] = {}          # sender -> FIFO backlog

    # -- registration ----------------------------------------------------------

    def register(self, address: str, handler: Handler) -> None:
        """Register a fresh endpoint whose traffic flows through the channel."""
        self.network.register(address, self._wrap(address, handler))

    def attach(self, address: str) -> None:
        """Wrap an endpoint already registered directly with the network."""
        inner = self.network.replace_handler(address, lambda message: None)
        self.network.replace_handler(address, self._wrap(address, inner))

    # -- sending ---------------------------------------------------------------

    def send(
        self,
        sender: str,
        recipient: str,
        topic: str,
        body: dict,
        on_fail: Optional[Callable[[PendingSend], None]] = None,
        on_ack: Optional[Callable[[PendingSend], None]] = None,
        coalesce: Optional[str] = None,
    ) -> PendingSend:
        """Send with delivery tracking; returns the in-flight handle.

        ``on_ack(pending)`` fires when the acknowledgement arrives;
        ``on_fail(pending)`` fires when the attempt budget is exhausted
        (the message is then in :attr:`dead_letters`).

        ``coalesce`` (with :attr:`max_in_flight` set) marks the message
        as a superseding snapshot: if an *unsent* message with the same
        ``(recipient, topic, coalesce)`` is still queued behind the
        in-flight cap, the new send replaces it in place (the superseded
        handle fires no callbacks).  In-flight messages never coalesce —
        they are already on the wire.
        """
        if recipient == BROADCAST:
            raise NetworkError(
                "reliable broadcast is not supported; fan out unicast sends "
                "(gossip should stay on the datagram network)"
            )
        pending = PendingSend(
            rmid=f"{self.rmid_prefix}{next(self._counter)}",
            sender=sender, recipient=recipient,
            topic=topic, body=dict(body), first_sent=self.sim.now,
            coalesce=coalesce, on_fail=on_fail, on_ack=on_ack,
            # Capture the caller's context so retries and dead-letter
            # verdicts stay attributed to the decision that sent the
            # message.  Read-only: routine heartbeats with nothing
            # traceable in flight mint no spans (the ~5% overhead budget
            # lives or dies on this path); causally interesting senders —
            # kill orders, compromised-device reports — activate their
            # span before calling send.
            ctx=self.sim.telemetry.current,
        )
        self.sim.metrics.counter("reliable.sent").inc()
        cap = self.max_in_flight
        if cap is not None and self._in_flight.get(sender, 0) >= cap:
            self._enqueue(pending)
        else:
            self._pending[pending.rmid] = pending
            self._in_flight[sender] = self._in_flight.get(sender, 0) + 1
            self._transmit(pending)
        return pending

    def outstanding(self) -> int:
        return len(self._pending) + sum(
            len(queue) for queue in self._queued.values())

    def queue_depth(self, sender: Optional[str] = None) -> int:
        """Messages waiting behind the in-flight cap (0 when uncapped)."""
        if sender is not None:
            return len(self._queued.get(sender, ()))
        return sum(len(queue) for queue in self._queued.values())

    # -- internals -------------------------------------------------------------

    def _enqueue(self, pending: PendingSend) -> None:
        queue = self._queued.setdefault(pending.sender, [])
        if pending.coalesce is not None:
            slot = (pending.recipient, pending.topic, pending.coalesce)
            for index, waiting in enumerate(queue):
                if (waiting.recipient, waiting.topic, waiting.coalesce) == slot:
                    waiting.superseded = True
                    queue[index] = pending     # keep the old queue position
                    self.sim.metrics.counter("reliable.coalesced").inc()
                    self.sim.metrics.histogram("reliable.queue_depth").observe(
                        len(queue))
                    return
        queue.append(pending)
        self.sim.metrics.counter("reliable.queued").inc()
        self.sim.metrics.histogram("reliable.queue_depth").observe(len(queue))

    def _resolve(self, pending: PendingSend) -> None:
        """One in-flight send finished (ack or dead): admit the backlog."""
        sender = pending.sender
        in_flight = self._in_flight.get(sender, 0) - 1
        if in_flight > 0:
            self._in_flight[sender] = in_flight
        else:
            self._in_flight.pop(sender, None)
            in_flight = max(in_flight, 0)
        cap = self.max_in_flight
        queue = self._queued.get(sender)
        while queue and (cap is None or in_flight < cap):
            next_pending = queue.pop(0)
            self._pending[next_pending.rmid] = next_pending
            in_flight += 1
            self._in_flight[sender] = in_flight
            self._transmit(next_pending)
        if queue is not None and not queue:
            del self._queued[sender]

    def _transmit(self, pending: PendingSend) -> None:
        pending.attempts += 1
        wire = dict(pending.body)
        wire["_rmid"] = pending.rmid
        wire["_rfrom"] = pending.sender
        # Transmit under the context captured at send() so the network
        # stamps the right trace even when this message drains out of the
        # flow-control queue during another message's resolution, and so
        # the retry check below inherits it via scheduler capture.
        telemetry = self.sim.telemetry
        previous = telemetry.activate(
            pending.ctx if pending.ctx is not None else telemetry.current)
        try:
            self.network.send(pending.sender, pending.recipient,
                              pending.topic, wire)
            delay = self.timeout * (self.backoff ** (pending.attempts - 1))
            if self.jitter > 0:
                delay += self._rng.uniform(0.0, self.jitter * delay)
            self.sim.schedule(delay, self._check, pending,
                              label=f"{pending.sender}:reliable-retry")
        finally:
            telemetry.activate(previous)

    def _check(self, pending: PendingSend) -> None:
        if pending.acked or pending.dead:
            return
        if pending.attempts >= self.max_attempts:
            pending.dead = True
            self._pending.pop(pending.rmid, None)
            self.dead_letters.append(pending)
            self.sim.metrics.counter("reliable.dead_letter").inc()
            self.sim.record("reliable.dead_letter", pending.sender,
                            recipient=pending.recipient, topic=pending.topic,
                            attempts=pending.attempts)
            if pending.ctx is not None:
                self.sim.telemetry.start_span(
                    "reliable.dead_letter", pending.sender, parent=pending.ctx,
                    topic=pending.topic, recipient=pending.recipient,
                    attempts=pending.attempts)
            if pending.on_fail is not None:
                pending.on_fail(pending)
            self._resolve(pending)
            return
        self.sim.metrics.counter("reliable.resends").inc()
        self._transmit(pending)

    def _on_ack(self, rmid: Optional[str]) -> None:
        pending = self._pending.pop(rmid, None) if rmid is not None else None
        if pending is None or pending.acked:
            return
        pending.acked = True
        pending.acked_at = self.sim.now
        self.sim.metrics.counter("reliable.acked").inc()
        self.sim.metrics.histogram("reliable.rtt").observe(
            self.sim.now - pending.first_sent
        )
        if pending.on_ack is not None:
            pending.on_ack(pending)
        self._resolve(pending)

    def _wrap(self, address: str, inner: Handler) -> Handler:
        def handler(message: Message) -> None:
            if message.topic == ACK_TOPIC:
                self._on_ack(message.body.get("_rmid"))
                return
            rmid = message.body.get("_rmid")
            if rmid is None:            # ordinary datagram traffic
                inner(message)
                return
            # Always re-ack: the previous ack may have been lost.
            origin = message.body.get("_rfrom", message.sender)
            self.network.send(address, origin, ACK_TOPIC, {"_rmid": rmid})
            seen = self._seen.setdefault(address, set())
            if rmid in seen:
                self.sim.metrics.counter("reliable.duplicates").inc()
                return
            seen.add(rmid)
            clean = {key: value for key, value in message.body.items()
                     if key not in _PROTOCOL_KEYS}
            inner(replace(message, body=clean))

        return handler
