"""Deterministic cross-shard message transport (F4).

Why the existing :class:`~repro.net.network.Network` cannot carry
cross-shard traffic: its latency/loss draws come from a *shared* RNG
stream (``sim.rng.stream("net")``), so each draw depends on the global
arrival order of every send in the process.  Re-partitioning the fleet
reorders those draws and the byte-identical-trace guarantee dies.  The
:class:`ShardRouter` instead derives latency and loss **statelessly** per
message — CRC32 over ``(seed, sender, recipient, per-sender sequence
number)``, the same ``cell_seed`` construction the sweep executor uses —
so a message's fate is a pure function of who sent it and how many
messages that sender has sent, never of what other devices were doing.

Delivery protocol (conservative barrier synchronization):

* every send — local *or* remote — lands in an outbox, never directly in
  the event queue: local and cross-shard messages take the identical
  path, so the n_shards=1 run is byte-identical to any sharded run;
* latency is ``window + jitter`` with ``jitter < window``, so a message
  sent inside window ``W`` always arrives after the barrier that closes
  ``W`` — one window of lookahead is enough and no shard can receive a
  message for simulated time it has already executed;
* the coordinator sorts each barrier's batch by ``(deliver_at, sender,
  seq)`` (:func:`wire_sort_key`) before injection, making injection
  order a pure function of the message *set*;
* injected deliveries are scheduled at ``priority=1`` — strictly after
  same-timestamp tick events (priority 0) — so per-device interleaving
  of ticks and deliveries is shard-invariant too.

:class:`~repro.net.reliable.ReliableChannel` interoperates unchanged:
the router exposes the ``register`` / ``replace_handler`` / ``send`` /
``sim`` surface the channel duck-types against, so ack/retry traffic can
cross shard boundaries.  (Give each shard's channel a distinct
``rmid_prefix`` so concurrently minted message ids never collide at a
shared recipient; note the channel's retry *jitter* draws from a
per-shard RNG stream, so runs that must stay byte-identical across
shard counts should use ``jitter=0`` reliable channels or the plain
router.)  Causal span contexts (E19) ride each wire message and are
re-activated at delivery, so traces stitch across process boundaries.
"""

from __future__ import annotations

import zlib
from typing import Callable, Optional

from repro.errors import NetworkError
from repro.net.message import BROADCAST, Message

Handler = Callable[[Message], None]


def crc01(*parts) -> float:
    """A deterministic uniform in ``[0, 1)`` from hashed coordinates.

    Same construction as ``scenarios.sweep.cell_seed``: CRC32 over the
    ``repr`` of the parts — identical in every process, independent of
    evaluation order.
    """
    text = "|".join(repr(part) for part in parts)
    return zlib.crc32(text.encode("utf-8")) / 4294967296.0


class WireMessage:
    """One cross-barrier message: picklable, deterministic, sortable."""

    __slots__ = ("sender", "recipient", "topic", "body", "sent_at",
                 "deliver_at", "seq", "trace")

    def __init__(self, sender: str, recipient: str, topic: str, body: dict,
                 sent_at: float, deliver_at: float, seq: int, trace=None):
        self.sender = sender
        self.recipient = recipient
        self.topic = topic
        self.body = body
        self.sent_at = sent_at
        self.deliver_at = deliver_at
        self.seq = seq
        self.trace = trace

    def __repr__(self) -> str:
        return (f"WireMessage({self.sender} -> {self.recipient} "
                f"topic={self.topic!r} at {self.deliver_at})")


def wire_sort_key(message: WireMessage) -> tuple:
    """The canonical barrier-merge order: a pure function of the message."""
    return (message.deliver_at, message.sender, message.seq)


class ShardRouter:
    """Outbox-based deterministic transport for one shard's simulator.

    ``window`` must equal the barrier window of the sharded run (it is
    the delivery lookahead).  ``jitter_frac`` scales CRC-derived latency
    jitter within ``[0, jitter_frac * window)``; it must stay below 1.0
    so the one-window lookahead holds.
    """

    #: Duck-typing marker mirrored from ReliableChannel conventions.
    reliable = False

    def __init__(self, sim, seed: int, window: float,
                 loss_rate: float = 0.0, jitter_frac: float = 0.5):
        if window <= 0:
            raise NetworkError("barrier window must be positive")
        if not 0.0 <= loss_rate <= 1.0:
            raise NetworkError("loss_rate must be in [0, 1]")
        if not 0.0 <= jitter_frac < 1.0:
            raise NetworkError(
                "jitter_frac must be in [0, 1) to preserve barrier lookahead")
        self.sim = sim
        self.seed = int(seed)
        self.window = float(window)
        self.loss_rate = float(loss_rate)
        self.jitter_frac = float(jitter_frac)
        self._handlers: dict[str, Handler] = {}
        self._suspended: set = set()
        self._outbox: list[WireMessage] = []
        self._seq: dict[str, int] = {}
        metrics = sim.metrics
        self._m_sent = metrics.counter("net.shard.sent")
        self._m_dropped = metrics.counter("net.shard.dropped")
        self._m_delivered = metrics.counter("net.shard.delivered")
        self._m_unroutable = metrics.counter("net.shard.unroutable")
        self._telemetry = sim.telemetry

    # -- registration ---------------------------------------------------------

    def register(self, address: str, handler: Handler) -> None:
        if address == BROADCAST:
            raise NetworkError(f"{BROADCAST!r} is reserved")
        if address in self._handlers:
            raise NetworkError(f"address {address!r} already registered")
        self._handlers[address] = handler

    def unregister(self, address: str) -> None:
        self._handlers.pop(address, None)
        self._suspended.discard(address)

    def replace_handler(self, address: str, handler: Handler) -> Handler:
        if address not in self._handlers:
            raise NetworkError(f"address {address!r} is not registered")
        previous = self._handlers[address]
        self._handlers[address] = handler
        return previous

    def suspend(self, address: str) -> None:
        if address in self._handlers:
            self._suspended.add(address)

    def resume(self, address: str) -> None:
        self._suspended.discard(address)

    def addresses(self) -> list:
        return sorted(self._handlers)

    # -- sending --------------------------------------------------------------

    def send(self, sender: str, recipient: str, topic: str, body: dict,
             trace=None) -> Optional[WireMessage]:
        """Queue a message into the outbox; returns ``None`` when lost.

        Latency and loss are CRC-derived from ``(seed, sender, recipient,
        seq)`` — deterministic and shard-assignment-invariant.
        """
        if recipient == BROADCAST:
            raise NetworkError(
                "shard router has no broadcast; fan out unicast sends")
        seq = self._seq.get(sender, 0) + 1
        self._seq[sender] = seq
        self._m_sent.inc()
        if self.loss_rate > 0.0 and crc01(
                self.seed, "loss", sender, recipient, seq) < self.loss_rate:
            self._m_dropped.inc()
            return None
        jitter = 0.0
        if self.jitter_frac > 0.0:
            jitter = crc01(self.seed, "lat", sender, recipient, seq) \
                * self.window * self.jitter_frac
        now = self.sim.now
        if trace is None:
            trace = self._telemetry.current
        message = WireMessage(sender, recipient, topic, dict(body),
                              sent_at=now, deliver_at=now + self.window + jitter,
                              seq=seq, trace=trace)
        self._outbox.append(message)
        return message

    def drain_outbox(self) -> list:
        """All messages sent since the last drain (the barrier exchange)."""
        outbox = self._outbox
        self._outbox = []
        return outbox

    def pending(self) -> int:
        return len(self._outbox)

    # -- barrier injection ----------------------------------------------------

    def inject(self, batch) -> int:
        """Schedule a barrier batch for delivery.

        The coordinator pre-sorts with :func:`wire_sort_key`; scheduling
        in that order (the event queue breaks time ties by insertion
        sequence) makes same-timestamp delivery order deterministic.
        Deliveries run at ``priority=1`` — after same-time tick events.
        """
        schedule_at = self.sim.schedule_at
        count = 0
        for message in batch:
            schedule_at(message.deliver_at, self._deliver, message,
                        priority=1, label=f"{message.recipient}:deliver")
            count += 1
        return count

    def _deliver(self, message: WireMessage) -> None:
        handler = self._handlers.get(message.recipient)
        if handler is None or message.recipient in self._suspended:
            self._m_unroutable.inc()
            return
        self._m_delivered.inc()
        delivered = Message(sender=message.sender, recipient=message.recipient,
                            topic=message.topic, body=message.body,
                            sent_at=message.sent_at, trace=message.trace)
        # Re-activate the sender's causal context (possibly captured in a
        # different process) so handlers and their spans join the trace.
        previous = self._telemetry.activate(message.trace)
        try:
            handler(delivered)
        finally:
            self._telemetry.activate(previous)
