"""Learning substrate.

The paper's devices are "Learning" and "Cognitive" (sec III): they learn
from the environment, emulate humans, and build predictive models of the
attribute relationships among discovered devices (sec IV).  This package
provides the online learners those behaviours are built from, plus the
adversarial-ML defenses of refs [17, 18].

Model sophistication is deliberately modest (running statistics,
perceptron, naive Bayes, bucketed emulation): the paper's risks — bad
data, imperfect human demonstrations, poisoning — are properties of the
*learning loop*, which these reproduce exactly.
"""

from repro.learning.adversarial import (
    PoisonReport,
    mad_outlier_filter,
    sanitize_samples,
)
from repro.learning.anomaly import AnomalyReport, StateAnomalyDetector
from repro.learning.emulation import Demonstration, HumanEmulationLearner
from repro.learning.online import ExponentialSmoother, OnlinePerceptron, RunningStats
from repro.learning.predictive import AttributeRelationshipModel, NaiveBayesTypeClassifier

__all__ = [
    "AnomalyReport",
    "AttributeRelationshipModel",
    "Demonstration",
    "ExponentialSmoother",
    "HumanEmulationLearner",
    "NaiveBayesTypeClassifier",
    "OnlinePerceptron",
    "PoisonReport",
    "RunningStats",
    "StateAnomalyDetector",
    "mad_outlier_filter",
    "sanitize_samples",
]
