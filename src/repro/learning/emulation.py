"""Learning by emulating humans (paper sec IV, "Inappropriate Emulation").

"A common way for machines to improve themselves and learn new skills is
to emulate the behavior of humans by observation.  After a sufficient
number of observations of how a human handles a situation, a machine can
create a system to replicate it.  However, humans are imperfect and prone
to make mistakes, and the encoding of imperfect human behavior can lead to
a mistaken and sometimes malevolent machine forming."

:class:`HumanEmulationLearner` buckets observed situations and records
which action the human took; once confident, it proposes ECA policies
replicating the majority behaviour — *including any mistakes the
demonstrations contained*, which is exactly the risk E10 injects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.actions import Action
from repro.core.conditions import AllOf, Comparison, Condition, Literal
from repro.core.policy import Policy
from repro.errors import LearningError


@dataclass(frozen=True)
class Demonstration:
    """One observed (situation, human action) pair."""

    situation: dict          # state-variable values at observation time
    action_name: str
    event_kind: str = "*"
    time: float = 0.0


class HumanEmulationLearner:
    """Majority-vote behaviour cloning over discretized situations."""

    def __init__(self, bucketers: dict, min_demonstrations: int = 5,
                 min_agreement: float = 0.6):
        """``bucketers`` maps variable name -> callable(value) -> bucket
        label; e.g. ``{"temp": lambda v: "high" if v > 50 else "low"}``.
        Variables absent from ``bucketers`` are ignored.
        """
        if not bucketers:
            raise LearningError("emulation needs at least one bucketed variable")
        self.bucketers: dict[str, Callable] = dict(bucketers)
        self.min_demonstrations = min_demonstrations
        self.min_agreement = min_agreement
        #: (event_kind, situation_key) -> {action_name: count}
        self._counts: dict[tuple, dict] = {}
        self.demonstrations = 0

    def _situation_key(self, situation: dict) -> tuple:
        key = []
        for name in sorted(self.bucketers):
            if name not in situation:
                raise LearningError(f"situation missing bucketed variable {name!r}")
            key.append((name, self.bucketers[name](situation[name])))
        return tuple(key)

    def observe(self, demonstration: Demonstration) -> None:
        self.demonstrations += 1
        key = (demonstration.event_kind, self._situation_key(demonstration.situation))
        bucket = self._counts.setdefault(key, {})
        bucket[demonstration.action_name] = bucket.get(demonstration.action_name, 0) + 1

    def recommended_action(self, event_kind: str, situation: dict) -> Optional[str]:
        """The learned action for this situation, or None if unconfident."""
        key = (event_kind, self._situation_key(situation))
        bucket = self._counts.get(key)
        if not bucket:
            return None
        total = sum(bucket.values())
        if total < self.min_demonstrations:
            return None
        winner = max(sorted(bucket), key=lambda name: bucket[name])
        if bucket[winner] / total < self.min_agreement:
            return None
        return winner

    def confident_situations(self) -> list[tuple]:
        """(event_kind, situation_key, action) triples ready to become policies."""
        out = []
        for (event_kind, situation_key), bucket in sorted(self._counts.items()):
            total = sum(bucket.values())
            if total < self.min_demonstrations:
                continue
            winner = max(sorted(bucket), key=bucket.__getitem__)
            if bucket[winner] / total >= self.min_agreement:
                out.append((event_kind, situation_key, winner))
        return out

    def propose_policies(
        self,
        action_lookup: Callable[[str], Action],
        bucket_conditions: dict,
        priority: int = 0,
        author: str = "emulation",
    ) -> list[Policy]:
        """Turn confident situations into learned ECA policies.

        ``bucket_conditions`` maps (variable, bucket_label) -> Condition so
        buckets translate back to evaluable guards, e.g.
        ``("temp", "high") -> parse_condition("temp > 50")``.
        """
        policies = []
        for event_kind, situation_key, action_name in self.confident_situations():
            parts: list[Condition] = []
            for variable, bucket_label in situation_key:
                condition = bucket_conditions.get((variable, bucket_label))
                if condition is None:
                    # Fall back to equality on the bucket label for string vars.
                    condition = Comparison(variable, "==", Literal(bucket_label))
                parts.append(condition)
            policies.append(Policy.make(
                event_pattern=event_kind,
                condition=AllOf(parts) if len(parts) > 1 else parts[0],
                action=action_lookup(action_name),
                priority=priority,
                source="learned",
                author=author,
                learned_from=f"{self.demonstrations} demonstrations",
            ))
        return policies
