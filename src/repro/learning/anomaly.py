"""Anomaly detection over device state streams.

The paper notes that once a malevolent system gets into other systems "it
can disarm existing controls (such as anomaly detection tools)" — so the
library ships one, both as a control worth having and as a target the
attack experiments try to disarm.  Detection is per-variable z-scoring
against running statistics, with a warm-up period before alerts fire.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.learning.online import RunningStats


@dataclass(frozen=True)
class AnomalyReport:
    """One detected anomaly."""

    time: float
    variable: str
    value: float
    zscore: float
    message: str = ""


class StateAnomalyDetector:
    """Z-score anomaly detection across a state vector's numeric variables."""

    def __init__(self, threshold: float = 3.0, warmup: int = 10,
                 variables: Optional[Iterable[str]] = None):
        self.threshold = threshold
        self.warmup = warmup
        self._watch = set(variables) if variables is not None else None
        self._stats: dict[str, RunningStats] = {}
        self.reports: list[AnomalyReport] = []
        self.enabled = True   # attacks may try to disarm this

    def observe(self, vector: dict, time: float = 0.0) -> list[AnomalyReport]:
        """Ingest one state snapshot; returns anomalies found in it.

        Anomalous values are *not* folded into the running statistics, so
        a slow-poisoning attacker cannot drag the baseline by tripping the
        detector (values under threshold do update the baseline).
        """
        found: list[AnomalyReport] = []
        for name, value in vector.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            if self._watch is not None and name not in self._watch:
                continue
            stats = self._stats.get(name)
            if stats is None:
                stats = self._stats[name] = RunningStats()
            z = stats.zscore(float(value))
            is_anomaly = (self.enabled and stats.count >= self.warmup
                          and abs(z) > self.threshold)
            if is_anomaly:
                report = AnomalyReport(
                    time=time, variable=name, value=float(value), zscore=z,
                    message=f"{name}={value} is {z:+.1f} sd from baseline",
                )
                found.append(report)
                self.reports.append(report)
            else:
                stats.update(float(value))
        return found

    def disarm(self) -> None:
        """What a compromised device does to its own controls (sec IV)."""
        self.enabled = False

    def rearm(self) -> None:
        self.enabled = True

    def baseline(self, variable: str) -> Optional[RunningStats]:
        return self._stats.get(variable)

    def anomaly_count(self, variable: Optional[str] = None) -> int:
        if variable is None:
            return len(self.reports)
        return sum(1 for report in self.reports if report.variable == variable)
