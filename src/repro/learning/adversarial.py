"""Adversarial-ML defenses (paper sec IV, refs [17, 18]).

The paper lists poisoning of training data among the channels by which
malevolence creeps in, and notes that counter-measures "enable machines to
exclude selected training data from consideration".  This module provides
the exclusion machinery: robust outlier filtering (median absolute
deviation), label-flip screening against a trusted seed set, and a
sanitizing trainer wrapper used by experiment E7.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import median
from typing import Optional, Sequence

from repro.errors import LearningError
from repro.learning.online import OnlinePerceptron

#: A labelled sample: (feature tuple, label in {+1, -1}).
Sample = tuple


@dataclass(frozen=True)
class PoisonReport:
    """What sanitization removed and why."""

    kept: int
    removed: int
    removed_indices: tuple
    reasons: dict = field(default_factory=dict)   # index -> reason

    @property
    def removal_rate(self) -> float:
        total = self.kept + self.removed
        return self.removed / total if total else 0.0


def mad_outlier_filter(samples: Sequence[Sample],
                       threshold: float = 3.5) -> tuple:
    """Remove samples whose feature vector is a MAD outlier in any dimension.

    Uses the modified z-score 0.6745·|x−median|/MAD (Iglewicz–Hoaglin).
    Returns ``(clean_samples, PoisonReport)``.
    """
    if not samples:
        return [], PoisonReport(kept=0, removed=0, removed_indices=())
    n_features = len(samples[0][0])
    medians, mads = [], []
    for j in range(n_features):
        column = [float(features[j]) for features, _ in samples]
        m = median(column)
        mad = median(abs(x - m) for x in column)
        medians.append(m)
        mads.append(mad)
    clean, removed_indices, reasons = [], [], {}
    for index, (features, label) in enumerate(samples):
        outlier_dim = None
        for j in range(n_features):
            if mads[j] == 0:
                continue
            score = 0.6745 * abs(float(features[j]) - medians[j]) / mads[j]
            if score > threshold:
                outlier_dim = j
                break
        if outlier_dim is None:
            clean.append((features, label))
        else:
            removed_indices.append(index)
            reasons[index] = f"feature {outlier_dim} MAD outlier"
    return clean, PoisonReport(
        kept=len(clean), removed=len(removed_indices),
        removed_indices=tuple(removed_indices), reasons=reasons,
    )


def label_flip_filter(samples: Sequence[Sample], trusted: Sequence[Sample],
                      k: int = 3) -> tuple:
    """Remove samples whose label disagrees with their k nearest trusted
    neighbours — the defense against targeted label-flip poisoning.

    Requires a small trusted seed set (the paper's "human cross-validation"
    provides one).  Returns ``(clean_samples, PoisonReport)``.
    """
    if not trusted:
        raise LearningError("label_flip_filter needs a trusted seed set")
    k = min(k, len(trusted))
    clean, removed_indices, reasons = [], [], {}
    for index, (features, label) in enumerate(samples):
        distances = sorted(
            (sum((float(a) - float(b)) ** 2 for a, b in zip(features, t_features)),
             t_label)
            for t_features, t_label in trusted
        )
        votes = sum(t_label for _, t_label in distances[:k])
        consensus = 1 if votes >= 0 else -1
        if votes != 0 and consensus != label:
            removed_indices.append(index)
            reasons[index] = f"label {label} contradicts {k}-NN trusted consensus"
        else:
            clean.append((features, label))
    return clean, PoisonReport(
        kept=len(clean), removed=len(removed_indices),
        removed_indices=tuple(removed_indices), reasons=reasons,
    )


def sanitize_samples(samples: Sequence[Sample],
                     trusted: Optional[Sequence[Sample]] = None,
                     mad_threshold: float = 3.5,
                     knn_k: int = 3) -> tuple:
    """Full sanitization pipeline: MAD filtering, then label screening.

    Returns ``(clean_samples, combined PoisonReport)``.
    """
    clean, mad_report = mad_outlier_filter(samples, threshold=mad_threshold)
    if trusted:
        clean, flip_report = label_flip_filter(clean, trusted, k=knn_k)
        combined = PoisonReport(
            kept=flip_report.kept,
            removed=mad_report.removed + flip_report.removed,
            removed_indices=mad_report.removed_indices + flip_report.removed_indices,
            reasons={**mad_report.reasons, **flip_report.reasons},
        )
        return clean, combined
    return clean, mad_report


def train_sanitized(n_features: int, samples: Sequence[Sample],
                    trusted: Optional[Sequence[Sample]] = None,
                    epochs: int = 5,
                    learning_rate: float = 0.1) -> tuple:
    """Train a perceptron on sanitized data.

    Returns ``(model, PoisonReport)``.  The E7 experiment compares this
    against training on the raw (poisoned) stream.
    """
    clean, report = sanitize_samples(samples, trusted)
    model = OnlinePerceptron(n_features, learning_rate=learning_rate)
    model.fit(clean, epochs=epochs)
    return model, report
