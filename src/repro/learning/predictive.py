"""Predictive models over discovered-device attributes (paper sec IV).

"They can ... learn the relationship between the attributes they see among
the devices in the system and create predictive models of those
relationships" — :class:`AttributeRelationshipModel` learns pairwise
linear relations between numeric attributes online, and can predict
missing attributes of a newly discovered device from the ones it
announces.

"use unsupervised machine learning techniques to add or remove from the
types of devices that the human has specified" —
:class:`NaiveBayesTypeClassifier` infers a device's type from its
attributes, letting the generative engine handle devices whose announced
type is absent from the human-provided interaction graph.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.errors import LearningError


class _PairwiseRegression:
    """Online simple linear regression y ≈ a·x + b via running co-moments."""

    def __init__(self) -> None:
        self.n = 0
        self.mean_x = 0.0
        self.mean_y = 0.0
        self.cov_xy = 0.0   # sum of co-deviations
        self.var_x = 0.0    # sum of squared x deviations

    def update(self, x: float, y: float) -> None:
        self.n += 1
        dx = x - self.mean_x
        self.mean_x += dx / self.n
        self.mean_y += (y - self.mean_y) / self.n
        self.cov_xy += dx * (y - self.mean_y)
        self.var_x += dx * (x - self.mean_x)

    @property
    def slope(self) -> Optional[float]:
        if self.n < 2 or self.var_x == 0.0:
            return None
        return self.cov_xy / self.var_x

    @property
    def intercept(self) -> Optional[float]:
        slope = self.slope
        if slope is None:
            return None
        return self.mean_y - slope * self.mean_x

    def predict(self, x: float) -> Optional[float]:
        slope = self.slope
        if slope is None:
            return None
        return slope * x + (self.mean_y - slope * self.mean_x)


class AttributeRelationshipModel:
    """Learns directed pairwise linear relations among numeric attributes."""

    def __init__(self, min_observations: int = 3):
        self.min_observations = min_observations
        self._pairs: dict[tuple, _PairwiseRegression] = {}
        self.observations = 0

    def observe(self, attributes: dict) -> None:
        """Ingest one device's attribute record."""
        numeric = {
            name: float(value) for name, value in attributes.items()
            if isinstance(value, (int, float)) and not isinstance(value, bool)
        }
        self.observations += 1
        names = sorted(numeric)
        for i, x_name in enumerate(names):
            for y_name in names[i + 1:]:
                for key, x, y in (
                    ((x_name, y_name), numeric[x_name], numeric[y_name]),
                    ((y_name, x_name), numeric[y_name], numeric[x_name]),
                ):
                    reg = self._pairs.get(key)
                    if reg is None:
                        reg = self._pairs[key] = _PairwiseRegression()
                    reg.update(x, y)

    def predict_attribute(self, target: str, known: dict) -> Optional[float]:
        """Predict ``target`` from whichever known attribute explains it best.

        Best = the regression with the largest |slope|·spread signal among
        pairs with enough observations; returns None when nothing usable.
        """
        best: Optional[tuple[float, float]] = None  # (|cov|, prediction)
        for name, value in known.items():
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                continue
            reg = self._pairs.get((name, target))
            if reg is None or reg.n < self.min_observations:
                continue
            prediction = reg.predict(float(value))
            if prediction is None:
                continue
            strength = abs(reg.cov_xy)
            if best is None or strength > best[0]:
                best = (strength, prediction)
        return best[1] if best else None

    def known_relations(self) -> list[tuple]:
        """(x, y, slope) triples with enough support, for inspection."""
        out = []
        for (x_name, y_name), reg in sorted(self._pairs.items()):
            if reg.n >= self.min_observations and reg.slope is not None:
                out.append((x_name, y_name, reg.slope))
        return out


class NaiveBayesTypeClassifier:
    """Gaussian naive Bayes over numeric attributes, categorical counts over strings."""

    def __init__(self, smoothing: float = 1.0):
        self.smoothing = smoothing
        self._type_counts: dict[str, int] = {}
        #: type -> attribute -> (n, mean, m2) for numeric
        self._numeric: dict[str, dict] = {}
        #: type -> attribute -> value -> count for categorical
        self._categorical: dict[str, dict] = {}
        self.total = 0

    def observe(self, device_type: str, attributes: dict) -> None:
        self.total += 1
        self._type_counts[device_type] = self._type_counts.get(device_type, 0) + 1
        numeric = self._numeric.setdefault(device_type, {})
        categorical = self._categorical.setdefault(device_type, {})
        for name, value in attributes.items():
            if isinstance(value, bool) or isinstance(value, str):
                bucket = categorical.setdefault(name, {})
                bucket[str(value)] = bucket.get(str(value), 0) + 1
            elif isinstance(value, (int, float)):
                n, mean, m2 = numeric.get(name, (0, 0.0, 0.0))
                n += 1
                delta = float(value) - mean
                mean += delta / n
                m2 += delta * (float(value) - mean)
                numeric[name] = (n, mean, m2)

    def classify(self, attributes: dict) -> Optional[str]:
        """The most probable type, or None before any training."""
        scores = self.log_posteriors(attributes)
        if not scores:
            return None
        return max(sorted(scores), key=lambda t: scores[t])

    def log_posteriors(self, attributes: dict) -> dict:
        if self.total == 0:
            return {}
        scores = {}
        n_types = len(self._type_counts)
        for device_type, count in self._type_counts.items():
            log_p = math.log((count + self.smoothing)
                             / (self.total + self.smoothing * n_types))
            for name, value in attributes.items():
                log_p += self._feature_loglik(device_type, name, value)
            scores[device_type] = log_p
        return scores

    def _feature_loglik(self, device_type: str, name: str, value) -> float:
        if isinstance(value, bool) or isinstance(value, str):
            bucket = self._categorical.get(device_type, {}).get(name, {})
            total = sum(bucket.values())
            vocab = max(1, len(bucket))
            count = bucket.get(str(value), 0)
            return math.log((count + self.smoothing)
                            / (total + self.smoothing * vocab))
        if isinstance(value, (int, float)):
            stats = self._numeric.get(device_type, {}).get(name)
            if stats is None:
                return math.log(1e-6)
            n, mean, m2 = stats
            variance = m2 / (n - 1) if n > 1 else 1.0
            variance = max(variance, 1e-6)
            return (-0.5 * math.log(2 * math.pi * variance)
                    - (float(value) - mean) ** 2 / (2 * variance))
        raise LearningError(f"unsupported attribute type for {name!r}")

    def types(self) -> list[str]:
        return sorted(self._type_counts)
