"""Online learning primitives: running statistics, smoothing, perceptron."""

from __future__ import annotations

import math
from typing import Optional, Sequence

from repro.errors import LearningError


class RunningStats:
    """Welford's online mean/variance with min/max tracking."""

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf

    def update(self, value: float) -> None:
        if math.isnan(value):
            raise LearningError("RunningStats cannot ingest NaN")
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        self._min = min(self._min, value)
        self._max = max(self._max, value)

    @property
    def mean(self) -> float:
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        return self._m2 / (self.count - 1) if self.count > 1 else 0.0

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    @property
    def min(self) -> float:
        return self._min if self.count else 0.0

    @property
    def max(self) -> float:
        return self._max if self.count else 0.0

    def zscore(self, value: float) -> float:
        """Standard score of ``value`` against the running distribution.

        Returns 0 until there are at least two observations with spread.
        """
        sd = self.stddev
        if self.count < 2 or sd == 0.0:
            return 0.0
        return (value - self._mean) / sd

    def merge(self, other: "RunningStats") -> "RunningStats":
        """Chan's parallel merge; returns a new instance."""
        merged = RunningStats()
        if self.count == 0:
            merged.count, merged._mean, merged._m2 = other.count, other._mean, other._m2
        elif other.count == 0:
            merged.count, merged._mean, merged._m2 = self.count, self._mean, self._m2
        else:
            merged.count = self.count + other.count
            delta = other._mean - self._mean
            merged._mean = self._mean + delta * other.count / merged.count
            merged._m2 = (self._m2 + other._m2
                          + delta * delta * self.count * other.count / merged.count)
        merged._min = min(self._min, other._min)
        merged._max = max(self._max, other._max)
        return merged


class ExponentialSmoother:
    """First-order exponential smoothing."""

    def __init__(self, alpha: float = 0.3, initial: Optional[float] = None):
        if not 0.0 < alpha <= 1.0:
            raise LearningError("alpha must be in (0, 1]")
        self.alpha = alpha
        self.value = initial
        self.count = 0

    def update(self, observation: float) -> float:
        self.count += 1
        if self.value is None:
            self.value = observation
        else:
            self.value = self.alpha * observation + (1 - self.alpha) * self.value
        return self.value


class OnlinePerceptron:
    """Margin perceptron for binary classification of feature vectors.

    Labels are +1 / -1.  Deterministic given the update sequence — the
    poisoning experiments rely on replaying identical streams.
    """

    def __init__(self, n_features: int, learning_rate: float = 0.1,
                 margin: float = 0.0):
        if n_features < 1:
            raise LearningError("need at least one feature")
        if learning_rate <= 0:
            raise LearningError("learning_rate must be positive")
        self.weights = [0.0] * n_features
        self.bias = 0.0
        self.learning_rate = learning_rate
        self.margin = margin
        self.updates = 0
        self.samples_seen = 0

    def score(self, features: Sequence[float]) -> float:
        self._check(features)
        return sum(w * x for w, x in zip(self.weights, features)) + self.bias

    def predict(self, features: Sequence[float]) -> int:
        return 1 if self.score(features) >= 0 else -1

    def update(self, features: Sequence[float], label: int) -> bool:
        """One learning step; returns True when weights changed."""
        if label not in (1, -1):
            raise LearningError("labels must be +1 or -1")
        self.samples_seen += 1
        if label * self.score(features) > self.margin:
            return False
        step = self.learning_rate * label
        self.weights = [w + step * x for w, x in zip(self.weights, features)]
        self.bias += step
        self.updates += 1
        return True

    def fit(self, samples: Sequence[tuple], epochs: int = 1) -> int:
        """Train on (features, label) pairs; returns total weight updates."""
        total = 0
        for _ in range(epochs):
            for features, label in samples:
                if self.update(features, label):
                    total += 1
        return total

    def accuracy(self, samples: Sequence[tuple]) -> float:
        if not samples:
            return 0.0
        correct = sum(1 for features, label in samples
                      if self.predict(features) == label)
        return correct / len(samples)

    def _check(self, features: Sequence[float]) -> None:
        if len(features) != len(self.weights):
            raise LearningError(
                f"expected {len(self.weights)} features, got {len(features)}"
            )
