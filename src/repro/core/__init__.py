"""Core of the reproduction: the paper's device and policy model.

This package implements Figure 2 of the paper — a device is a set of
sensors and actuators with logic dictating behaviour, characterized by a
state vector — together with the event-condition-action policy machinery
of sections IV and V and the generative-policy architecture of section IV.
"""

from repro.core.actions import Action, ActionLibrary, Effect, noop_action
from repro.core.conditions import (
    AllOf,
    AnyOf,
    Comparison,
    Condition,
    EventFieldIs,
    EventKindIs,
    Not,
    TrueCondition,
    parse_condition,
)
from repro.core.device import Actuator, Device, Sensor
from repro.core.engine import Decision, PolicyEngine, Safeguard
from repro.core.events import Event
from repro.core.obligations import Obligation, ObligationManager, ObligationOntology
from repro.core.policy import Policy, PolicySet
from repro.core.state import DeviceState, StateSpace, StateVariable

__all__ = [
    "Action",
    "ActionLibrary",
    "Actuator",
    "AllOf",
    "AnyOf",
    "Comparison",
    "Condition",
    "Decision",
    "Device",
    "DeviceState",
    "Effect",
    "Event",
    "EventFieldIs",
    "EventKindIs",
    "Not",
    "Obligation",
    "ObligationManager",
    "ObligationOntology",
    "Policy",
    "PolicyEngine",
    "PolicySet",
    "Safeguard",
    "Sensor",
    "StateSpace",
    "StateVariable",
    "TrueCondition",
    "noop_action",
    "parse_condition",
]
