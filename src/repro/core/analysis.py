"""Static analysis over policy sets.

The sec VI-E legislature needs more than per-policy scope checks: before a
generated rule enters a device it is worth knowing what the *set* can do —
which actions each event can trigger, which policies are dead (shadowed by
an unconditional higher-priority rule on the same pattern), and where the
harm-tagged surface lives.  This module provides those answers without
executing anything.

Condition overlap is undecidable in general; shadowing detection is
therefore conservative (only *unconditional* dominators shadow), matching
the fail-closed stance of the rest of the library: analysis may miss a
dead policy but never mislabels a live one as dead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.core.conditions import TrueCondition
from repro.core.policy import Policy, PolicySet


@dataclass(frozen=True)
class ShadowFinding:
    """A policy that can never fire because another always wins first."""

    shadowed: str      # policy id
    dominator: str     # policy id
    reason: str


@dataclass
class PolicySetReport:
    """The full static-analysis result."""

    policy_count: int
    #: event pattern -> sorted action names that pattern can trigger
    action_surface: dict = field(default_factory=dict)
    #: actions carrying any of the audited tags, with the policies behind them
    tagged_actions: dict = field(default_factory=dict)
    shadowed: list = field(default_factory=list)
    conflicts: list = field(default_factory=list)   # (policy_id, policy_id)
    sources: dict = field(default_factory=dict)     # source -> count
    max_priority: int = 0

    def is_clean(self) -> bool:
        return not self.shadowed and not self.conflicts


def _patterns_overlap(first: str, second: str) -> bool:
    """Whether two event patterns can match a common event kind."""
    if first == "*" or second == "*":
        return True
    return (first == second
            or first.startswith(second + ".")
            or second.startswith(first + "."))


def analyze_policy_set(policies: PolicySet,
                       audit_tags: Iterable[str] = ("harm_human", "kinetic"),
                       ) -> PolicySetReport:
    """Run every static check over ``policies`` and return the report."""
    audit_tags = set(audit_tags)
    all_policies = list(policies)
    report = PolicySetReport(policy_count=len(all_policies))

    for policy in all_policies:
        report.sources[policy.source] = report.sources.get(policy.source, 0) + 1
        report.max_priority = max(report.max_priority, policy.priority)
        surface = report.action_surface.setdefault(policy.event_pattern, set())
        surface.add(policy.action.name)
        hit_tags = policy.action.tags & audit_tags
        if hit_tags:
            entry = report.tagged_actions.setdefault(policy.action.name, {
                "tags": sorted(hit_tags), "policies": [],
            })
            entry["policies"].append(policy.policy_id)

    report.action_surface = {
        pattern: sorted(actions)
        for pattern, actions in report.action_surface.items()
    }
    report.shadowed = find_shadowed(all_policies)
    report.conflicts = [
        (first.policy_id, second.policy_id)
        for first, second in policies.find_conflicts()
    ]
    return report


def find_shadowed(all_policies: list) -> list:
    """Conservative shadowing: an *unconditional* policy on an overlapping
    pattern with strictly higher priority always wins, so any overlapping
    lower-priority policy is dead."""
    findings = []
    unconditional = [
        policy for policy in all_policies
        if isinstance(policy.condition, TrueCondition)
    ]
    for dominator in unconditional:
        for policy in all_policies:
            if policy.policy_id == dominator.policy_id:
                continue
            if (policy.priority < dominator.priority
                    and _patterns_overlap(dominator.event_pattern,
                                          policy.event_pattern)
                    # The dominator's pattern must cover every event the
                    # shadowed policy could fire on.
                    and (dominator.event_pattern == "*"
                         or policy.event_pattern == dominator.event_pattern
                         or policy.event_pattern.startswith(
                             dominator.event_pattern + "."))):
                findings.append(ShadowFinding(
                    shadowed=policy.policy_id,
                    dominator=dominator.policy_id,
                    reason=(f"unconditional {dominator.policy_id!r} "
                            f"(prio {dominator.priority}) always wins on "
                            f"pattern {policy.event_pattern!r}"),
                ))
    return findings


def would_conflict(policies: PolicySet, candidate: Policy) -> Optional[str]:
    """Pre-admission check: would adding ``candidate`` create a same-
    priority actuator conflict with an existing policy?  Returns the
    conflicting policy id, or None.

    Used by the generative engine (``reject_conflicting=True``) so devices
    never install rules that fight over an actuator.
    """
    for existing in policies:
        if (existing.event_pattern == candidate.event_pattern
                and existing.priority == candidate.priority
                and existing.action.actuator == candidate.action.actuator
                and existing.action.actuator != ""
                and existing.action.name != candidate.action.name):
            return existing.policy_id
    return None
