"""Device state as a vector of declared variables (paper sec V).

"One way to characterize any such device is by its state, where the state
is defined as consisting of the values of a set of variables, where each
variable represents an attribute of the configuration of the sensors,
actuators or other aspects of the device."

:class:`StateSpace` declares the variables (with types and bounds);
:class:`DeviceState` is a point in that space that records its own
transition history so safeguards and auditors can inspect trajectories.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from repro.errors import StateBoundsError, UnknownVariableError
from repro.types import Value

_KIND_TYPES = {
    "float": (int, float),
    "int": (int,),
    "bool": (bool,),
    "str": (str,),
}


@dataclass(frozen=True)
class StateVariable:
    """Declaration of one state variable.

    ``kind`` is one of ``float``, ``int``, ``bool``, ``str``.  Numeric
    variables may declare ``low``/``high`` bounds; string variables may
    declare an ``allowed`` set.  Bounds are *physical* limits (what values
    are representable), not safety limits — safety is the classifier's job.
    """

    name: str
    kind: str = "float"
    default: Value = 0.0
    low: Optional[float] = None
    high: Optional[float] = None
    allowed: Optional[frozenset] = None
    description: str = ""

    def __post_init__(self):
        if self.kind not in _KIND_TYPES:
            raise StateBoundsError(f"unknown variable kind {self.kind!r}")
        object.__setattr__(self, "allowed",
                           frozenset(self.allowed) if self.allowed is not None else None)
        self.validate(self.default)

    def validate(self, value: Value) -> Value:
        """Check (and for int kinds, coerce) a candidate value; return it."""
        expected = _KIND_TYPES[self.kind]
        if self.kind != "bool" and isinstance(value, bool):
            raise StateBoundsError(f"{self.name}: bool given for {self.kind} variable")
        if not isinstance(value, expected):
            raise StateBoundsError(
                f"{self.name}: expected {self.kind}, got {type(value).__name__}"
            )
        if self.kind in ("float", "int"):
            if self.low is not None and value < self.low:
                raise StateBoundsError(f"{self.name}: {value} below bound {self.low}")
            if self.high is not None and value > self.high:
                raise StateBoundsError(f"{self.name}: {value} above bound {self.high}")
        if self.allowed is not None and value not in self.allowed:
            raise StateBoundsError(f"{self.name}: {value!r} not in allowed set")
        return value

    def clamp(self, value: float) -> float:
        """Clamp a numeric value into the declared bounds."""
        if self.kind not in ("float", "int"):
            raise StateBoundsError(f"{self.name}: clamp only applies to numeric kinds")
        if self.low is not None:
            value = max(self.low, value)
        if self.high is not None:
            value = min(self.high, value)
        return int(value) if self.kind == "int" else value


class StateSpace:
    """The declared set of variables for a device type."""

    def __init__(self, variables: Iterable[StateVariable]):
        self._vars: dict[str, StateVariable] = {}
        for var in variables:
            if var.name in self._vars:
                raise StateBoundsError(f"duplicate state variable {var.name!r}")
            self._vars[var.name] = var

    def __contains__(self, name: str) -> bool:
        return name in self._vars

    def __len__(self) -> int:
        return len(self._vars)

    def names(self) -> list[str]:
        return list(self._vars)

    def variable(self, name: str) -> StateVariable:
        try:
            return self._vars[name]
        except KeyError:
            raise UnknownVariableError(f"state variable {name!r} not declared") from None

    def variables(self) -> list[StateVariable]:
        return list(self._vars.values())

    def defaults(self) -> dict:
        return {name: var.default for name, var in self._vars.items()}

    def validate_vector(self, vector: dict) -> dict:
        """Validate a full or partial assignment; returns the same dict."""
        for name, value in vector.items():
            self.variable(name).validate(value)
        return vector

    def numeric_names(self) -> list[str]:
        return [n for n, v in self._vars.items() if v.kind in ("float", "int")]

    def merged(self, other: "StateSpace") -> "StateSpace":
        """A new space with this space's variables plus ``other``'s."""
        merged = dict(self._vars)
        for var in other.variables():
            if var.name in merged and merged[var.name] != var:
                raise StateBoundsError(f"conflicting declarations for {var.name!r}")
            merged[var.name] = var
        return StateSpace(merged.values())


class Transition:
    """One recorded state change (``changed`` maps name -> (old, new)).

    A plain ``__slots__`` class rather than a dataclass: one instance is
    allocated per state mutation, which makes construction cost part of
    the device-model hot loop (benchmark F2).
    """

    __slots__ = ("time", "cause", "changed")

    def __init__(self, time: float, cause: str, changed: Optional[dict] = None):
        self.time = time
        self.cause = cause
        self.changed = {} if changed is None else changed

    def __eq__(self, other) -> bool:
        return (isinstance(other, Transition)
                and self.time == other.time and self.cause == other.cause
                and self.changed == other.changed)

    def __repr__(self) -> str:
        return f"Transition(time={self.time!r}, cause={self.cause!r}, changed={self.changed!r})"


class DeviceState:
    """A mutable point in a :class:`StateSpace`, with transition history."""

    def __init__(self, space: StateSpace, initial: Optional[dict] = None,
                 history_limit: int = 1024):
        self.space = space
        self._values = space.defaults()
        self._history: list[Transition] = []
        self._history_limit = history_limit
        self.version = 0
        if initial:
            space.validate_vector(initial)
            for name, value in initial.items():
                self._values[name] = value

    def get(self, name: str) -> Value:
        if name not in self._values:
            raise UnknownVariableError(f"state variable {name!r} not declared")
        return self._values[name]

    def __getitem__(self, name: str) -> Value:
        return self.get(name)

    def set(self, name: str, value: Value, *, time: float = 0.0,
            cause: str = "direct") -> None:
        """Assign one variable (validated against its declaration)."""
        self.space.variable(name).validate(value)
        old = self._values[name]
        if old != value:
            self._values[name] = value
            self.version += 1
            history = self._history
            history.append(Transition(time, cause, {name: (old, value)}))
            if len(history) > self._history_limit:
                del history[: len(history) - self._history_limit]

    def apply(self, changes: dict, *, time: float = 0.0, cause: str = "direct") -> Transition:
        """Apply several assignments atomically; records one transition."""
        variable = self.space.variable
        for name, new in changes.items():
            variable(name).validate(new)
        values = self._values
        changed = {}
        for name, new in changes.items():
            old = values[name]
            if old != new:
                changed[name] = (old, new)
                values[name] = new
        transition = Transition(time, cause, changed)
        if changed:
            self.version += 1
            history = self._history
            history.append(transition)
            if len(history) > self._history_limit:
                del history[: len(history) - self._history_limit]
        return transition

    def snapshot(self) -> dict:
        """A defensive copy of the current state vector."""
        return dict(self._values)

    def peek(self) -> dict:
        """The live state vector itself — strictly read-only.

        The policy-engine hot path (policy selection, effect prediction)
        reads the vector once per event; copying it each time dominated
        the F2 loop.  Callers must not mutate the returned dict; use
        :meth:`snapshot` for a safe copy.
        """
        return self._values

    def history(self) -> list[Transition]:
        return list(self._history)

    def numeric_vector(self) -> dict:
        """Only the numeric variables (used by utility functions, sec VII)."""
        return {n: self._values[n] for n in self.space.numeric_names()}

    def clamp_changes(self, changes: dict) -> dict:
        """Saturate numeric assignments at the declared physical bounds.

        Actuators model physical quantities: a heater pushing temp past its
        representable maximum pins it there rather than erroring.  The
        engine clamps every action effect through this before predicting
        or applying.
        """
        clamped = {}
        for name, value in changes.items():
            variable = self.space.variable(name)
            if (variable.kind in ("float", "int")
                    and isinstance(value, (int, float))
                    and not isinstance(value, bool)):
                clamped[name] = variable.clamp(value)
            else:
                clamped[name] = value
        return clamped

    def resolve_changes(self, effects) -> dict:
        """Resolve declared effects against the current vector, clamped.

        Semantically equivalent to
        ``clamp_changes(action.predicted_changes(peek()))`` but in one
        pass touching only the affected variables — effects compose
        unclamped (matching :meth:`Action.predicted_changes`) and the
        final value of each variable is then saturated at its physical
        bounds.  This is the per-event path of the policy engine
        (benchmark F2); raises :class:`UnknownVariableError` for effects
        on undeclared variables, like :meth:`clamp_changes`.
        """
        if not effects:
            return {}
        values = self._values
        overlay: dict = {}
        for effect in effects:
            name = effect.variable
            if name not in overlay and name in values:
                overlay[name] = values[name]
            effect.apply_to(overlay)
        variable = self.space.variable
        out: dict = {}
        for name, new in overlay.items():
            var = variable(name)
            if (var.kind in ("float", "int")
                    and isinstance(new, (int, float))
                    and not isinstance(new, bool)):
                if var.low is not None and new < var.low:
                    new = var.low
                if var.high is not None and new > var.high:
                    new = var.high
                if var.kind == "int":
                    new = int(new)
            else:
                # Non-numeric assignments are validated here (numeric ones
                # are in-bounds by construction after clamping), so the
                # result is safe for :meth:`apply_resolved`.
                var.validate(new)
            if values.get(name) != new:
                out[name] = new
        return out

    def apply_resolved(self, changes: dict, *, time: float = 0.0,
                       cause: str = "direct") -> Transition:
        """Apply changes produced by :meth:`resolve_changes`, skipping
        re-validation (they are in-bounds by construction).  Same atomic
        semantics and history recording as :meth:`apply`."""
        values = self._values
        changed = {}
        for name, new in changes.items():
            old = values[name]
            if old != new:
                changed[name] = (old, new)
                values[name] = new
        transition = Transition(time, cause, changed)
        if changed:
            self.version += 1
            history = self._history
            history.append(transition)
            if len(history) > self._history_limit:
                del history[: len(history) - self._history_limit]
        return transition

    def predict(self, changes: dict) -> dict:
        """The vector that *would* result from ``changes``, without mutating.

        This is the basis of the sec VI-B state-space check: the guard
        evaluates the predicted vector before the transition is allowed.
        """
        self.space.validate_vector(changes)
        predicted = dict(self._values)
        predicted.update(changes)
        return predicted


#: A safeness function maps a state vector to a score in [0, 1]
#: (1 = maximally safe).  See ``repro.statespace.classifier`` for the
#: concrete classifiers built on top of this signature.
SafenessFn = Callable[[dict], float]


def distance(a: dict, b: dict, names: Optional[Iterable[str]] = None) -> float:
    """Euclidean distance between two vectors over shared numeric variables."""
    keys = list(names) if names is not None else [
        k for k in a if k in b and isinstance(a[k], (int, float))
        and not isinstance(a[k], bool)
    ]
    total = 0.0
    for key in keys:
        diff = float(a[key]) - float(b[key])
        total += diff * diff
    return total ** 0.5
