"""The generative policy architecture (paper sec IV).

"a human manager provides two types of information to each device.  The
first type ... specifies what the device can expect to see in its
environment, in particular the other types of devices that would be
encountered and their attributes.  The second type ... provides directions
indicating what kinds of policies it should generate as new devices are
discovered ...  The former is specified by means of an interaction graph,
the latter by means of a policy generator grammar or a policy template."
"""

from repro.core.generative.generator import GenerativePolicyEngine
from repro.core.generative.grammar import PolicyGrammar, parse_policy_spec
from repro.core.generative.interaction_graph import (
    DeviceTypeNode,
    InteractionEdge,
    InteractionGraph,
)
from repro.core.generative.refinement import PolicyRefinement, serialize_policy
from repro.core.generative.templates import PolicyTemplate, TemplateRegistry

__all__ = [
    "DeviceTypeNode",
    "GenerativePolicyEngine",
    "InteractionEdge",
    "InteractionGraph",
    "PolicyGrammar",
    "PolicyRefinement",
    "PolicyTemplate",
    "TemplateRegistry",
    "parse_policy_spec",
    "serialize_policy",
]
