"""Learning-based refinement of the generative architecture (paper sec IV).

"they can augment the information provided by the human manager on their
own.  They can use unsupervised machine learning techniques to add or
remove from the types of devices that the human has specified, learn the
relationship between the attributes they see among the devices in the
system and create predictive models of those relationships, share the
information and policies they generate with other devices..."

:class:`PolicyRefinement` bundles those three augmentations: type
inference for unknown discoveries, attribute-relationship learning for
predicting unannounced attributes, and gossip-based policy sharing with
optional governance review on installation.
"""

from __future__ import annotations

from typing import Optional

from repro.core.device import Device
from repro.core.policy import Policy
from repro.errors import PolicyError
from repro.learning.predictive import AttributeRelationshipModel, NaiveBayesTypeClassifier
from repro.types import Verdict


def serialize_policy(policy: Policy) -> dict:
    """A gossip-able representation of a policy.

    Requires the policy to carry its condition string in metadata (the
    template and grammar paths both stamp ``condition_str``); AST-only
    conditions are not shareable, which keeps shared policies inside the
    parseable (auditable) language.
    """
    condition_str = policy.metadata.get("condition_str")
    if condition_str is None:
        raise PolicyError(
            f"policy {policy.policy_id} has no condition_str metadata; "
            "only grammar/template policies can be shared"
        )
    return {
        "policy_id": policy.policy_id,
        "event_pattern": policy.event_pattern,
        "condition_str": condition_str,
        "action_name": policy.action.name,
        "action_params": {
            key: value for key, value in policy.action.params.items()
            if not key.startswith("_")
        },
        "priority": policy.priority,
        "author": policy.author,
    }


def deserialize_policy(spec: dict, device: Device) -> Policy:
    """Rebuild a shared policy against the *receiving* device's library."""
    base_action = device.engine.actions.get(spec["action_name"])
    policy = Policy.make(
        event_pattern=spec["event_pattern"],
        condition=spec["condition_str"] or None,
        action=base_action.with_params(**spec.get("action_params", {})),
        priority=int(spec.get("priority", 0)),
        source="shared",
        author=str(spec.get("author", "")),
        policy_id=f"shared:{spec['policy_id']}:{device.device_id}",
        condition_str=spec["condition_str"],
        shared_from=spec["policy_id"],
    )
    traced = policy.action.with_params(
        _policy_id=policy.policy_id, _policy_source=policy.source,
    )
    return Policy(
        policy_id=policy.policy_id, event_pattern=policy.event_pattern,
        condition=policy.condition, action=traced, priority=policy.priority,
        source=policy.source, author=policy.author, metadata=policy.metadata,
    )


class PolicyRefinement:
    """Type inference, attribute prediction, and policy sharing."""

    def __init__(self, min_type_observations: int = 3,
                 governance=None):
        self.type_classifier = NaiveBayesTypeClassifier()
        self.attribute_model = AttributeRelationshipModel()
        self.min_type_observations = min_type_observations
        self.governance = governance
        self.shared_installed = 0
        self.shared_rejected = 0

    # -- learning from discoveries -----------------------------------------------

    def observe_discovery(self, record: dict) -> None:
        device_type = record.get("device_type", "")
        attributes = record.get("attributes", {})
        if device_type:
            self.type_classifier.observe(device_type, attributes)
        self.attribute_model.observe(attributes)

    def infer_type(self, record: dict) -> Optional[str]:
        """Best-guess type for an unknown discovery, or None if unconfident."""
        if self.type_classifier.total < self.min_type_observations:
            return None
        return self.type_classifier.classify(record.get("attributes", {}))

    def predict_attribute(self, target: str, known: dict) -> Optional[float]:
        return self.attribute_model.predict_attribute(target, known)

    # -- policy sharing ---------------------------------------------------------------

    def share(self, gossip_node, policy: Policy) -> None:
        """Publish a policy onto the gossip mesh."""
        gossip_node.publish(f"policy:{policy.policy_id}", serialize_policy(policy))

    def installer(self, device: Device, time_fn=None):
        """A gossip ``on_update`` callback that installs shared policies.

        Each incoming policy is rebuilt against the device's own action
        library and, when governance is configured, reviewed before
        installation — shared malevolent policies die here in E10.
        """
        clock = time_fn or (lambda: 0.0)

        def on_update(item) -> None:
            if not item.key.startswith("policy:"):
                return
            try:
                policy = deserialize_policy(item.payload, device)
            except PolicyError:
                self.shared_rejected += 1
                return
            if self.governance is not None:
                decision = self.governance.review(
                    policy, proposer=item.origin, time=clock(),
                )
                if decision.final != Verdict.APPROVE:
                    self.shared_rejected += 1
                    return
            device.engine.policies.replace(policy)
            self.shared_installed += 1

        return on_update
