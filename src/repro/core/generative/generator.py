"""The generative policy engine (paper sec IV).

"Based on these two classes of information [interaction graph + templates/
grammar], devices discover other devices in the system and decide on the
policies to be used in their interaction with those devices."

On every discovery the engine looks up the interaction edges between the
observer's type and the discovered type, instantiates the referenced
templates with the discovery context, optionally routes each candidate
policy through the sec VI-E governance review, and installs the approved
ones into the observer's policy set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.device import Device
from repro.core.generative.interaction_graph import InteractionGraph
from repro.core.generative.templates import TemplateRegistry
from repro.core.policy import Policy
from repro.errors import TemplateError
from repro.types import Verdict


@dataclass
class GenerationRecord:
    """Audit record of one discovery-driven generation."""

    time: float
    observer: str
    discovered: str
    discovered_type: str
    generated: list = field(default_factory=list)   # policy ids installed
    rejected: list = field(default_factory=list)    # (policy_id, reason)
    problems: list = field(default_factory=list)    # record-validation issues


class GenerativePolicyEngine:
    """Per-fleet generative policy machinery."""

    def __init__(
        self,
        graph: InteractionGraph,
        templates: TemplateRegistry,
        governance=None,
        refinement=None,
        clock=None,
        reject_conflicting: bool = False,
        tracer=None,
    ):
        """``governance`` is an optional
        :class:`~repro.safeguards.governance.GovernanceSystem`; when set,
        generated policies are installed only if the tripartite review
        approves.  ``refinement`` is an optional
        :class:`~repro.core.generative.refinement.PolicyRefinement` used to
        infer types absent from the interaction graph.  ``clock`` supplies
        the current simulated time for records.  ``tracer`` (a
        :class:`~repro.telemetry.spans.Tracer`) stamps each installed
        policy with a causal span context, so decisions made under a
        generated policy explain back to the discovery that produced it."""
        self.graph = graph
        self.templates = templates
        self.governance = governance
        self.refinement = refinement
        self.clock = clock or (lambda: 0.0)
        self.tracer = tracer
        self.reject_conflicting = reject_conflicting
        self.devices: dict[str, Device] = {}
        self.records: list[GenerationRecord] = []
        self.policies_generated = 0
        self.policies_rejected = 0
        #: Called with (device, policy) after every approved installation —
        #: watchdogs hook this to re-baseline integrity attestation, since a
        #: legitimately generated policy changes the device's logic hash.
        self.on_install = None

    # -- wiring ------------------------------------------------------------------

    def manage(self, device: Device) -> None:
        """Put a device under generative management."""
        self.devices[device.device_id] = device

    def discovery_callback(self):
        """A callback suitable for ``DiscoveryService.join``/``subscribe``."""
        def on_discovery(observer_id: str, record: dict) -> None:
            self.handle_discovery(observer_id, record)
        return on_discovery

    # -- the core flow --------------------------------------------------------------

    def handle_discovery(self, observer_id: str, record: dict) -> GenerationRecord:
        """Generate and install policies for one discovery."""
        time = self.clock()
        observer = self.devices.get(observer_id)
        generation = GenerationRecord(
            time=time,
            observer=observer_id,
            discovered=str(record.get("device_id", "")),
            discovered_type=str(record.get("device_type", "")),
        )
        self.records.append(generation)
        if observer is None:
            generation.problems.append("observer not under generative management")
            return generation

        generation.problems.extend(self.graph.validate_record(record))
        discovered_type = generation.discovered_type
        if not self.graph.knows_type(discovered_type):
            inferred = None
            if self.refinement is not None:
                inferred = self.refinement.infer_type(record)
            if inferred is None:
                return generation
            generation.problems.append(
                f"type {discovered_type!r} unknown; inferred {inferred!r}"
            )
            discovered_type = inferred

        if self.refinement is not None:
            self.refinement.observe_discovery(record)

        edges = self.graph.interactions_for(observer.device_type, discovered_type)
        context = self._context(observer, record)
        for edge in edges:
            for template_id in edge.template_ids:
                self._instantiate(observer, template_id, context, generation)
        return generation

    def _context(self, observer: Device, record: dict) -> dict:
        context = {
            "peer_id": record.get("device_id", ""),
            "peer_type": record.get("device_type", ""),
            "peer_org": record.get("organization", ""),
            "observer_id": observer.device_id,
            "observer_org": observer.organization,
        }
        for name, value in record.get("attributes", {}).items():
            context[f"peer_{name}"] = value
        for name, value in observer.attributes.items():
            context[f"my_{name}"] = value
        return context

    def _instantiate(self, observer: Device, template_id: str, context: dict,
                     generation: GenerationRecord) -> Optional[Policy]:
        try:
            template = self.templates.get(template_id)
            policy = template.instantiate(context, observer.engine.actions)
        except TemplateError as exc:
            generation.rejected.append((template_id, str(exc)))
            self.policies_rejected += 1
            return None
        if self.reject_conflicting:
            from repro.core.analysis import would_conflict

            conflicting = would_conflict(observer.engine.policies, policy)
            if conflicting is not None:
                generation.rejected.append(
                    (policy.policy_id, f"conflicts with {conflicting}")
                )
                self.policies_rejected += 1
                return None
        if self.governance is not None:
            decision = self.governance.review(
                policy, proposer=observer.device_id, time=generation.time,
            )
            if decision.final != Verdict.APPROVE:
                generation.rejected.append((policy.policy_id, "governance rejected"))
                self.policies_rejected += 1
                return None
        observer.engine.policies.replace(policy)
        generation.generated.append(policy.policy_id)
        self.policies_generated += 1
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            # Generated policies are fresh objects per device, so stamping
            # the policy itself (unlike attack implants) is safe and makes
            # later decisions under it causally explainable.
            span = tracer.start_span(
                "policy.generate", observer.device_id, generation.time,
                parent=tracer.active_context(), policy=policy.policy_id,
                template=template_id, discovered=generation.discovered)
            policy.metadata["trace_context"] = span.context
        if self.on_install is not None:
            self.on_install(observer, policy)
        return policy

    # -- reporting --------------------------------------------------------------------

    def generated_for(self, device_id: str) -> list[str]:
        out = []
        for record in self.records:
            if record.observer == device_id:
                out.extend(record.generated)
        return out

    def coverage(self) -> dict:
        """observer_id -> number of distinct peers policies were generated for."""
        seen: dict[str, set] = {}
        for record in self.records:
            if record.generated:
                seen.setdefault(record.observer, set()).add(record.discovered)
        return {observer: len(peers) for observer, peers in seen.items()}
