"""Policy-generator grammar (paper sec IV).

The paper's second mechanism for telling devices "what kinds of policies
[they] should generate": a context-free grammar whose terminal strings are
policy specifications in a small DSL::

    on <event-pattern> if <condition> do <action> prio <n>

:class:`PolicyGrammar` enumerates the language breadth-first (bounded),
and :func:`parse_policy_spec` turns each spec into a
:class:`~repro.core.policy.Policy`.  The grammar bounds the policy space a
device can generate — a structural safety property: nothing outside the
language can ever be generated, no matter what the device learns.
"""

from __future__ import annotations

import re
from collections import deque
from typing import Iterable, Optional

from repro.core.actions import ActionLibrary
from repro.core.policy import Policy
from repro.errors import GrammarError

#: Non-terminals are written <LikeThis> in production bodies.
_NONTERMINAL = re.compile(r"^<([A-Za-z_][A-Za-z0-9_]*)>$")

_SPEC = re.compile(
    r"^on\s+(?P<event>\S+)"
    r"(?:\s+if\s+(?P<condition>.+?))?"
    r"\s+do\s+(?P<action>\S+)"
    r"(?:\s+prio\s+(?P<priority>-?\d+))?$"
)


class PolicyGrammar:
    """A CFG over policy-spec strings.

    ``productions`` maps a non-terminal name (without angle brackets) to a
    list of alternatives; each alternative is a list of tokens, where a
    token ``<Name>`` references a non-terminal and anything else is a
    terminal fragment.  Terminal fragments are joined with single spaces.
    """

    def __init__(self, productions: dict, start: str = "Policy"):
        if start not in productions:
            raise GrammarError(f"start symbol {start!r} has no productions")
        self.productions = {
            symbol: [list(alternative) for alternative in alternatives]
            for symbol, alternatives in productions.items()
        }
        self.start = start
        self._validate()

    def _validate(self) -> None:
        for symbol, alternatives in self.productions.items():
            if not alternatives:
                raise GrammarError(f"symbol {symbol!r} has no alternatives")
            for alternative in alternatives:
                for token in alternative:
                    match = _NONTERMINAL.match(token)
                    if match and match.group(1) not in self.productions:
                        raise GrammarError(
                            f"symbol {symbol!r} references undefined "
                            f"non-terminal {token}"
                        )

    def enumerate(self, max_specs: int = 1000, max_depth: int = 12) -> list[str]:
        """Breadth-first enumeration of up to ``max_specs`` terminal strings.

        Depth counts non-terminal expansions along a sentential form's
        history; forms exceeding ``max_depth`` are pruned, guaranteeing
        termination on recursive grammars.
        """
        results: list[str] = []
        seen: set = set()
        queue: deque = deque()
        queue.append(([f"<{self.start}>"], 0))
        while queue and len(results) < max_specs:
            form, depth = queue.popleft()
            expand_at = next(
                (index for index, token in enumerate(form)
                 if _NONTERMINAL.match(token)),
                None,
            )
            if expand_at is None:
                spec = " ".join(form)
                if spec not in seen:
                    seen.add(spec)
                    results.append(spec)
                continue
            if depth >= max_depth:
                continue
            symbol = _NONTERMINAL.match(form[expand_at]).group(1)
            for alternative in self.productions[symbol]:
                new_form = form[:expand_at] + alternative + form[expand_at + 1:]
                queue.append((new_form, depth + 1))
        return results

    def generate_policies(self, actions: ActionLibrary,
                          max_specs: int = 1000,
                          author: str = "grammar",
                          context: Optional[dict] = None) -> list[Policy]:
        """Enumerate the language and parse every spec into a policy.

        ``context`` optionally fills ``{slot}`` placeholders in the specs
        before parsing.  Specs naming unknown actions raise — a grammar
        must only reference the device's real action library.
        """
        policies = []
        for spec in self.enumerate(max_specs=max_specs):
            if context:
                try:
                    spec = spec.format(**context)
                except (KeyError, IndexError) as exc:
                    raise GrammarError(f"unfilled slot in spec {spec!r}: {exc}") from None
            policies.append(parse_policy_spec(spec, actions, author=author))
        if not policies:
            raise GrammarError("grammar generated no policies")
        return policies

    def language_size(self, cap: int = 10000) -> int:
        """|language| up to ``cap`` (for the E9 scalability sweep)."""
        return len(self.enumerate(max_specs=cap))


def parse_policy_spec(spec: str, actions: ActionLibrary,
                      author: str = "grammar") -> Policy:
    """Parse ``on <event> [if <condition>] do <action> [prio <n>]``."""
    match = _SPEC.match(spec.strip())
    if match is None:
        raise GrammarError(f"malformed policy spec: {spec!r}")
    action = actions.get(match.group("action"))
    priority = int(match.group("priority") or 0)
    condition = match.group("condition")
    policy = Policy.make(
        event_pattern=match.group("event"),
        condition=condition,
        action=action,
        priority=priority,
        source="generated",
        author=author,
        spec=spec,
        condition_str=condition or "",
    )
    traced = policy.action.with_params(
        _policy_id=policy.policy_id, _policy_source=policy.source,
    )
    return Policy(
        policy_id=policy.policy_id, event_pattern=policy.event_pattern,
        condition=policy.condition, action=traced, priority=policy.priority,
        source=policy.source, author=policy.author, metadata=policy.metadata,
    )


def default_dispatch_grammar(event_kinds: Iterable[str],
                             action_names: Iterable[str],
                             thresholds: Iterable[int] = (20, 50, 80)) -> PolicyGrammar:
    """A small illustrative grammar: react to events when fuel allows.

    Language: ``on <event> if fuel > <t> do <action> prio 3`` for every
    combination — the kind of bounded policy space a human manager would
    hand a surveillance drone.
    """
    return PolicyGrammar({
        "Policy": [["on", "<Event>", "if", "<Condition>", "do", "<Action>",
                    "prio", "3"]],
        "Event": [[kind] for kind in event_kinds],
        "Condition": [["fuel", ">", str(threshold)] for threshold in thresholds],
        "Action": [[name] for name in action_names],
    })
