"""The interaction graph the human manager provides (paper sec IV).

Nodes declare the device *types* a device can expect to encounter and
their expected attributes; edges declare which interactions matter and
which policy templates should be instantiated when a device of one type
discovers a device of another.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class DeviceTypeNode:
    """One expected device type.

    ``expected_attributes`` maps attribute name -> kind ("float", "int",
    "bool", "str"); discovery records are validated against it so devices
    notice when the environment diverges from what the human described.
    """

    type_name: str
    expected_attributes: tuple = ()   # tuple of (name, kind)
    description: str = ""

    @staticmethod
    def make(type_name: str, description: str = "", **attributes) -> "DeviceTypeNode":
        return DeviceTypeNode(
            type_name=type_name,
            expected_attributes=tuple(sorted(attributes.items())),
            description=description,
        )

    def attribute_kinds(self) -> dict:
        return dict(self.expected_attributes)


@dataclass(frozen=True)
class InteractionEdge:
    """Observer-type -> discovered-type interaction.

    ``template_ids`` name the policy templates the observer instantiates
    when it discovers a device of ``discovered_type``.  ``relationship``
    is a human-readable label ("dispatches", "supports", "monitors").
    """

    observer_type: str
    discovered_type: str
    relationship: str
    template_ids: tuple = ()

    def __post_init__(self):
        object.__setattr__(self, "template_ids", tuple(self.template_ids))


class InteractionGraph:
    """The full environment description handed to every device."""

    def __init__(self) -> None:
        self._types: dict[str, DeviceTypeNode] = {}
        self._edges: list[InteractionEdge] = []

    # -- construction -----------------------------------------------------------

    def add_type(self, node: DeviceTypeNode) -> None:
        if node.type_name in self._types:
            raise ConfigurationError(f"duplicate type {node.type_name!r}")
        self._types[node.type_name] = node

    def add_interaction(self, edge: InteractionEdge) -> None:
        for type_name in (edge.observer_type, edge.discovered_type):
            if type_name not in self._types:
                raise ConfigurationError(
                    f"interaction references undeclared type {type_name!r}"
                )
        self._edges.append(edge)

    def extend_type(self, node: DeviceTypeNode) -> None:
        """Add-or-replace a type: the sec IV learned augmentation path
        ("add or remove from the types of devices that the human has
        specified")."""
        self._types[node.type_name] = node

    def remove_type(self, type_name: str) -> None:
        self._types.pop(type_name, None)
        self._edges = [
            edge for edge in self._edges
            if type_name not in (edge.observer_type, edge.discovered_type)
        ]

    # -- queries --------------------------------------------------------------------

    def knows_type(self, type_name: str) -> bool:
        return type_name in self._types

    def type_node(self, type_name: str) -> Optional[DeviceTypeNode]:
        return self._types.get(type_name)

    def types(self) -> list[str]:
        return sorted(self._types)

    def interactions_for(self, observer_type: str,
                         discovered_type: str) -> list[InteractionEdge]:
        return [
            edge for edge in self._edges
            if edge.observer_type == observer_type
            and edge.discovered_type == discovered_type
        ]

    def edges_from(self, observer_type: str) -> list[InteractionEdge]:
        return [edge for edge in self._edges if edge.observer_type == observer_type]

    def all_edges(self) -> list[InteractionEdge]:
        return list(self._edges)

    def validate_record(self, record: dict) -> list[str]:
        """Mismatches between a discovery record and the declared type.

        Returns human-readable problems (empty list = conforming record).
        Unknown types are reported as one problem — the trigger for the
        refinement engine's type inference.
        """
        problems = []
        type_name = record.get("device_type", "")
        node = self._types.get(type_name)
        if node is None:
            return [f"unknown device type {type_name!r}"]
        kinds = {"float": (int, float), "int": (int,), "bool": (bool,), "str": (str,)}
        attributes = record.get("attributes", {})
        for name, kind in node.attribute_kinds().items():
            if name not in attributes:
                problems.append(f"missing expected attribute {name!r}")
                continue
            value = attributes[name]
            expected = kinds.get(kind, (object,))
            if kind != "bool" and isinstance(value, bool):
                problems.append(f"attribute {name!r}: bool where {kind} expected")
            elif not isinstance(value, expected):
                problems.append(
                    f"attribute {name!r}: {type(value).__name__} where {kind} expected"
                )
        return problems
