"""Policy templates (paper sec IV).

A template is a parameterized ECA rule with typed slots; when a device
discovers a peer, the generative engine fills the slots from the discovery
context (peer id, peer attributes, observer attributes) and installs the
resulting policy.  Slots use ``{name}`` placeholders in the event pattern
and condition string, and ``$name`` references in action params (so a
whole typed value — not its string form — can be passed through).
"""

from __future__ import annotations

import string
from dataclasses import dataclass
from typing import Optional

from repro.core.actions import ActionLibrary
from repro.core.policy import Policy
from repro.errors import TemplateError


def _fill(template: str, context: dict, what: str) -> str:
    try:
        return string.Formatter().vformat(template, (), _Strict(context))
    except KeyError as exc:
        raise TemplateError(f"{what}: unfilled slot {exc.args[0]!r}") from None


class _Strict(dict):
    def __missing__(self, key):
        raise KeyError(key)


@dataclass(frozen=True)
class PolicyTemplate:
    """One parameterized ECA rule."""

    template_id: str
    event_pattern: str
    condition_template: str       # "" means unconditional
    action_name: str
    action_params: tuple = ()     # tuple of (param, value-or-"$slot")
    priority: int = 0
    description: str = ""

    @staticmethod
    def make(template_id: str, event_pattern: str, condition: str,
             action_name: str, *, priority: int = 0, description: str = "",
             **action_params) -> "PolicyTemplate":
        return PolicyTemplate(
            template_id=template_id,
            event_pattern=event_pattern,
            condition_template=condition,
            action_name=action_name,
            action_params=tuple(sorted(action_params.items())),
            priority=priority,
            description=description,
        )

    def required_slots(self) -> set:
        """Every ``{slot}`` / ``$slot`` name the template needs filled."""
        slots = set()
        for text in (self.event_pattern, self.condition_template):
            for _literal, name, _spec, _conv in string.Formatter().parse(text):
                if name:
                    slots.add(name)
        for _param, value in self.action_params:
            if isinstance(value, str) and value.startswith("$"):
                slots.add(value[1:])
        return slots

    def instantiate(self, context: dict, actions: ActionLibrary,
                    policy_id: Optional[str] = None,
                    author: str = "generative") -> Policy:
        """Fill the slots from ``context`` and build the policy.

        The resulting action carries ``_policy_id``/``_policy_source``
        params so the sec VI-E governance guard can gate it at runtime.
        """
        event_pattern = _fill(self.event_pattern, context,
                              f"template {self.template_id} event")
        condition = _fill(self.condition_template, context,
                          f"template {self.template_id} condition")
        base_action = actions.get(self.action_name)
        params = {}
        for param, value in self.action_params:
            if isinstance(value, str) and value.startswith("$"):
                slot = value[1:]
                if slot not in context:
                    raise TemplateError(
                        f"template {self.template_id}: unfilled slot {slot!r}"
                    )
                params[param] = context[slot]
            elif isinstance(value, str):
                params[param] = _fill(value, context,
                                      f"template {self.template_id} param {param}")
            else:
                params[param] = value
        policy = Policy.make(
            event_pattern=event_pattern,
            condition=condition or None,
            action=base_action.with_params(**params),
            priority=self.priority,
            source="generated",
            author=author,
            policy_id=policy_id,
            template_id=self.template_id,
            condition_str=condition,
        )
        # Stamp governance-traceability params onto the action.
        traced = policy.action.with_params(
            _policy_id=policy.policy_id, _policy_source=policy.source,
        )
        return Policy(
            policy_id=policy.policy_id,
            event_pattern=policy.event_pattern,
            condition=policy.condition,
            action=traced,
            priority=policy.priority,
            source=policy.source,
            author=policy.author,
            metadata=policy.metadata,
        )


class TemplateRegistry:
    """Named collection of templates referenced by interaction-graph edges."""

    def __init__(self, templates=()):
        self._templates: dict[str, PolicyTemplate] = {}
        for template in templates:
            self.add(template)

    def add(self, template: PolicyTemplate) -> None:
        if template.template_id in self._templates:
            raise TemplateError(f"duplicate template {template.template_id!r}")
        self._templates[template.template_id] = template

    def get(self, template_id: str) -> PolicyTemplate:
        try:
            return self._templates[template_id]
        except KeyError:
            raise TemplateError(f"unknown template {template_id!r}") from None

    def __contains__(self, template_id: str) -> bool:
        return template_id in self._templates

    def __len__(self) -> int:
        return len(self._templates)

    def ids(self) -> list[str]:
        return sorted(self._templates)
