"""Condition expressions for event-condition-action policies.

The paper (sec IV) defines a policy as "an event-condition-action rule
directing the devices to take specific actions when an event happens and
the conditions specified hold true."  Conditions here are a small AST
evaluated against ``(state_vector, event)``; a string front-end
(:func:`parse_condition`) accepts expressions such as::

    temp > 80 and mode == 'patrol'
    not (fuel < 10) or event.value >= 3

``event.<field>`` reads from the triggering event's payload.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.events import Event
from repro.errors import ConditionEvalError, ConditionParseError

_OPS = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "in": lambda a, b: a in b,
}


class Condition:
    """Base class: subclasses implement :meth:`evaluate`."""

    def evaluate(self, state: dict, event: Optional[Event] = None) -> bool:
        raise NotImplementedError

    def variables(self) -> set:
        """Names of state variables this condition reads (for analysis)."""
        return set()

    # Conditions compose with &, |, ~ for convenience in generated code.
    def __and__(self, other: "Condition") -> "Condition":
        return AllOf([self, other])

    def __or__(self, other: "Condition") -> "Condition":
        return AnyOf([self, other])

    def __invert__(self) -> "Condition":
        return Not(self)


@dataclass(frozen=True)
class TrueCondition(Condition):
    """Always holds — for unconditional policies."""

    def evaluate(self, state: dict, event: Optional[Event] = None) -> bool:
        return True

    def __repr__(self) -> str:
        return "true"


@dataclass(frozen=True)
class Comparison(Condition):
    """``<operand> <op> <operand>`` where operands are variables or literals.

    A string operand is treated as a state-variable reference when it is
    declared in the state vector at evaluation time, with the prefixes
    ``event.`` reading from the event payload; literals are wrapped via
    :class:`Literal` by the parser.
    """

    left: object
    op: str
    right: object

    def __post_init__(self):
        if self.op not in _OPS:
            raise ConditionParseError(f"unknown operator {self.op!r}")
        # Cache the comparator: conditions evaluate once per delivered
        # event, so the per-call _OPS lookup is paid at parse time instead.
        object.__setattr__(self, "_compare", _OPS[self.op])

    def _resolve(self, operand, state: dict, event: Optional[Event]):
        if isinstance(operand, Literal):
            return operand.value
        if isinstance(operand, str):
            if operand.startswith("event."):
                if event is None:
                    raise ConditionEvalError(
                        f"condition reads {operand!r} but no event is in scope"
                    )
                field = operand[len("event."):]
                if field == "kind":
                    return event.kind
                if field == "source":
                    return event.source
                if field not in event.payload:
                    raise ConditionEvalError(f"event payload has no field {field!r}")
                return event.payload[field]
            if operand not in state:
                raise ConditionEvalError(f"unknown state variable {operand!r}")
            return state[operand]
        return operand

    def evaluate(self, state: dict, event: Optional[Event] = None) -> bool:
        left = self._resolve(self.left, state, event)
        right = self._resolve(self.right, state, event)
        try:
            return bool(self._compare(left, right))
        except TypeError as exc:
            raise ConditionEvalError(
                f"cannot compare {left!r} {self.op} {right!r}: {exc}"
            ) from None

    def variables(self) -> set:
        out = set()
        for operand in (self.left, self.right):
            if isinstance(operand, str) and not operand.startswith("event."):
                out.add(operand)
        return out

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


@dataclass(frozen=True)
class Literal:
    """A constant operand inside a :class:`Comparison`."""

    value: object


@dataclass(frozen=True)
class EventKindIs(Condition):
    """Holds when the triggering event's kind matches a dotted prefix."""

    pattern: str

    def evaluate(self, state: dict, event: Optional[Event] = None) -> bool:
        return event is not None and event.matches_kind(self.pattern)

    def __repr__(self) -> str:
        return f"event is {self.pattern}"


@dataclass(frozen=True)
class EventFieldIs(Condition):
    """Holds when an event payload field compares true against a literal."""

    field: str
    op: str
    value: object

    def evaluate(self, state: dict, event: Optional[Event] = None) -> bool:
        if event is None or self.field not in event.payload:
            return False
        try:
            return bool(_OPS[self.op](event.payload[self.field], self.value))
        except TypeError:
            return False


class AllOf(Condition):
    """Conjunction."""

    def __init__(self, parts: Sequence[Condition]):
        self.parts = list(parts)

    def evaluate(self, state: dict, event: Optional[Event] = None) -> bool:
        return all(part.evaluate(state, event) for part in self.parts)

    def variables(self) -> set:
        return set().union(*(part.variables() for part in self.parts)) if self.parts else set()

    def __repr__(self) -> str:
        return "(" + " and ".join(map(repr, self.parts)) + ")"


class AnyOf(Condition):
    """Disjunction."""

    def __init__(self, parts: Sequence[Condition]):
        self.parts = list(parts)

    def evaluate(self, state: dict, event: Optional[Event] = None) -> bool:
        return any(part.evaluate(state, event) for part in self.parts)

    def variables(self) -> set:
        return set().union(*(part.variables() for part in self.parts)) if self.parts else set()

    def __repr__(self) -> str:
        return "(" + " or ".join(map(repr, self.parts)) + ")"


@dataclass(frozen=True)
class Not(Condition):
    """Negation."""

    inner: Condition

    def evaluate(self, state: dict, event: Optional[Event] = None) -> bool:
        return not self.inner.evaluate(state, event)

    def variables(self) -> set:
        return self.inner.variables()

    def __repr__(self) -> str:
        return f"(not {self.inner!r})"


# ---------------------------------------------------------------------------
# String front-end: tokenizer + recursive-descent parser
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""\s*(?:
        (?P<lparen>\()
      | (?P<rparen>\))
      | (?P<op><=|>=|==|!=|<|>)
      | (?P<number>-?\d+(?:\.\d+)?(?:[eE][-+]?\d+)?)
      | (?P<string>'[^']*'|"[^"]*")
      | (?P<word>[A-Za-z_][A-Za-z0-9_.]*)
    )""",
    re.VERBOSE,
)

_KEYWORDS = {"and", "or", "not", "in", "true", "false"}


def _tokenize(text: str) -> list[tuple[str, str]]:
    tokens = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            if text[pos:].strip() == "":
                break
            raise ConditionParseError(f"cannot tokenize at: {text[pos:]!r}")
        pos = match.end()
        for kind, value in match.groupdict().items():
            if value is not None:
                if kind == "word" and value in _KEYWORDS:
                    tokens.append((value, value))
                else:
                    tokens.append((kind, value))
                break
    return tokens


class _Parser:
    """Recursive descent over: or_expr → and_expr → unary → comparison/atom."""

    def __init__(self, tokens: list[tuple[str, str]], text: str):
        self.tokens = tokens
        self.pos = 0
        self.text = text

    def peek(self) -> Optional[tuple[str, str]]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def advance(self) -> tuple[str, str]:
        token = self.peek()
        if token is None:
            raise ConditionParseError(f"unexpected end of condition: {self.text!r}")
        self.pos += 1
        return token

    def expect(self, kind: str) -> tuple[str, str]:
        token = self.advance()
        if token[0] != kind:
            raise ConditionParseError(
                f"expected {kind} but found {token[1]!r} in {self.text!r}"
            )
        return token

    def parse(self) -> Condition:
        cond = self.or_expr()
        if self.peek() is not None:
            raise ConditionParseError(
                f"trailing tokens after condition in {self.text!r}"
            )
        return cond

    def or_expr(self) -> Condition:
        parts = [self.and_expr()]
        while self.peek() is not None and self.peek()[0] == "or":
            self.advance()
            parts.append(self.and_expr())
        return parts[0] if len(parts) == 1 else AnyOf(parts)

    def and_expr(self) -> Condition:
        parts = [self.unary()]
        while self.peek() is not None and self.peek()[0] == "and":
            self.advance()
            parts.append(self.unary())
        return parts[0] if len(parts) == 1 else AllOf(parts)

    def unary(self) -> Condition:
        token = self.peek()
        if token is not None and token[0] == "not":
            self.advance()
            return Not(self.unary())
        return self.comparison()

    def _operand(self):
        token = self.advance()
        kind, value = token
        if kind == "number":
            is_float = "." in value or "e" in value or "E" in value
            return Literal(float(value) if is_float else int(value))
        if kind == "string":
            return Literal(value[1:-1])
        if kind in ("true", "false"):
            return Literal(kind == "true")
        if kind == "word":
            return value  # variable (or event.field) reference
        raise ConditionParseError(f"expected operand, found {value!r} in {self.text!r}")

    def comparison(self) -> Condition:
        token = self.peek()
        if token is not None and token[0] == "lparen":
            self.advance()
            inner = self.or_expr()
            self.expect("rparen")
            return inner
        if token is not None and token[0] == "true":
            self.advance()
            return TrueCondition()
        if token is not None and token[0] == "false":
            self.advance()
            return Not(TrueCondition())
        left = self._operand()
        nxt = self.peek()
        if nxt is None or nxt[0] not in ("op", "in"):
            # Bare variable: truthiness test of a bool variable.
            if isinstance(left, Literal):
                raise ConditionParseError(
                    f"bare literal is not a condition in {self.text!r}"
                )
            return Comparison(left, "==", Literal(True))
        op = self.advance()[1]
        right = self._operand()
        return Comparison(left, op, right)


def parse_condition(text: str) -> Condition:
    """Parse a condition expression string into a :class:`Condition` AST."""
    text = text.strip()
    if not text or text == "true":
        return TrueCondition()
    tokens = _tokenize(text)
    if not tokens:
        return TrueCondition()
    return _Parser(tokens, text).parse()
