"""The policy evaluation engine — the "Logic" box of the paper's Figure 2.

On each inbound event the engine selects the winning policy, runs the
requested action through the *guard chain* (the sec VI safeguards), and
either executes it, substitutes a safe alternative, or refuses to act.
Every decision is recorded for audit.

The guard chain is ordered and fail-closed: any safeguard may veto by
raising :class:`~repro.errors.SafeguardViolation`, and an action executes
only if *every* guard passes both the action check and the predicted-
transition check.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable, Optional

from repro.core.actions import Action, ActionLibrary
from repro.core.events import Event
from repro.core.obligations import ObligationManager
from repro.core.policy import Policy, PolicySet
from repro.errors import ConfigurationError, DeactivatedError, SafeguardViolation
from repro.types import ActionOutcome, DeviceStatus

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.device import Device


class Safeguard:
    """Base class for guard-chain members (the paper's sec VI mechanisms).

    Subclasses override :meth:`check_action` and/or :meth:`check_transition`
    to veto by raising :class:`SafeguardViolation`, and may propose
    substitutes via :meth:`suggest_alternatives`.
    """

    name = "safeguard"

    def check_action(self, device: "Device", action: Action, event: Optional[Event],
                     time: float) -> None:
        """Veto the action itself (before any state prediction)."""

    def check_transition(self, device: "Device", predicted: dict, action: Action,
                         time: float) -> None:
        """Veto the predicted post-action state vector."""

    def suggest_alternatives(self, device: "Device", action: Action,
                             time: float) -> list[Action]:
        """Ordered substitute actions to try when this guard vetoes."""
        return []


class Decision:
    """The auditable record of one engine invocation.

    A ``__slots__`` class rather than a dataclass: one record is created
    per delivered event, so construction cost is part of the device-model
    hot loop (benchmark F2).  ``vetoes`` holds ``(safeguard_name,
    message)`` pairs.
    """

    __slots__ = ("time", "event_kind", "policy_id", "requested", "executed",
                 "outcome", "vetoes", "detail")

    def __init__(
        self,
        time: float,
        event_kind: str,
        policy_id: Optional[str],
        requested: Optional[str],       # action name the policy asked for
        executed: Optional[str],        # action name actually run (None if none)
        outcome: ActionOutcome,
        vetoes: Optional[list] = None,
        detail: Optional[dict] = None,
    ):
        self.time = time
        self.event_kind = event_kind
        self.policy_id = policy_id
        self.requested = requested
        self.executed = executed
        self.outcome = outcome
        self.vetoes = [] if vetoes is None else vetoes
        self.detail = {} if detail is None else detail

    @property
    def acted(self) -> bool:
        return self.outcome in (ActionOutcome.EXECUTED, ActionOutcome.SUBSTITUTED)

    def __repr__(self) -> str:
        return (f"Decision(t={self.time}, event={self.event_kind!r}, "
                f"policy={self.policy_id!r}, requested={self.requested!r}, "
                f"executed={self.executed!r}, outcome={self.outcome!r})")


class PolicyEngine:
    """Evaluates policies and enforces the guard chain for one device."""

    def __init__(
        self,
        device: "Device",
        policies: Optional[PolicySet] = None,
        actions: Optional[ActionLibrary] = None,
        safeguards: Iterable[Safeguard] = (),
        obligations: Optional[ObligationManager] = None,
        decision_log_limit: int = 4096,
        on_decision: Optional[Callable[[Decision], None]] = None,
    ):
        self.device = device
        self.policies = policies if policies is not None else PolicySet()
        self.actions = actions if actions is not None else ActionLibrary()
        self.safeguards: list[Safeguard] = list(safeguards)
        self.obligations = obligations
        self.decisions: list[Decision] = []
        self._decision_log_limit = decision_log_limit
        self.on_decision = on_decision
        #: Clamped predicted changes computed by the last guard-chain run
        #: (reused by the execution path when the state has not moved).
        self._guard_changes: Optional[dict] = None
        if self.obligations is not None and self.obligations.executor is None:
            # Remedies run through the same guarded execution path.
            self.obligations.executor = self._execute_remedy

    # -- guard chain ----------------------------------------------------------

    def add_safeguard(self, safeguard: Safeguard) -> None:
        self.safeguards.append(safeguard)

    def remove_safeguard(self, name: str) -> bool:
        if getattr(self.safeguards, "sealed", False):
            raise SafeguardViolation(
                "guard chain is sealed; removal blocked", safeguard="tamper"
            )
        before = len(self.safeguards)
        self.safeguards = [s for s in self.safeguards if s.name != name]
        return len(self.safeguards) != before

    def _run_guards(self, action: Action, event: Optional[Event],
                    time: float) -> Optional[tuple[str, str]]:
        """Run every safeguard; return (safeguard, message) on veto, else None.

        Side channel: when the guard chain computed the clamped predicted
        changes for ``action``, they are left in ``_guard_changes`` so the
        execution path can reuse them instead of recomputing (valid as
        long as the device state has not moved in between — the caller
        checks ``state.version``).
        """
        self._guard_changes = None
        safeguards = self.safeguards
        if not safeguards:
            # Empty guard chain: nothing can veto, so skip the state
            # prediction entirely (the unguarded F2 hot path).
            return None
        try:
            device = self.device
            for safeguard in safeguards:
                safeguard.check_action(device, action, event, time)
            if not action.is_noop:
                state = device.state
                changes = state.resolve_changes(action.effects)
                self._guard_changes = changes
                predicted = state.predict(changes)
                for safeguard in safeguards:
                    safeguard.check_transition(device, predicted, action, time)
        except SafeguardViolation as veto:
            return (veto.safeguard or type(veto).__name__, str(veto))
        return None

    # -- main entry point ------------------------------------------------------

    def handle_event(self, event: Event) -> Decision:
        """Process one event end to end and return the decision record."""
        time = event.time
        if self.device.status == DeviceStatus.DEACTIVATED:
            return self._record(Decision(
                time=time, event_kind=event.kind, policy_id=None,
                requested=None, executed=None, outcome=ActionOutcome.NOOP,
                detail={"reason": "device deactivated"},
            ))

        # Policy selection only reads the vector, so the live view is safe
        # (and skips a per-event dict copy).
        state_vector = self.device.state.peek()
        policy = self.policies.select(event, state_vector)
        if policy is None:
            return self._record(Decision(
                time=time, event_kind=event.kind, policy_id=None,
                requested=None, executed=None, outcome=ActionOutcome.NOOP,
            ))
        return self._attempt(policy, policy.action, event, time)

    def _attempt(self, policy: Policy, action: Action, event: Optional[Event],
                 time: float) -> Decision:
        """Guarded attempt, wrapped in causal telemetry when available.

        The decision span's parent is, in priority order: the context
        stamped on the policy at generation time (generative policies),
        the device-wide implant context (attack compromises), or — only
        when the decision actually vetoed something worth explaining —
        the ambient context.  Ordinary untraced decisions take the
        untraced fast path unchanged.
        """
        tracer = self.device.telemetry
        if tracer is None or not tracer.enabled:
            return self._attempt_untraced(policy, action, event, time)
        parent = policy.metadata.get("trace_context") or self.device.trace_context
        device_id = self.device.device_id
        if parent is not None:
            span = tracer.start_span(
                "engine.decision", device_id, time, parent=parent,
                policy=policy.policy_id, requested=action.name)
            previous = tracer.activate(span.context)
            try:
                decision = self._attempt_untraced(policy, action, event, time)
            finally:
                tracer.activate(previous)
        else:
            decision = self._attempt_untraced(policy, action, event, time)
            if not decision.vetoes:
                return decision
            ambient = tracer.active_context()
            if ambient is None:
                return decision
            span = tracer.start_span(
                "engine.decision", device_id, time, parent=ambient,
                policy=policy.policy_id, requested=action.name)
        span.detail["outcome"] = decision.outcome.value
        span.detail["executed"] = decision.executed
        for safeguard_name, message in decision.vetoes:
            tracer.start_span("safeguard.veto", device_id, time,
                              parent=span.context, safeguard=safeguard_name,
                              message=message)
        return decision

    def _attempt_untraced(self, policy: Policy, action: Action,
                          event: Optional[Event], time: float) -> Decision:
        vetoes: list[tuple[str, str]] = []
        veto = self._run_guards(action, event, time)
        if veto is None:
            executed_ok = self._execute(action, time, self._guard_changes)
            outcome = ActionOutcome.EXECUTED if executed_ok else ActionOutcome.FAILED
            return self._record(Decision(
                time=time, event_kind=event.kind if event else "internal",
                policy_id=policy.policy_id, requested=action.name,
                executed=action.name if executed_ok else None,
                outcome=outcome, vetoes=vetoes,
            ))

        vetoes.append(veto)
        # Vetoed: gather alternatives from safeguards first (they know why
        # they vetoed), then from the action library, then an explicit noop.
        candidates: list[Action] = []
        for safeguard in self.safeguards:
            candidates.extend(safeguard.suggest_alternatives(self.device, action, time))
        candidates.extend(self.actions.alternatives(action))
        seen: set = set()
        for candidate in candidates:
            if candidate.name in seen or candidate.name == action.name:
                continue
            seen.add(candidate.name)
            candidate_veto = self._run_guards(candidate, event, time)
            if candidate_veto is not None:
                vetoes.append(candidate_veto)
                continue
            if candidate.is_noop:
                # Refusing to act is itself the safe alternative (sec VI-B).
                return self._record(Decision(
                    time=time, event_kind=event.kind if event else "internal",
                    policy_id=policy.policy_id, requested=action.name,
                    executed=None, outcome=ActionOutcome.VETOED, vetoes=vetoes,
                ))
            executed_ok = self._execute(candidate, time, self._guard_changes)
            if executed_ok:
                return self._record(Decision(
                    time=time, event_kind=event.kind if event else "internal",
                    policy_id=policy.policy_id, requested=action.name,
                    executed=candidate.name, outcome=ActionOutcome.SUBSTITUTED,
                    vetoes=vetoes,
                ))
        return self._record(Decision(
            time=time, event_kind=event.kind if event else "internal",
            policy_id=policy.policy_id, requested=action.name,
            executed=None, outcome=ActionOutcome.VETOED, vetoes=vetoes,
        ))

    def propose(self, action: Action, time: float,
                event: Optional[Event] = None) -> Decision:
        """Run an externally proposed action through the full guard chain.

        For callers outside the policy loop — obligation remedies chosen by
        harness code, break-glass dilemma resolutions, collaborative
        assessments — that must still be subject to every safeguard.  The
        decision records a synthetic ``proposal:`` policy id.
        """
        synthetic = Policy.make(
            event.kind if event is not None else "*", None, action,
            source="builtin", author="proposal",
            policy_id=f"proposal:{action.name}:{len(self.decisions)}",
        )
        return self._attempt(synthetic, action, event, time)

    # -- execution -------------------------------------------------------------

    def _execute(self, action: Action, time: float,
                 changes: Optional[dict] = None) -> bool:
        """Fire the actuator and apply declared effects.  True on success.

        ``changes`` may carry the clamped predicted changes the guard
        chain already computed; they are reused only if the actuator left
        the state untouched (``state.version`` unchanged), otherwise the
        effects are re-resolved against the post-actuator state.
        """
        state = self.device.state
        if not action.is_noop:
            version_before = state.version
            try:
                self.device.invoke_actuator(action, time)
            except DeactivatedError:
                return False
            except SafeguardViolation:
                return False
            except ConfigurationError:
                # The action references an actuator this device lacks (e.g. a
                # payload implanted on the wrong device type): fail, not crash.
                return False
            if changes is None or state.version != version_before:
                changes = state.resolve_changes(action.effects)
            if changes:
                state.apply_resolved(changes, time=time, cause=f"action:{action.name}")
            if self.obligations is not None:
                self.obligations.on_action_executed(action, time)
        return True

    def _execute_remedy(self, remedy: Action) -> bool:
        """Obligation remedies run through the guarded path (no policy)."""
        time = self.device.clock()
        if self._run_guards(remedy, None, time) is not None:
            return False
        return self._execute(remedy, time, self._guard_changes)

    # -- bookkeeping -----------------------------------------------------------

    def _record(self, decision: Decision) -> Decision:
        self.decisions.append(decision)
        if len(self.decisions) > self._decision_log_limit:
            del self.decisions[: len(self.decisions) - self._decision_log_limit]
        if self.on_decision is not None:
            self.on_decision(decision)
        return decision

    def veto_count(self) -> int:
        return sum(1 for d in self.decisions if d.outcome == ActionOutcome.VETOED)
