"""Persistence of policy sets as auditable JSON specs.

Generated fleets accumulate thousands of policies; operators need to back
them up, inspect them offline, and restore them after repair (the mechanic
device's "known-good configuration" is exactly such a snapshot).  Only
policies carrying their condition *string* are exportable — the same
restriction as gossip sharing, which keeps every persisted rule inside the
parseable, reviewable language.
"""

from __future__ import annotations

import json
from repro.core.device import Device
from repro.core.policy import Policy, PolicySet
from repro.errors import PolicyError
from repro.types import Verdict


def policy_to_spec(policy: Policy) -> dict:
    """A JSON-able spec for one policy (raises for AST-only conditions)."""
    condition_str = policy.metadata.get("condition_str")
    if condition_str is None:
        from repro.core.conditions import TrueCondition

        if isinstance(policy.condition, TrueCondition):
            condition_str = ""
        else:
            raise PolicyError(
                f"policy {policy.policy_id} has no condition_str metadata; "
                "only string-conditioned policies are persistable"
            )
    return {
        "policy_id": policy.policy_id,
        "event_pattern": policy.event_pattern,
        "condition_str": condition_str,
        "action_name": policy.action.name,
        "action_params": {
            key: value for key, value in policy.action.params.items()
            if not key.startswith("_")
        },
        "priority": policy.priority,
        "source": policy.source,
        "author": policy.author,
    }


def export_policy_set(policies: PolicySet) -> dict:
    """Export every persistable policy; returns the bundle dict.

    Unpersistable policies (AST-only conditions) are listed by id in
    ``skipped`` rather than silently dropped.
    """
    specs, skipped = [], []
    for policy in policies:
        try:
            specs.append(policy_to_spec(policy))
        except PolicyError:
            skipped.append(policy.policy_id)
    return {"version": 1, "policies": specs, "skipped": sorted(skipped)}


def save_policy_set(policies: PolicySet, path: str) -> dict:
    bundle = export_policy_set(policies)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(bundle, handle, indent=2)
    return bundle


def spec_to_policy(spec: dict, device: Device) -> Policy:
    """Rebuild a policy spec against a device's action library."""
    base_action = device.engine.actions.get(spec["action_name"])
    return Policy.make(
        event_pattern=spec["event_pattern"],
        condition=spec["condition_str"] or None,
        action=base_action.with_params(**spec.get("action_params", {})),
        priority=int(spec.get("priority", 0)),
        source=str(spec.get("source", "human")),
        author=str(spec.get("author", "")),
        policy_id=spec["policy_id"],
        condition_str=spec["condition_str"],
    )


def import_policy_set(bundle: dict, device: Device,
                      governance=None, time: float = 0.0) -> dict:
    """Install a bundle onto a device; returns {installed, rejected}.

    Policies referencing actions the device lacks are rejected (a drone
    bundle does not fit a mule).  With ``governance`` set, policies from
    gated sources (generated/learned/shared) must pass the tripartite
    review before installation — restoring from a backup is not a
    side-door around sec VI-E.
    """
    if bundle.get("version") != 1:
        raise PolicyError(f"unsupported bundle version {bundle.get('version')!r}")
    installed, rejected = [], []
    gated_sources = {"generated", "learned", "shared"}
    for spec in bundle.get("policies", []):
        try:
            policy = spec_to_policy(spec, device)
        except PolicyError as exc:
            rejected.append((spec.get("policy_id", "?"), str(exc)))
            continue
        if governance is not None and policy.source in gated_sources:
            decision = governance.review(policy, proposer=device.device_id,
                                         time=time)
            if decision.final != Verdict.APPROVE:
                rejected.append((policy.policy_id, "governance rejected"))
                continue
        device.engine.policies.replace(policy)
        installed.append(policy.policy_id)
    return {"installed": installed, "rejected": rejected}


def load_policy_set(path: str, device: Device, governance=None,
                    time: float = 0.0) -> dict:
    with open(path, encoding="utf-8") as handle:
        bundle = json.load(handle)
    return import_policy_set(bundle, device, governance=governance, time=time)
