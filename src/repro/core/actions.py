"""Actions: actuator invocations with declared state effects.

Per the paper (sec V): "the action is the invocation of an actuator,
resulting in a new state."  Every action declares its predicted effects on
the device's state vector, which is what makes the sec VI-B state-space
check possible — the guard evaluates ``state.predict(action.effects)``
*before* the actuator fires.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.errors import PolicyError

_EFFECT_OPS = ("set", "add", "scale")


@dataclass(frozen=True)
class Effect:
    """A declared change to one state variable.

    ``op`` is ``set`` (assign), ``add`` (increment), or ``scale``
    (multiply).  ``add``/``scale`` apply only to numeric variables.
    """

    variable: str
    op: str
    value: object

    def __post_init__(self):
        if self.op not in _EFFECT_OPS:
            raise PolicyError(f"unknown effect op {self.op!r}")

    def apply_to(self, vector: dict) -> None:
        """Mutate ``vector`` in place with this effect."""
        if self.op == "set":
            vector[self.variable] = self.value
            return
        current = vector.get(self.variable, 0.0)
        if not isinstance(current, (int, float)) or isinstance(current, bool):
            raise PolicyError(
                f"effect {self.op} on non-numeric variable {self.variable!r}"
            )
        if self.op == "add":
            vector[self.variable] = current + self.value
        else:  # scale
            vector[self.variable] = current * self.value


@dataclass(frozen=True)
class Action:
    """A named actuator invocation.

    ``actuator`` is the name of the device actuator to fire; ``params``
    are passed to it.  ``effects`` declare the predicted state delta.
    ``tags`` classify the action for harm analysis and obligation
    selection (e.g. ``{"kinetic", "digging"}``); ``reversible`` feeds
    risk estimation.
    """

    name: str
    actuator: str = ""
    params: dict = field(default_factory=dict)
    effects: tuple = ()
    tags: frozenset = frozenset()
    reversible: bool = True
    description: str = ""

    def __post_init__(self):
        object.__setattr__(self, "effects", tuple(self.effects))
        object.__setattr__(self, "tags", frozenset(self.tags))

    @property
    def is_noop(self) -> bool:
        return self.actuator == "" and not self.effects

    def predicted_changes(self, current: dict) -> dict:
        """The state changes this action declares, resolved against ``current``.

        Only the touched variables are materialised (rather than copying
        the whole vector): actions typically declare one or two effects
        while the state space can be much larger, and this runs once per
        delivered event (benchmark F2).
        """
        effects = self.effects
        if not effects:
            return {}
        vector: dict = {}
        for effect in effects:
            name = effect.variable
            if name not in vector and name in current:
                vector[name] = current[name]
            effect.apply_to(vector)
        return {k: v for k, v in vector.items() if current.get(k) != v}

    def with_params(self, **params) -> "Action":
        """A copy of this action with extra/overridden parameters."""
        merged = dict(self.params)
        merged.update(params)
        return Action(
            name=self.name,
            actuator=self.actuator,
            params=merged,
            effects=self.effects,
            tags=self.tags,
            reversible=self.reversible,
            description=self.description,
        )

    def __repr__(self) -> str:
        return f"Action({self.name!r} -> {self.actuator or 'noop'})"


def noop_action(reason: str = "") -> Action:
    """The deliberate no-op: "simply choosing the option of taking no
    action (which keeps it in the current good state)" (sec VI-B)."""
    return Action(name="noop", description=reason or "deliberate no-op")


class ActionLibrary:
    """A registry of the actions a device type can take.

    The state-space guard asks the library for *alternative* actions when
    a policy-selected action is vetoed.
    """

    def __init__(self, actions: Iterable[Action] = ()):
        self._actions: dict[str, Action] = {}
        for action in actions:
            self.add(action)

    def add(self, action: Action) -> None:
        if action.name in self._actions:
            raise PolicyError(f"duplicate action {action.name!r}")
        self._actions[action.name] = action

    def get(self, name: str) -> Action:
        try:
            return self._actions[name]
        except KeyError:
            raise PolicyError(f"unknown action {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._actions

    def __len__(self) -> int:
        return len(self._actions)

    def names(self) -> list[str]:
        return list(self._actions)

    def all(self) -> list[Action]:
        return list(self._actions.values())

    def alternatives(self, to: Action, *, exclude_tags: Optional[set] = None) -> list[Action]:
        """Candidate substitutes for a vetoed action.

        Returns every other action (always including a no-op last), optionally
        filtering out actions carrying any tag in ``exclude_tags``.
        """
        exclude_tags = exclude_tags or set()
        candidates = [
            action for action in self._actions.values()
            if action.name != to.name and not (action.tags & exclude_tags)
        ]
        candidates.append(noop_action(f"alternative to vetoed {to.name!r}"))
        return candidates
