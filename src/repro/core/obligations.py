"""Obligations: follow-up duties attached to actions (paper sec VI-A).

The paper extends event-condition-action with obligations — "further
actions that need to be executed after the original action has been
executed (or even while the original action is being executed)" — to
prevent *indirect* harm, citing Ni/Bertino/Lobo's obligation model [11].
The dig-a-hole example: obligations include "posting notices indicating
the hole, broadcasting messages to humans approaching the location".

The paper also calls out the "main interesting challenge": an *ontology*
of obligations from which devices "automatically select the ones most
relevant to their actions".  :class:`ObligationOntology` implements that
selection by matching action tags against hazard categories.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core.actions import Action
from repro.errors import PolicyError

_obligation_ids = itertools.count(1)


@dataclass(frozen=True)
class Obligation:
    """A duty that must be discharged around an action.

    ``when`` is ``"after"`` (discharge once the action completes) or
    ``"during"`` (discharge at the same instant the action executes).
    ``deadline`` is the simulated time allowed for discharge before the
    obligation counts as violated.  ``remedy`` is the action that
    discharges it (e.g. post a warning sign).
    """

    name: str
    remedy: Action
    when: str = "after"
    deadline: float = 10.0
    hazard: str = ""
    description: str = ""

    def __post_init__(self):
        if self.when not in ("after", "during"):
            raise PolicyError(f"obligation 'when' must be after/during, got {self.when!r}")
        if self.deadline < 0:
            raise PolicyError("obligation deadline must be non-negative")


class ObligationOntology:
    """Maps hazard categories (action tags) to the obligations they require.

    A hazard category is any action tag — ``"digging"``, ``"kinetic"``,
    ``"chemical"`` — and may declare a parent category whose obligations
    are inherited (``"kinetic" -> "hazardous"``).
    """

    def __init__(self) -> None:
        self._by_hazard: dict[str, list[Obligation]] = {}
        self._parents: dict[str, str] = {}

    def declare_hazard(self, hazard: str, parent: Optional[str] = None) -> None:
        self._by_hazard.setdefault(hazard, [])
        if parent is not None:
            if parent == hazard:
                raise PolicyError(f"hazard {hazard!r} cannot be its own parent")
            self._parents[hazard] = parent
            self._by_hazard.setdefault(parent, [])

    def attach(self, hazard: str, obligation: Obligation) -> None:
        """Require ``obligation`` whenever an action carries tag ``hazard``."""
        self._by_hazard.setdefault(hazard, []).append(obligation)

    def _ancestry(self, hazard: str) -> list[str]:
        chain = [hazard]
        seen = {hazard}
        while chain[-1] in self._parents:
            parent = self._parents[chain[-1]]
            if parent in seen:
                raise PolicyError(f"hazard ontology cycle at {parent!r}")
            chain.append(parent)
            seen.add(parent)
        return chain

    def select(self, action: Action) -> list[Obligation]:
        """All obligations relevant to an action via its tags (with inheritance).

        This is the automatic selection the paper poses as the key
        challenge: the device does not need a human to enumerate duties
        per action — the ontology derives them from the action's hazard
        tags.
        """
        selected: list[Obligation] = []
        seen_ids: set = set()
        for tag in sorted(action.tags):
            if tag not in self._by_hazard:
                continue
            for hazard in self._ancestry(tag):
                for obligation in self._by_hazard.get(hazard, []):
                    if id(obligation) not in seen_ids:
                        seen_ids.add(id(obligation))
                        selected.append(obligation)
        return selected

    def hazards(self) -> list[str]:
        return sorted(self._by_hazard)


@dataclass
class PendingObligation:
    """A selected obligation awaiting discharge."""

    obligation: Obligation
    source_action: str
    created_at: float
    due_at: float
    pending_id: int = field(default_factory=lambda: next(_obligation_ids))
    discharged_at: Optional[float] = None
    violated: bool = False

    @property
    def open(self) -> bool:
        return self.discharged_at is None and not self.violated


class ObligationManager:
    """Tracks pending obligations for one device and discharges them.

    ``executor`` is called with the remedy action to actually run it
    (normally the device engine's internal execute path, so remedies are
    themselves subject to pre-action checks).
    """

    def __init__(self, ontology: ObligationOntology,
                 executor: Optional[Callable[[Action], bool]] = None):
        self.ontology = ontology
        self.executor = executor
        self.pending: list[PendingObligation] = []
        self.discharged: list[PendingObligation] = []
        self.violations: list[PendingObligation] = []
        #: Called with each newly violated PendingObligation — the hook
        #: operators/auditors use to escalate unfulfilled duties.
        self.on_violation: Optional[Callable[[PendingObligation], None]] = None

    def on_action_executed(self, action: Action, time: float) -> list[PendingObligation]:
        """Select and register the obligations an executed action incurs.

        ``during`` obligations are discharged immediately (their remedy is
        executed in the same instant); ``after`` obligations join the
        pending list until :meth:`discharge` or expiry via :meth:`expire`.
        """
        created = []
        for obligation in self.ontology.select(action):
            pending = PendingObligation(
                obligation=obligation,
                source_action=action.name,
                created_at=time,
                due_at=time + obligation.deadline,
            )
            created.append(pending)
            if obligation.when == "during":
                self._run_remedy(pending, time)
            else:
                self.pending.append(pending)
        return created

    def _run_remedy(self, pending: PendingObligation, time: float) -> None:
        ok = True
        if self.executor is not None:
            ok = bool(self.executor(pending.obligation.remedy))
        if ok:
            pending.discharged_at = time
            self.discharged.append(pending)
        else:
            pending.violated = True
            self.violations.append(pending)
            if self.on_violation is not None:
                self.on_violation(pending)

    def discharge_due(self, time: float) -> int:
        """Attempt every open obligation whose remedy is due; return count run."""
        ran = 0
        still_pending = []
        for pending in self.pending:
            if pending.open:
                self._run_remedy(pending, time)
                ran += 1
            if pending.open:
                still_pending.append(pending)
        self.pending = still_pending
        return ran

    def expire(self, time: float) -> list[PendingObligation]:
        """Mark overdue obligations violated; return the newly violated ones."""
        newly = []
        still_pending = []
        for pending in self.pending:
            if pending.open and time > pending.due_at:
                pending.violated = True
                self.violations.append(pending)
                newly.append(pending)
                if self.on_violation is not None:
                    self.on_violation(pending)
            else:
                still_pending.append(pending)
        self.pending = still_pending
        return newly

    def open_count(self) -> int:
        return sum(1 for pending in self.pending if pending.open)
