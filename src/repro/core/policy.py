"""Event-condition-action policies and policy sets (paper sec IV, V).

A :class:`Policy` fires when its event pattern matches and its condition
holds over the current state; it then proposes an action.  A
:class:`PolicySet` holds a device's policies, finds the applicable ones
for an event, resolves among them by priority, and detects conflicts
(distinct same-priority applicable policies driving the same actuator to
different actions).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.core.actions import Action
from repro.core.conditions import Condition, TrueCondition, parse_condition
from repro.core.events import Event
from repro.errors import PolicyConflictError, PolicyError

_policy_seq = itertools.count(1)

#: Where a policy came from — the paper distinguishes human-written
#: ("manual"/"policy-based") from device-generated ("generative") and
#: learned policies; audits and governance reviews treat them differently.
POLICY_SOURCES = ("human", "generated", "learned", "shared", "builtin")


@dataclass(frozen=True)
class Policy:
    """One event-condition-action rule."""

    policy_id: str
    event_pattern: str
    condition: Condition
    action: Action
    priority: int = 0
    source: str = "human"
    author: str = ""
    metadata: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.source not in POLICY_SOURCES:
            raise PolicyError(f"unknown policy source {self.source!r}")

    @staticmethod
    def make(
        event_pattern: str,
        condition: object,
        action: Action,
        *,
        priority: int = 0,
        source: str = "human",
        author: str = "",
        policy_id: Optional[str] = None,
        **metadata,
    ) -> "Policy":
        """Build a policy, parsing string conditions on the way in."""
        if isinstance(condition, str):
            condition = parse_condition(condition)
        elif condition is None:
            condition = TrueCondition()
        elif not isinstance(condition, Condition):
            raise PolicyError(f"condition must be str or Condition, got {condition!r}")
        return Policy(
            policy_id=policy_id or f"p{next(_policy_seq)}",
            event_pattern=event_pattern,
            condition=condition,
            action=action,
            priority=priority,
            source=source,
            author=author,
            metadata=dict(metadata),
        )

    def applies(self, event: Event, state: dict) -> bool:
        """True when the event matches and the condition holds."""
        return event.matches_kind(self.event_pattern) and self.condition.evaluate(
            state, event
        )

    def __repr__(self) -> str:
        return (
            f"Policy({self.policy_id}: on {self.event_pattern} "
            f"if {self.condition!r} do {self.action.name} prio={self.priority})"
        )


def _pattern_root(pattern: str) -> str:
    """The first dotted segment of an event pattern ("*" stays "*")."""
    if pattern == "*":
        return "*"
    return pattern.split(".", 1)[0]


class PolicySet:
    """A device's active policies with deterministic conflict resolution.

    Lookup is indexed by the event pattern's root segment: an event of
    kind ``"sensor.smoke"`` only scans policies rooted at ``sensor`` plus
    the wildcard bucket, so per-event cost scales with the *relevant*
    policies rather than the whole set (generative fleets accumulate
    thousands of peer-bound rules — see benchmark F2).
    """

    def __init__(self, policies: Iterable[Policy] = ()):
        self._policies: dict[str, Policy] = {}
        #: root segment -> {policy_id: insertion seq}
        self._by_root: dict[str, dict] = {}
        self._insert_seq = 0
        for policy in policies:
            self.add(policy)

    def __len__(self) -> int:
        return len(self._policies)

    def __contains__(self, policy_id: str) -> bool:
        return policy_id in self._policies

    def __iter__(self):
        return iter(self._policies.values())

    def _index(self, policy: Policy) -> None:
        bucket = self._by_root.setdefault(_pattern_root(policy.event_pattern), {})
        bucket[policy.policy_id] = self._insert_seq
        self._insert_seq += 1

    def _unindex(self, policy: Policy) -> None:
        bucket = self._by_root.get(_pattern_root(policy.event_pattern))
        if bucket is not None:
            bucket.pop(policy.policy_id, None)

    def add(self, policy: Policy) -> None:
        if policy.policy_id in self._policies:
            raise PolicyError(f"duplicate policy id {policy.policy_id!r}")
        self._policies[policy.policy_id] = policy
        self._index(policy)

    def remove(self, policy_id: str) -> Policy:
        try:
            policy = self._policies.pop(policy_id)
        except KeyError:
            raise PolicyError(f"no policy with id {policy_id!r}") from None
        self._unindex(policy)
        return policy

    def replace(self, policy: Policy) -> None:
        """Add or overwrite by id (used by governance-approved updates)."""
        existing = self._policies.get(policy.policy_id)
        if existing is not None:
            self._unindex(existing)
        self._policies[policy.policy_id] = policy
        self._index(policy)

    def get(self, policy_id: str) -> Policy:
        try:
            return self._policies[policy_id]
        except KeyError:
            raise PolicyError(f"no policy with id {policy_id!r}") from None

    def by_source(self, source: str) -> list[Policy]:
        return [p for p in self._policies.values() if p.source == source]

    def applicable(self, event: Event, state: dict) -> list[Policy]:
        """All policies that fire for this event+state, highest priority first.

        Within a priority level, insertion order is preserved, keeping
        resolution deterministic.  Only the event's root bucket and the
        wildcard bucket are scanned.
        """
        event_root = event.kind.split(".", 1)[0]
        policies = self._policies
        hits: list[tuple[int, Policy]] = []
        for root in (event_root, "*"):
            bucket = self._by_root.get(root)
            if bucket:
                for policy_id, seq in bucket.items():
                    policy = policies[policy_id]
                    if policy.applies(event, state):
                        hits.append((seq, policy))
        if len(hits) > 1:
            hits.sort(key=lambda item: (-item[1].priority, item[0]))
        return [policy for _seq, policy in hits]

    def select(self, event: Event, state: dict, *, strict: bool = False) -> Optional[Policy]:
        """The winning policy for this event+state (or ``None``).

        With ``strict=True`` a same-priority conflict on the same actuator
        raises :class:`PolicyConflictError`; otherwise the earliest-added
        wins (and callers may log the conflict).
        """
        hits = self.applicable(event, state)
        if not hits:
            return None
        winner = hits[0]
        if strict:
            for other in hits[1:]:
                if other.priority != winner.priority:
                    break
                if (
                    other.action.actuator == winner.action.actuator
                    and other.action.name != winner.action.name
                ):
                    raise PolicyConflictError(
                        f"policies {winner.policy_id} and {other.policy_id} conflict "
                        f"on actuator {winner.action.actuator!r} for event {event.kind}"
                    )
        return winner

    def find_conflicts(self) -> list[tuple[Policy, Policy]]:
        """Static pairwise conflict scan.

        Reports pairs with identical event pattern and priority whose
        actions drive the same actuator differently.  Condition overlap is
        undecidable in general; this is the conservative syntactic check
        used by the governance legislature before admitting generated
        policies.
        """
        conflicts = []
        policies = list(self._policies.values())
        for i, first in enumerate(policies):
            for second in policies[i + 1:]:
                if (
                    first.event_pattern == second.event_pattern
                    and first.priority == second.priority
                    and first.action.actuator == second.action.actuator
                    and first.action.actuator != ""
                    and first.action.name != second.action.name
                ):
                    conflicts.append((first, second))
        return conflicts

    def snapshot(self) -> list[str]:
        """Stable ids of the active policies (for audits/attestation)."""
        return sorted(self._policies)
