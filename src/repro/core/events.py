"""The event model.

Per section V of the paper: "When an event occurs (e.g., changes in sensor
values, reception of a message from a network connection, etc.), the logic
used within the device looks at the current state and the inbound event,
and then takes an action."

Events carry a dotted ``kind`` (``sensor.smoke``, ``net.message``,
``mgmt.command``, ``discovery.device``, ``timer.tick``) and a payload dict.
"""

from __future__ import annotations

import itertools
from typing import Any, Optional

_event_ids = itertools.count(1)


class Event:
    """An occurrence delivered to a device's logic.

    Treated as immutable once constructed.  A ``__slots__`` class rather
    than a dataclass: one event is allocated per delivery, so
    construction cost is part of the device-model hot loop (benchmark
    F2).
    """

    __slots__ = ("kind", "time", "source", "payload", "event_id")

    def __init__(self, kind: str, time: float = 0.0, source: str = "",
                 payload: Optional[dict] = None,
                 event_id: Optional[int] = None):
        self.kind = kind
        self.time = time
        self.source = source
        self.payload = {} if payload is None else payload
        self.event_id = next(_event_ids) if event_id is None else event_id

    def __repr__(self) -> str:
        return (f"Event(kind={self.kind!r}, time={self.time!r}, "
                f"source={self.source!r}, payload={self.payload!r}, "
                f"event_id={self.event_id})")

    def get(self, key: str, default: Any = None) -> Any:
        """Payload lookup with default."""
        return self.payload.get(key, default)

    def matches_kind(self, pattern: str) -> bool:
        """True if ``pattern`` equals this kind or is a dotted prefix of it.

        ``"sensor"`` matches ``"sensor.smoke"``; ``"*"`` matches anything.
        """
        if pattern == "*":
            return True
        return self.kind == pattern or self.kind.startswith(pattern + ".")

    # -- constructors for the common event families --------------------------

    @staticmethod
    def sensor(name: str, value: Any, time: float = 0.0, source: str = "") -> "Event":
        """A sensor reading changed (the Fig 2 'Sensor' inputs)."""
        return Event(kind=f"sensor.{name}", time=time, source=source,
                     payload={"name": name, "value": value})

    @staticmethod
    def message(topic: str, body: dict, time: float = 0.0, source: str = "") -> "Event":
        """A message arrived over the collaboration port."""
        return Event(kind=f"net.{topic}", time=time, source=source, payload=dict(body))

    @staticmethod
    def command(verb: str, params: Optional[dict] = None, time: float = 0.0,
                source: str = "") -> "Event":
        """A command from the human in charge (the Fig 2 'Command' input)."""
        return Event(kind=f"mgmt.{verb}", time=time, source=source,
                     payload=dict(params or {}))

    @staticmethod
    def discovery(device_id: str, device_type: str, attributes: dict,
                  time: float = 0.0) -> "Event":
        """A new device was discovered in the environment (sec IV)."""
        return Event(
            kind="discovery.device",
            time=time,
            source=device_id,
            payload={"device_id": device_id, "device_type": device_type,
                     "attributes": dict(attributes)},
        )

    @staticmethod
    def timer(label: str, time: float = 0.0) -> "Event":
        """A periodic management tick."""
        return Event(kind=f"timer.{label}", time=time, payload={"label": label})
