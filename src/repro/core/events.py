"""The event model.

Per section V of the paper: "When an event occurs (e.g., changes in sensor
values, reception of a message from a network connection, etc.), the logic
used within the device looks at the current state and the inbound event,
and then takes an action."

Events carry a dotted ``kind`` (``sensor.smoke``, ``net.message``,
``mgmt.command``, ``discovery.device``, ``timer.tick``) and a payload dict.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

_event_ids = itertools.count(1)


@dataclass(frozen=True)
class Event:
    """An occurrence delivered to a device's logic."""

    kind: str
    time: float = 0.0
    source: str = ""
    payload: dict = field(default_factory=dict)
    event_id: int = field(default_factory=lambda: next(_event_ids))

    def get(self, key: str, default: Any = None) -> Any:
        """Payload lookup with default."""
        return self.payload.get(key, default)

    def matches_kind(self, pattern: str) -> bool:
        """True if ``pattern`` equals this kind or is a dotted prefix of it.

        ``"sensor"`` matches ``"sensor.smoke"``; ``"*"`` matches anything.
        """
        if pattern == "*":
            return True
        return self.kind == pattern or self.kind.startswith(pattern + ".")

    # -- constructors for the common event families --------------------------

    @staticmethod
    def sensor(name: str, value: Any, time: float = 0.0, source: str = "") -> "Event":
        """A sensor reading changed (the Fig 2 'Sensor' inputs)."""
        return Event(kind=f"sensor.{name}", time=time, source=source,
                     payload={"name": name, "value": value})

    @staticmethod
    def message(topic: str, body: dict, time: float = 0.0, source: str = "") -> "Event":
        """A message arrived over the collaboration port."""
        return Event(kind=f"net.{topic}", time=time, source=source, payload=dict(body))

    @staticmethod
    def command(verb: str, params: Optional[dict] = None, time: float = 0.0,
                source: str = "") -> "Event":
        """A command from the human in charge (the Fig 2 'Command' input)."""
        return Event(kind=f"mgmt.{verb}", time=time, source=source,
                     payload=dict(params or {}))

    @staticmethod
    def discovery(device_id: str, device_type: str, attributes: dict,
                  time: float = 0.0) -> "Event":
        """A new device was discovered in the environment (sec IV)."""
        return Event(
            kind="discovery.device",
            time=time,
            source=device_id,
            payload={"device_id": device_id, "device_type": device_type,
                     "attributes": dict(attributes)},
        )

    @staticmethod
    def timer(label: str, time: float = 0.0) -> "Event":
        """A periodic management tick."""
        return Event(kind=f"timer.{label}", time=time, payload={"label": label})
