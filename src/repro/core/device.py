"""The abstract device model of the paper's Figure 2.

"Any device can be viewed as a set of sensors and actuators which has
logic dictating its behavior under different circumstances."  A
:class:`Device` owns sensors, actuators, a declared state space with its
current state, and a :class:`~repro.core.engine.PolicyEngine` as logic.
The command port (human orders) and the collaboration port (peer
messages) both feed the same event path, exactly as in Figure 2.

This module is simulator-agnostic; ``repro.devices.base`` binds devices to
the discrete-event simulator and the network substrate.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from repro.core.actions import Action, ActionLibrary
from repro.core.engine import Decision, PolicyEngine, Safeguard
from repro.core.events import Event
from repro.core.obligations import ObligationManager, ObligationOntology
from repro.core.policy import PolicySet
from repro.core.state import DeviceState, StateSpace
from repro.errors import ConfigurationError, DeactivatedError
from repro.types import DeviceStatus


class Sensor:
    """A named input channel.  ``read()`` returns the current value."""

    def __init__(self, name: str, read_fn: Optional[Callable[[], object]] = None,
                 initial: object = None):
        self.name = name
        self._read_fn = read_fn
        self._value = initial

    def read(self) -> object:
        if self._read_fn is not None:
            return self._read_fn()
        return self._value

    def inject(self, value: object) -> None:
        """Set the value directly (used by the world model and by deception
        attacks, which tamper with what the device perceives)."""
        self._value = value

    def override(self, value: object) -> None:
        """Freeze the sensor at ``value``, detaching any live read function.

        This is what a sensor-hijack attack does: the channel keeps
        answering, but with the attacker's constant instead of reality.
        Reattach a read function via :meth:`restore`.
        """
        self._read_fn = None
        self._value = value

    def restore(self, read_fn) -> None:
        """Reattach a live read function after an override."""
        self._read_fn = read_fn


class Actuator:
    """A named output channel that changes the world.

    ``effect_fn(device, action, time)`` performs the world-side effect and
    may return a dict of *additional* state changes discovered during
    execution (e.g. actual fuel burned).  Declared action effects are
    applied by the engine regardless.
    """

    def __init__(self, name: str,
                 effect_fn: Optional[Callable[["Device", Action, float], Optional[dict]]] = None):
        self.name = name
        self._effect_fn = effect_fn
        self.invocations = 0
        self.last_action: Optional[str] = None

    def invoke(self, device: "Device", action: Action, time: float) -> Optional[dict]:
        self.invocations += 1
        self.last_action = action.name
        if self._effect_fn is not None:
            return self._effect_fn(device, action, time)
        return None


class Device:
    """An intelligent device: sensors + actuators + state + logic (Fig 2)."""

    def __init__(
        self,
        device_id: str,
        device_type: str,
        space: StateSpace,
        *,
        organization: str = "default",
        initial_state: Optional[dict] = None,
        policies: Optional[PolicySet] = None,
        actions: Optional[ActionLibrary] = None,
        safeguards: Iterable[Safeguard] = (),
        obligation_ontology: Optional[ObligationOntology] = None,
        attributes: Optional[dict] = None,
        clock: Optional[Callable[[], float]] = None,
    ):
        if not device_id:
            raise ConfigurationError("device_id must be non-empty")
        self.device_id = device_id
        self.device_type = device_type
        self.organization = organization
        self.attributes = dict(attributes or {})
        self.state = DeviceState(space, initial_state)
        self.status = DeviceStatus.ACTIVE
        self.sensors: dict[str, Sensor] = {}
        self.actuators: dict[str, Actuator] = {}
        self._clock = clock or (lambda: 0.0)
        obligations = (
            ObligationManager(obligation_ontology) if obligation_ontology else None
        )
        self.engine = PolicyEngine(
            device=self,
            policies=policies,
            actions=actions,
            safeguards=safeguards,
            obligations=obligations,
        )
        #: Outbound message hook installed by the network binding.
        self.send_hook: Optional[Callable[[str, str, dict], None]] = None
        self.deactivation_reason: Optional[str] = None
        #: Causal tracer installed by the simulator binding (None when the
        #: device runs outside a simulation — the engine then skips spans).
        self.telemetry = None
        #: Span context implanted by an attack compromise: every decision
        #: this device makes afterwards is causally chained to the attack.
        self.trace_context = None

    # -- wiring ----------------------------------------------------------------

    def add_sensor(self, sensor: Sensor) -> Sensor:
        if sensor.name in self.sensors:
            raise ConfigurationError(f"duplicate sensor {sensor.name!r}")
        self.sensors[sensor.name] = sensor
        return sensor

    def add_actuator(self, actuator: Actuator) -> Actuator:
        if actuator.name in self.actuators:
            raise ConfigurationError(f"duplicate actuator {actuator.name!r}")
        self.actuators[actuator.name] = actuator
        return actuator

    def clock(self) -> float:
        return self._clock()

    def set_clock(self, clock: Callable[[], float]) -> None:
        self._clock = clock

    # -- the Fig 2 input ports ---------------------------------------------------

    def deliver(self, event: Event) -> Decision:
        """Feed an event (sensor change, message, command) to the logic."""
        return self.engine.handle_event(event)

    def command(self, verb: str, params: Optional[dict] = None,
                source: str = "human") -> Decision:
        """The Command port: a human order becomes an event."""
        return self.deliver(Event.command(verb, params, time=self.clock(), source=source))

    def receive_message(self, topic: str, body: dict, source: str) -> Decision:
        """The Collaboration port: a peer message becomes an event."""
        return self.deliver(Event.message(topic, body, time=self.clock(), source=source))

    def send_message(self, to: str, topic: str, body: dict) -> None:
        """Send to a peer through whatever transport the binding installed."""
        if self.send_hook is None:
            raise ConfigurationError(
                f"device {self.device_id} has no network binding installed"
            )
        self.send_hook(to, topic, body)

    # -- actuation & lifecycle ----------------------------------------------------

    def invoke_actuator(self, action: Action, time: float) -> None:
        """Fire the actuator named by ``action`` (engine-internal path)."""
        if self.status == DeviceStatus.DEACTIVATED:
            raise DeactivatedError(
                f"device {self.device_id} is deactivated", safeguard="deactivation"
            )
        actuator = self.actuators.get(action.actuator)
        if actuator is None:
            raise ConfigurationError(
                f"device {self.device_id} has no actuator {action.actuator!r}"
            )
        extra = actuator.invoke(self, action, time)
        if extra:
            self.state.apply(extra, time=time, cause=f"actuator:{actuator.name}")

    def deactivate(self, reason: str) -> None:
        """Tamper-proof kill (sec VI-C).  Irreversible without repair."""
        self.status = DeviceStatus.DEACTIVATED
        self.deactivation_reason = reason

    def reactivate(self) -> None:
        """Bring a repaired device back (mechanic devices use this)."""
        self.status = DeviceStatus.ACTIVE
        self.deactivation_reason = None

    @property
    def active(self) -> bool:
        return self.status in (DeviceStatus.ACTIVE, DeviceStatus.DEGRADED,
                               DeviceStatus.COMPROMISED)

    # -- introspection -------------------------------------------------------------

    def describe(self) -> dict:
        """The attribute record other devices see at discovery (sec IV)."""
        return {
            "device_id": self.device_id,
            "device_type": self.device_type,
            "organization": self.organization,
            "attributes": dict(self.attributes),
        }

    def __repr__(self) -> str:
        return (f"Device({self.device_id!r}, type={self.device_type!r}, "
                f"org={self.organization!r}, status={self.status.value})")
