"""Tamper-evident auditing.

Section VI-B requires "support for audits to verify that devices did not
abuse the break-glass rules", which "in turn would require the collection
of comprehensive context information".  :class:`AuditLog` is a
hash-chained append-only record; the auditors replay it to find
break-glass abuse and safeguard-bypass anomalies.
"""

from repro.audit.auditor import BreakGlassAuditor, ComplianceAuditor, Finding
from repro.audit.log import GAP_KIND, AuditEntry, AuditLog

__all__ = [
    "AuditEntry",
    "AuditLog",
    "GAP_KIND",
    "BreakGlassAuditor",
    "ComplianceAuditor",
    "Finding",
]
