"""Auditors that replay the tamper-evident log for abuse and anomalies.

The paper's sec VI-B audit requirement is specifically about break-glass:
"support for audits to verify that devices did not abuse the break-glass
rules".  :class:`BreakGlassAuditor` cross-checks every use against the
verified context captured at grant time.  :class:`ComplianceAuditor` scans
decision and obligation records for safeguard bypass symptoms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.audit.log import AuditLog


@dataclass(frozen=True)
class Finding:
    """One audit finding."""

    severity: str          # "info" | "warning" | "violation"
    kind: str
    subject: str
    message: str
    evidence: dict = field(default_factory=dict)


class BreakGlassAuditor:
    """Detects abuse patterns in break-glass activity.

    Flags, per device:

    * grants whose justification was reused verbatim many times
      (rubber-stamping);
    * uses after the emergency context stopped holding (the grant
      outliving the emergency);
    * use counts at the rule maximum (possible probing of the cap);
    * denial storms (repeatedly requesting grants that verification
      rejects — a device fishing for a bypass).
    """

    def __init__(self, max_same_justification: int = 3,
                 denial_storm_threshold: int = 3):
        self.max_same_justification = max_same_justification
        self.denial_storm_threshold = denial_storm_threshold

    def audit(self, log: AuditLog,
              emergency_truth: Optional[dict] = None) -> list[Finding]:
        """Replay break-glass entries; returns findings.

        ``emergency_truth`` optionally maps device_id -> list of
        (start, end) intervals during which a *real* emergency held; uses
        outside every interval are violations.
        """
        log.verify()
        findings: list[Finding] = []
        justifications: dict[tuple, int] = {}
        denials: dict[str, int] = {}
        grant_device: dict[int, str] = {}

        for entry in log.entries("breakglass"):
            device = str(entry.detail.get("device", entry.subject))
            if entry.kind == "breakglass.granted":
                grant_device[int(entry.detail.get("grant_id", -1))] = device
                key = (device, entry.detail.get("justification", ""))
                justifications[key] = justifications.get(key, 0) + 1
                if justifications[key] == self.max_same_justification + 1:
                    findings.append(Finding(
                        severity="warning", kind="justification_reuse",
                        subject=device,
                        message=(f"justification reused more than "
                                 f"{self.max_same_justification} times"),
                        evidence={"justification": key[1]},
                    ))
            elif entry.kind == "breakglass.denied":
                denials[device] = denials.get(device, 0) + 1
                if denials[device] == self.denial_storm_threshold:
                    findings.append(Finding(
                        severity="warning", kind="denial_storm", subject=device,
                        message=(f"{self.denial_storm_threshold} denied "
                                 f"break-glass requests"),
                        evidence={"denials": denials[device]},
                    ))
            elif entry.kind == "breakglass.used" and emergency_truth is not None:
                time = float(entry.detail.get("time", entry.time))
                intervals = emergency_truth.get(device, [])
                if not any(start <= time <= end for start, end in intervals):
                    findings.append(Finding(
                        severity="violation", kind="use_outside_emergency",
                        subject=device,
                        message="break-glass used while no emergency held",
                        evidence={"time": time,
                                  "grant_id": entry.detail.get("grant_id")},
                    ))
        return findings


class ComplianceAuditor:
    """Scans engine decisions and obligations for bypass symptoms."""

    def audit_decisions(self, device_id: str, decisions: Iterable) -> list[Finding]:
        """Flag devices whose veto rate suggests systematically unsafe
        policies (generated logic repeatedly steering at bad states)."""
        decisions = list(decisions)
        findings: list[Finding] = []
        if not decisions:
            return findings
        vetoed = sum(1 for d in decisions if d.outcome.value == "vetoed")
        total_with_policy = sum(1 for d in decisions if d.policy_id is not None)
        if total_with_policy >= 10 and vetoed / total_with_policy > 0.5:
            findings.append(Finding(
                severity="warning", kind="high_veto_rate", subject=device_id,
                message=(f"{vetoed}/{total_with_policy} policy actions vetoed — "
                         "device logic repeatedly proposes unsafe actions"),
                evidence={"vetoed": vetoed, "total": total_with_policy},
            ))
        return findings

    def audit_obligations(self, device_id: str, manager) -> list[Finding]:
        """Flag unfulfilled obligations — indirect-harm duties left open."""
        findings: list[Finding] = []
        violations = getattr(manager, "violations", [])
        for pending in violations:
            findings.append(Finding(
                severity="violation", kind="obligation_violated",
                subject=device_id,
                message=(f"obligation {pending.obligation.name!r} from action "
                         f"{pending.source_action!r} not discharged by "
                         f"{pending.due_at}"),
                evidence={"obligation": pending.obligation.name,
                          "due_at": pending.due_at},
            ))
        return findings

    @staticmethod
    def summarize(findings: Iterable[Finding]) -> dict:
        """Counts by severity for experiment reporting."""
        summary = {"info": 0, "warning": 0, "violation": 0}
        for finding in findings:
            summary[finding.severity] = summary.get(finding.severity, 0) + 1
        return summary
