"""Hash-chained, append-only audit log.

Each entry commits to its predecessor's hash, so any retroactive edit or
deletion breaks verification — the in-library realization of the paper's
"tamper-proof" record-keeping assumption, and the thing a malevolent
device would have to defeat to hide break-glass abuse.

Tamper-evidence alone is not crash-evidence: a chain held only in
process memory is erased by the very :class:`~repro.sim.faults.DeviceCrash`
a post-incident auditor would investigate.  A log constructed with a
:class:`~repro.store.journal.Journal` therefore writes every entry
through to simulated stable storage; after a crash wipes the volatile
copy, :meth:`recover` replays the journal (snapshot plus trustworthy
tail), re-verifies the recovered chain, and — when entries were lost
(journal-less operation, an unflushed buffer, or a torn/corrupted tail)
— appends an explicit ``audit.gap`` marker so the resumed chain *admits*
the hole instead of papering over it.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Optional

from repro.errors import AuditError

_GENESIS = "0" * 64

#: Kind of the marker entry a recovery appends when entries were lost.
GAP_KIND = "audit.gap"


def _canonical(payload: dict) -> str:
    """Deterministic JSON for hashing (sorted keys, no whitespace drift)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"), default=str)


@dataclass(frozen=True)
class AuditEntry:
    """One immutable log record."""

    index: int
    time: float
    kind: str
    subject: str
    detail: dict
    prev_hash: str
    entry_hash: str

    @staticmethod
    def compute_hash(index: int, time: float, kind: str, subject: str,
                     detail: dict, prev_hash: str) -> str:
        body = _canonical({
            "index": index, "time": time, "kind": kind,
            "subject": subject, "detail": detail, "prev": prev_hash,
        })
        return hashlib.sha256(body.encode("utf-8")).hexdigest()

    def to_payload(self) -> dict:
        """The journal/snapshot wire form."""
        return {
            "index": self.index, "time": self.time, "kind": self.kind,
            "subject": self.subject, "detail": self.detail,
            "prev": self.prev_hash, "hash": self.entry_hash,
        }

    @staticmethod
    def from_payload(payload: dict) -> "AuditEntry":
        return AuditEntry(
            index=int(payload["index"]), time=float(payload["time"]),
            kind=str(payload["kind"]), subject=str(payload["subject"]),
            detail=dict(payload["detail"]), prev_hash=str(payload["prev"]),
            entry_hash=str(payload["hash"]),
        )


class AuditLog:
    """Append-only log with O(1) append and full-chain verification.

    ``journal`` (a :class:`~repro.store.journal.Journal`) makes the log
    crash-durable: appends write through, :meth:`checkpoint` snapshots,
    and the :meth:`crash_volatile` / :meth:`recover` pair plugs into the
    fault layer's :class:`~repro.store.recovery.DurabilityManager`.
    Without one the log keeps the historical in-memory behaviour — and a
    crash loses everything, which the crash hook now *reports* instead of
    swallowing.
    """

    def __init__(self, journal=None) -> None:
        self._entries: list[AuditEntry] = []
        self._journal = journal
        self._crashed = False
        self._lost_at_crash = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def journaled(self) -> bool:
        return self._journal is not None

    def append(self, time: float, kind: str, subject: str,
               detail: Optional[dict] = None) -> Optional[AuditEntry]:
        """Append one entry; returns ``None`` while crashed.

        Between :meth:`crash_volatile` and :meth:`recover` the owning
        process is *down*: nothing runs, so nothing may log.  Accepting
        appends in that window would both fabricate history and write
        a second from-genesis chain into the journal behind the real
        one, poisoning the eventual replay.
        """
        if self._crashed:
            return None
        detail = dict(detail or {})
        index = len(self._entries)
        prev_hash = self._entries[-1].entry_hash if self._entries else _GENESIS
        entry_hash = AuditEntry.compute_hash(index, time, kind, subject,
                                             detail, prev_hash)
        entry = AuditEntry(index=index, time=time, kind=kind, subject=subject,
                           detail=detail, prev_hash=prev_hash,
                           entry_hash=entry_hash)
        self._entries.append(entry)
        if self._journal is not None:
            self._journal.append(entry.to_payload())
        return entry

    def entries(self, kind_prefix: str = "", subject: Optional[str] = None) -> list[AuditEntry]:
        out = []
        for entry in self._entries:
            if kind_prefix and not (
                entry.kind == kind_prefix or entry.kind.startswith(kind_prefix + ".")
            ):
                continue
            if subject is not None and entry.subject != subject:
                continue
            out.append(entry)
        return out

    def last(self) -> Optional[AuditEntry]:
        return self._entries[-1] if self._entries else None

    def head_hash(self) -> str:
        return self._entries[-1].entry_hash if self._entries else _GENESIS

    def verify(self) -> bool:
        """Recompute the full chain; raise :class:`AuditError` on any break."""
        prev_hash = _GENESIS
        for position, entry in enumerate(self._entries):
            if entry.index != position:
                raise AuditError(
                    f"audit entry at position {position} claims index {entry.index}"
                )
            if entry.prev_hash != prev_hash:
                raise AuditError(f"audit chain broken before entry {position}")
            expected = AuditEntry.compute_hash(
                entry.index, entry.time, entry.kind, entry.subject,
                entry.detail, entry.prev_hash,
            )
            if expected != entry.entry_hash:
                raise AuditError(f"audit entry {position} content was altered")
            prev_hash = entry.entry_hash
        return True

    def sink(self):
        """A ``(kind, detail)`` callable for components that take an audit
        sink (break-glass controller, governance).  Time and subject are
        pulled from the detail dict when present."""
        def _sink(kind: str, detail: dict) -> None:
            time = float(detail.get("time", 0.0))
            subject = str(detail.get("device", detail.get("subject", "")))
            self.append(time, kind, subject, detail)
        return _sink

    # -- durability ------------------------------------------------------------

    def checkpoint(self) -> Optional[int]:
        """Snapshot the full chain into the journal's snapshot blob and
        compact the journal.  No-op without a journal, and while crashed
        (a checkpoint of wiped memory would compact real history away)."""
        if self._journal is None or self._crashed:
            return None
        return self._journal.snapshot(
            {"entries": [entry.to_payload() for entry in self._entries]})

    def durable_entries(self) -> int:
        """Entries a crash right now provably could not erase."""
        if self._journal is None:
            return 0
        return min(self._journal.durable_records, len(self._entries))

    def crash_volatile(self) -> dict:
        """Crash semantics: the in-memory chain is gone; only journaled
        frames survive.  Returns loss accounting for the fault layer."""
        lost = len(self._entries) - self.durable_entries()
        if self._journal is not None:
            self._journal.drop_volatile()
        self._lost_at_crash = len(self._entries)    # vs. recovered, later
        self._entries = []
        self._crashed = True
        return {"lost": lost, "kind": "audit", "journaled": self.journaled}

    def recover(self) -> dict:
        """Rebuild the chain from stable storage after a crash.

        Replays the snapshot (if any) plus the journal's trustworthy
        tail, re-verifies the recovered chain (a tampered journal —
        edited payload with a recomputed CRC — still breaks the hash
        chain and raises :class:`AuditError`), and appends an explicit
        ``audit.gap`` entry when the recovered chain is shorter than the
        pre-crash one.  The hash chain then *resumes from the recovered
        head*: new entries link to the last surviving hash.
        """
        recovered: list[AuditEntry] = []
        torn = False
        if self._journal is not None:
            snapshot, records, report = self._journal.recover()
            torn = report.truncated or report.corrupt_frame
            if snapshot is not None:
                for payload in snapshot.get("state", {}).get("entries", []):
                    recovered.append(AuditEntry.from_payload(payload))
            for record in records:
                recovered.append(AuditEntry.from_payload(record.payload))
        replayed = len(recovered)
        self._entries = list(recovered)
        self._crashed = False
        self.verify()
        lost = max(0, self._lost_at_crash - replayed)
        self._lost_at_crash = 0
        gap = lost > 0 or torn
        if gap:
            self.append(0.0 if not recovered else recovered[-1].time,
                        GAP_KIND, "recovery", {
                            "lost_entries": lost,
                            "torn_tail": torn,
                            "resumed_from": (recovered[-1].entry_hash
                                             if recovered else _GENESIS),
                        })
        return {"replayed": replayed, "lost": lost, "gap": gap}

    def gap_entries(self) -> list[AuditEntry]:
        """The explicit loss markers recoveries appended (forensic holes)."""
        return self.entries(GAP_KIND)
