"""Hash-chained, append-only audit log.

Each entry commits to its predecessor's hash, so any retroactive edit or
deletion breaks verification — the in-library realization of the paper's
"tamper-proof" record-keeping assumption, and the thing a malevolent
device would have to defeat to hide break-glass abuse.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Optional

from repro.errors import AuditError

_GENESIS = "0" * 64


def _canonical(payload: dict) -> str:
    """Deterministic JSON for hashing (sorted keys, no whitespace drift)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"), default=str)


@dataclass(frozen=True)
class AuditEntry:
    """One immutable log record."""

    index: int
    time: float
    kind: str
    subject: str
    detail: dict
    prev_hash: str
    entry_hash: str

    @staticmethod
    def compute_hash(index: int, time: float, kind: str, subject: str,
                     detail: dict, prev_hash: str) -> str:
        body = _canonical({
            "index": index, "time": time, "kind": kind,
            "subject": subject, "detail": detail, "prev": prev_hash,
        })
        return hashlib.sha256(body.encode("utf-8")).hexdigest()


class AuditLog:
    """Append-only log with O(1) append and full-chain verification."""

    def __init__(self) -> None:
        self._entries: list[AuditEntry] = []

    def __len__(self) -> int:
        return len(self._entries)

    def append(self, time: float, kind: str, subject: str,
               detail: Optional[dict] = None) -> AuditEntry:
        detail = dict(detail or {})
        index = len(self._entries)
        prev_hash = self._entries[-1].entry_hash if self._entries else _GENESIS
        entry_hash = AuditEntry.compute_hash(index, time, kind, subject,
                                             detail, prev_hash)
        entry = AuditEntry(index=index, time=time, kind=kind, subject=subject,
                           detail=detail, prev_hash=prev_hash,
                           entry_hash=entry_hash)
        self._entries.append(entry)
        return entry

    def entries(self, kind_prefix: str = "", subject: Optional[str] = None) -> list[AuditEntry]:
        out = []
        for entry in self._entries:
            if kind_prefix and not (
                entry.kind == kind_prefix or entry.kind.startswith(kind_prefix + ".")
            ):
                continue
            if subject is not None and entry.subject != subject:
                continue
            out.append(entry)
        return out

    def last(self) -> Optional[AuditEntry]:
        return self._entries[-1] if self._entries else None

    def head_hash(self) -> str:
        return self._entries[-1].entry_hash if self._entries else _GENESIS

    def verify(self) -> bool:
        """Recompute the full chain; raise :class:`AuditError` on any break."""
        prev_hash = _GENESIS
        for position, entry in enumerate(self._entries):
            if entry.index != position:
                raise AuditError(
                    f"audit entry at position {position} claims index {entry.index}"
                )
            if entry.prev_hash != prev_hash:
                raise AuditError(f"audit chain broken before entry {position}")
            expected = AuditEntry.compute_hash(
                entry.index, entry.time, entry.kind, entry.subject,
                entry.detail, entry.prev_hash,
            )
            if expected != entry.entry_hash:
                raise AuditError(f"audit entry {position} content was altered")
            prev_hash = entry.entry_hash
        return True

    def sink(self):
        """A ``(kind, detail)`` callable for components that take an audit
        sink (break-glass controller, governance).  Time and subject are
        pulled from the detail dict when present."""
        def _sink(kind: str, detail: dict) -> None:
            time = float(detail.get("time", 0.0))
            subject = str(detail.get("device", detail.get("subject", "")))
            self.append(time, kind, subject, detail)
        return _sink
