"""Exception hierarchy for skynet-guard.

All library exceptions derive from :class:`SkynetGuardError` so callers can
catch a single base class at API boundaries.  Safeguard vetoes are modelled
as exceptions deliberately: a vetoed action must never be silently dropped,
and the engine converts vetoes into explicit, auditable outcomes.
"""

from __future__ import annotations


class SkynetGuardError(Exception):
    """Base class for all errors raised by the library."""


class ConfigurationError(SkynetGuardError):
    """A component was constructed or wired with invalid parameters."""


class PolicyError(SkynetGuardError):
    """Base class for policy definition and evaluation errors."""


class ConditionParseError(PolicyError):
    """A condition expression could not be parsed."""


class ConditionEvalError(PolicyError):
    """A condition referenced an unknown variable or mis-typed operand."""


class PolicyConflictError(PolicyError):
    """Two applicable policies demand contradictory actions."""


class TemplateError(PolicyError):
    """A policy template slot could not be filled."""


class GrammarError(PolicyError):
    """A policy-generator grammar is malformed or produced no policies."""


class StateError(SkynetGuardError):
    """Base class for state-space errors."""


class UnknownVariableError(StateError):
    """A state variable name is not declared in the device's state space."""


class StateBoundsError(StateError):
    """A value assignment violates a declared variable's bounds."""


class SafeguardViolation(SkynetGuardError):
    """Base class for safeguard vetoes.

    Raised when a safeguard refuses an action or transition.  The engine
    catches these, records them in the audit trail, and selects an
    alternative (or no-op) instead of executing the vetoed action.
    """

    def __init__(self, message: str, *, safeguard: str = "", detail: dict | None = None):
        super().__init__(message)
        self.safeguard = safeguard
        self.detail = dict(detail or {})


class PreActionVeto(SafeguardViolation):
    """A pre-action check predicted the action would harm a human (sec VI-A)."""


class StateSpaceVeto(SafeguardViolation):
    """A transition would enter a bad state (sec VI-B)."""


class CollectionVeto(SafeguardViolation):
    """A collection-formation check rejected a join/leave (sec VI-D)."""


class GovernanceVeto(SafeguardViolation):
    """The governance collectives rejected a policy or action (sec VI-E)."""


class DeactivatedError(SafeguardViolation):
    """The device has been deactivated by the watchdog (sec VI-C)."""


class TamperError(SkynetGuardError):
    """A sealed component's integrity attestation failed (sec VI tamper-proofing)."""


class BreakGlassError(SkynetGuardError):
    """A break-glass invocation was malformed or not permitted (sec VI-B)."""


class AuditError(SkynetGuardError):
    """The tamper-evident audit chain failed verification."""


class StorageError(SkynetGuardError):
    """Stable storage or write-ahead journal misuse."""


class NetworkError(SkynetGuardError):
    """Message delivery or discovery failed."""


class SimulationError(SkynetGuardError):
    """The discrete-event simulator was driven incorrectly."""


class AttackError(SkynetGuardError):
    """An attack injector was configured or applied incorrectly."""


class LearningError(SkynetGuardError):
    """A learning component received invalid training input."""
