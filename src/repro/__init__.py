"""skynet-guard: policy-based autonomic device management with
Skynet-prevention safeguards.

Reproduction of Calo, Verma, Bertino, Ingham, Cirincione — "How to Prevent
Skynet From Forming (A Perspective from Policy-based Autonomic Device
Management)", ICDCS 2018.

The top-level namespace re-exports the most commonly used pieces; the
subpackages hold the full system:

>>> import repro
>>> sim = repro.Simulator(seed=1)
>>> world = repro.World(sim)
>>> drone = repro.make_drone("uav1", world)

See README.md for a tour and DESIGN.md for the full inventory.
"""

from repro.core.actions import Action, ActionLibrary, Effect, noop_action
from repro.core.conditions import parse_condition
from repro.core.device import Actuator, Device, Sensor
from repro.core.engine import Decision, PolicyEngine, Safeguard
from repro.core.events import Event
from repro.core.policy import Policy, PolicySet
from repro.core.state import DeviceState, StateSpace, StateVariable
from repro.devices.base import SimDevice, bind_device
from repro.devices.drone import make_drone
from repro.devices.mule import make_mule
from repro.devices.world import World, WorldHarmModel
from repro.net.network import Network
from repro.net.topology import Topology
from repro.safeguards.preaction import PreActionCheck
from repro.safeguards.statespace import StateSpaceGuard
from repro.safeguards.tamper import seal_guard_chain
from repro.scenarios.harness import ExperimentTable, SafeguardConfig
from repro.sim.simulator import Simulator
from repro.types import ActionOutcome, HarmKind, Safeness

__version__ = "1.0.0"

__all__ = [
    "Action",
    "ActionLibrary",
    "ActionOutcome",
    "Actuator",
    "Decision",
    "Device",
    "DeviceState",
    "Effect",
    "Event",
    "ExperimentTable",
    "HarmKind",
    "Network",
    "Policy",
    "PolicyEngine",
    "PolicySet",
    "PreActionCheck",
    "Safeguard",
    "SafeguardConfig",
    "Safeness",
    "Sensor",
    "SimDevice",
    "Simulator",
    "StateSpace",
    "StateSpaceGuard",
    "StateVariable",
    "Topology",
    "World",
    "WorldHarmModel",
    "__version__",
    "bind_device",
    "make_drone",
    "make_mule",
    "noop_action",
    "parse_condition",
    "seal_guard_chain",
]
