"""The service substrate: a real-time, sim-shaped runtime (E23).

Every observability instrument in this library — :class:`~repro.telemetry.
spans.Tracer`, :class:`~repro.telemetry.health.HealthMonitor`,
:class:`~repro.telemetry.health.AlertEngine`, :func:`~repro.telemetry.
exposition.write_bundle` — was built against the discrete-event
:class:`~repro.sim.simulator.Simulator`'s small surface: ``.now``,
``.metrics``, ``.telemetry``, ``.trace``, ``.record()``, ``.every()``.
A long-running control plane is not a simulation, but it needs exactly
those instruments watching *itself*.  :class:`ServiceRuntime` provides
the same surface over a real clock, so the whole E19/E20 stack serves
the API unchanged — same span grammar, same SLI estimators, same alert
rules the fleet uses.

Periodic tasks (the health monitor's sampling tick) are **pumped**, not
threaded: :meth:`ServiceRuntime.pump` runs every task that has come due
on the current clock.  The HTTP layer pumps from a small asyncio loop;
tests install a :class:`ManualClock` and pump deterministically.  Lazy
span roots are seeded exactly like :class:`~repro.sim.simulator.
PeriodicTask` does, so an idle monitor tick allocates no spans.
"""

from __future__ import annotations

import time as _time
from typing import Any, Callable, Optional

from repro.sim.metrics import MetricsRegistry
from repro.sim.tracing import TraceRecorder
from repro.telemetry.spans import Tracer


class ManualClock:
    """A settable clock for deterministic tests: ``advance`` moves time."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def __call__(self) -> float:
        return self._now

    def advance(self, delta: float) -> float:
        if delta < 0:
            raise ValueError("cannot advance a clock backwards")
        self._now += delta
        return self._now

    def set(self, now: float) -> None:
        if now < self._now:
            raise ValueError("cannot set a clock backwards")
        self._now = float(now)


class MonotonicClock:
    """Wall-adjacent clock starting at 0.0 (``time.monotonic`` offset)."""

    def __init__(self):
        self._origin = _time.monotonic()

    def __call__(self) -> float:
        return _time.monotonic() - self._origin


class RuntimePeriodicTask:
    """One pumped periodic callback (the sim's ``PeriodicTask`` analogue)."""

    __slots__ = ("runtime", "interval", "label", "fired", "_callback",
                 "_args", "_next_due", "_cancelled")

    def __init__(self, runtime: "ServiceRuntime", interval: float,
                 callback: Callable[..., Any], args: tuple, label: str,
                 start_after: Optional[float]):
        self.runtime = runtime
        self.interval = interval
        self.label = label
        self.fired = 0
        self._callback = callback
        self._args = args
        delay = interval if start_after is None else start_after
        self._next_due = runtime.now + delay
        self._cancelled = False

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def cancel(self) -> None:
        self._cancelled = True

    def run_due(self, now: float, max_catchup: int = 64) -> int:
        """Fire every occurrence due at or before ``now``; returns count.

        A runtime that slept through several intervals catches up with at
        most ``max_catchup`` back-to-back firings, then re-anchors on the
        current clock — a stalled pump must not replay an unbounded
        backlog of monitor ticks.
        """
        ran = 0
        tracer = self.runtime.telemetry
        while not self._cancelled and self._next_due <= now:
            self.fired += 1
            ran += 1
            if tracer.enabled and tracer.current is None:
                # Lazy root, exactly like the simulator's PeriodicTask:
                # a tick that mints no downstream span allocates nothing.
                tracer.pending_root = (self.label, self.runtime.now)
                try:
                    self._callback(*self._args)
                finally:
                    tracer.pending_root = None
                    tracer.current = None
            else:
                self._callback(*self._args)
            self._next_due += self.interval
            if ran >= max_catchup:
                self._next_due = now + self.interval
                break
        return ran


class ServiceRuntime:
    """Sim-shaped substrate for a long-running service.

    Exposes the instrument surface (``now``/``metrics``/``telemetry``/
    ``trace``/``record``/``every``/``events_processed``) so health
    monitors, alert engines, audit sinks, and bundle exports built for
    the simulator observe the service without modification.
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None,
                 spans_enabled: bool = True,
                 span_capacity: Optional[int] = 200_000,
                 trace_capacity: Optional[int] = 100_000):
        self.clock = clock if clock is not None else MonotonicClock()
        self.metrics = MetricsRegistry()
        self.telemetry = Tracer(enabled=spans_enabled, capacity=span_capacity,
                                clock=lambda: self.now)
        self.trace = TraceRecorder(capacity=trace_capacity,
                                   enabled=spans_enabled)
        #: Requests handled (the bundle manifest's ``events_processed``).
        self.events_processed = 0
        self.started_at = self.now
        self._tasks: list[RuntimePeriodicTask] = []

    @property
    def now(self) -> float:
        return self.clock()

    def uptime(self) -> float:
        return self.now - self.started_at

    # -- the simulator surface --------------------------------------------------

    def record(self, kind: str, subject: str, **detail) -> None:
        """Record a trace event stamped with the current clock."""
        self.trace.record(self.now, kind, subject, **detail)

    def every(self, interval: float, callback: Callable[..., Any], *args: Any,
              start_after: Optional[float] = None,
              label: str = "") -> RuntimePeriodicTask:
        """Register a pumped periodic task (the sim's ``every`` analogue)."""
        if interval <= 0:
            raise ValueError(f"periodic interval must be positive, got {interval}")
        task = RuntimePeriodicTask(self, interval, callback, args, label,
                                   start_after)
        self._tasks.append(task)
        return task

    # -- pumping ----------------------------------------------------------------

    def pump(self) -> int:
        """Run every periodic task that has come due; returns firings."""
        now = self.now
        ran = 0
        cancelled = False
        for task in self._tasks:
            if task.cancelled:
                cancelled = True
                continue
            ran += task.run_due(now)
        if cancelled:
            self._tasks = [task for task in self._tasks if not task.cancelled]
        return ran

    def min_interval(self) -> Optional[float]:
        """The tightest registered interval (the pump loop's sleep hint)."""
        live = [task.interval for task in self._tasks if not task.cancelled]
        return min(live) if live else None
