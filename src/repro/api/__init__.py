"""The always-on policy control plane (E23).

The paper's safeguards are only meaningful if they are *always on*: a
guard that exists solely inside batch scenario runs protects nothing at
runtime.  This package wraps the guard/engine/governance stack in a
long-running, dependency-free service with end-to-end observability —
request-scoped causal spans, RED metrics with streaming P² latency
quantiles, structured access logs, admission control with E21-style
metered rejects, a bounded background job queue, and an E20 alert
engine watching the service's own SLIs.

Modules:

* :mod:`repro.api.runtime` — :class:`ServiceRuntime`, the sim-shaped
  real-time substrate the E19/E20 instruments run on unchanged;
* :mod:`repro.api.profile` — the evaluation profile (state space +
  policies + guards) a control plane serves;
* :mod:`repro.api.auth` — API keys + token-bucket rate limiting;
* :mod:`repro.api.jobs` — bounded job queue + worker pool;
* :mod:`repro.api.accesslog` — bounded structured access-log ring;
* :mod:`repro.api.service` — :class:`ControlPlane`, the transport-
  agnostic request path and endpoint handlers;
* :mod:`repro.api.http` — the stdlib asyncio HTTP/1.1 front end;
* ``python -m repro.api`` — the CLI (see :mod:`repro.api.__main__`).
"""

from repro.api.accesslog import AccessLog
from repro.api.auth import AdmissionControl, TokenBucket
from repro.api.http import HttpServer, ServerThread, serve
from repro.api.jobs import Job, JobQueue
from repro.api.profile import EvaluationProfile, default_profile
from repro.api.runtime import ManualClock, MonotonicClock, ServiceRuntime
from repro.api.service import ApiResponse, ControlPlane, ControlPlaneConfig

__all__ = [
    "AccessLog",
    "AdmissionControl",
    "TokenBucket",
    "HttpServer",
    "ServerThread",
    "serve",
    "Job",
    "JobQueue",
    "EvaluationProfile",
    "default_profile",
    "ManualClock",
    "MonotonicClock",
    "ServiceRuntime",
    "ApiResponse",
    "ControlPlane",
    "ControlPlaneConfig",
]
