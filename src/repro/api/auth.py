"""Admission control for the control plane: API keys + token buckets (E23).

Mirrors the E21 gateway's posture at the HTTP edge: *verify, then
serve*.  Every reject is metered (``api.errors.<reason>``), traced
(``api.reject`` spans under the request root), and trace-recorded, so a
credential-stuffing burst or a runaway client is as observable as a
forged kill order.

Rate limiting is a classic token bucket per principal: ``rate`` tokens
per second refill up to ``burst``.  The bucket reads the runtime clock,
so tests drive it deterministically with a :class:`~repro.api.runtime.
ManualClock`.
"""

from __future__ import annotations

from typing import Optional

#: Stable admission-rejection reasons (metric suffixes).
ADMISSION_REASONS = ("unauthorized", "rate-limited")


class TokenBucket:
    """``rate`` tokens/second refilling to ``burst``; ``allow`` consumes."""

    __slots__ = ("rate", "burst", "_tokens", "_last")

    def __init__(self, rate: float, burst: float):
        if rate <= 0 or burst <= 0:
            raise ValueError("token bucket rate and burst must be positive")
        self.rate = rate
        self.burst = burst
        self._tokens = burst
        self._last: Optional[float] = None

    def allow(self, now: float, cost: float = 1.0) -> bool:
        last = self._last
        if last is not None and now > last:
            self._tokens = min(self.burst, self._tokens + (now - last) * self.rate)
        self._last = now if last is None or now > last else last
        if self._tokens >= cost:
            self._tokens -= cost
            return True
        return False

    @property
    def tokens(self) -> float:
        return self._tokens


class AdmissionControl:
    """API-key authentication plus per-principal rate limiting.

    ``api_keys`` maps secret key -> principal name; ``None`` disables
    authentication (every caller is ``"anonymous"``).  ``rate`` /
    ``burst`` arm the per-principal token bucket; ``rate=None`` disables
    limiting.  Endpoints in ``open_endpoints`` (liveness and metrics
    scrapes by convention) bypass both checks.
    """

    def __init__(self, runtime, api_keys: Optional[dict] = None,
                 rate: Optional[float] = None, burst: float = 20.0,
                 open_endpoints: tuple = ("health", "metrics")):
        self.runtime = runtime
        self.api_keys = dict(api_keys) if api_keys else None
        self.rate = rate
        self.burst = burst
        self.open_endpoints = tuple(open_endpoints)
        self._buckets: dict = {}
        metrics = runtime.metrics
        self._admitted = metrics.counter("api.admitted")
        self._rejected = metrics.counter("api.admission_rejected")

    def principal_for(self, headers: dict) -> Optional[str]:
        """The principal an ``x-api-key`` header authenticates, if any."""
        if self.api_keys is None:
            return "anonymous"
        key = headers.get("x-api-key")
        if key is None:
            auth = headers.get("authorization", "")
            if auth.lower().startswith("bearer "):
                key = auth[7:].strip()
        if key is None:
            return None
        return self.api_keys.get(key)

    def admit(self, endpoint: str, headers: dict) -> tuple:
        """``(principal, None)`` when admitted, ``(best_guess, reason)``
        when rejected — reasons are :data:`ADMISSION_REASONS` slugs."""
        if endpoint in self.open_endpoints:
            return (self.principal_for(headers) or "anonymous", None)
        principal = self.principal_for(headers)
        if principal is None:
            self._rejected.inc()
            return (None, "unauthorized")
        if self.rate is not None:
            bucket = self._buckets.get(principal)
            if bucket is None:
                bucket = self._buckets[principal] = TokenBucket(self.rate,
                                                                self.burst)
            if not bucket.allow(self.runtime.now):
                self._rejected.inc()
                return (principal, "rate-limited")
        self._admitted.inc()
        return (principal, None)
