"""Structured access logging in the telemetry-bundle format (E23).

One JSON object per handled request — timestamp, endpoint, status,
principal, reject reason, trace id, latency — retained in a bounded
in-memory ring (so `/health` style introspection and the bundle export
never grow without bound) and optionally streamed line-by-line to a
JSONL file for tailing a live service.

The file stream rotates by size (E24 satellite): a long-running service
with ``max_bytes`` set rolls ``access.jsonl`` to ``access.jsonl.1``
(older generations shifting up to ``.{rotations}``, the oldest dropped)
once the current file crosses the threshold — the JSONL stream stays
tail-able forever without growing unboundedly, matching the bounded-
memory posture everywhere else in the observability stack.
"""

from __future__ import annotations

import json
import os
from collections import deque
from typing import Optional


class AccessLog:
    """Bounded ring of access records with an optional JSONL stream."""

    def __init__(self, capacity: int = 10_000, path: Optional[str] = None,
                 max_bytes: Optional[int] = None, rotations: int = 3):
        if capacity < 1:
            raise ValueError("access log capacity must be >= 1")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("access log max_bytes must be >= 1")
        if rotations < 1:
            raise ValueError("access log rotations must be >= 1")
        self.capacity = capacity
        self.path = path
        self.max_bytes = max_bytes
        self.rotations = rotations
        self.written = 0
        self.rotated = 0
        self._ring: deque = deque(maxlen=capacity)
        self._handle = None
        self._file_bytes = 0
        if path is not None:
            # Appending to an existing file counts its bytes toward the
            # rotation threshold — restarts don't reset the budget.
            self._file_bytes = (os.path.getsize(path)
                                if os.path.exists(path) else 0)
            self._handle = open(path, "a", encoding="utf-8")

    def log(self, record: dict) -> None:
        """Retain (and stream, if configured) one request record."""
        self._ring.append(record)
        self.written += 1
        if self._handle is not None:
            line = json.dumps(record, sort_keys=True, default=str) + "\n"
            self._handle.write(line)
            self._handle.flush()
            self._file_bytes += len(line.encode("utf-8"))
            if (self.max_bytes is not None
                    and self._file_bytes >= self.max_bytes):
                self._rotate()

    def _rotate(self) -> None:
        """Roll the stream: ``path`` -> ``path.1`` -> ... -> dropped."""
        self._handle.close()
        oldest = f"{self.path}.{self.rotations}"
        if os.path.exists(oldest):
            os.remove(oldest)
        for generation in range(self.rotations - 1, 0, -1):
            source = f"{self.path}.{generation}"
            if os.path.exists(source):
                os.replace(source, f"{self.path}.{generation + 1}")
        os.replace(self.path, f"{self.path}.1")
        self._handle = open(self.path, "a", encoding="utf-8")
        self._file_bytes = 0
        self.rotated += 1

    def tail(self, n: int = 50) -> list:
        """The most recent ``n`` records, oldest first."""
        if n <= 0:
            return []
        ring = self._ring
        if n >= len(ring):
            return list(ring)
        return list(ring)[-n:]

    def __len__(self) -> int:
        return len(self._ring)

    def export_jsonl(self, path: str) -> int:
        """Write the retained ring as JSON Lines; returns the count."""
        count = 0
        with open(path, "w", encoding="utf-8") as handle:
            for record in self._ring:
                handle.write(json.dumps(record, sort_keys=True, default=str)
                             + "\n")
                count += 1
        return count

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
