"""Structured access logging in the telemetry-bundle format (E23).

One JSON object per handled request — timestamp, endpoint, status,
principal, reject reason, trace id, latency — retained in a bounded
in-memory ring (so `/health` style introspection and the bundle export
never grow without bound) and optionally streamed line-by-line to a
JSONL file for tailing a live service.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Optional


class AccessLog:
    """Bounded ring of access records with an optional JSONL stream."""

    def __init__(self, capacity: int = 10_000, path: Optional[str] = None):
        if capacity < 1:
            raise ValueError("access log capacity must be >= 1")
        self.capacity = capacity
        self.path = path
        self.written = 0
        self._ring: deque = deque(maxlen=capacity)
        self._handle = None
        if path is not None:
            self._handle = open(path, "a", encoding="utf-8")

    def log(self, record: dict) -> None:
        """Retain (and stream, if configured) one request record."""
        self._ring.append(record)
        self.written += 1
        if self._handle is not None:
            self._handle.write(json.dumps(record, sort_keys=True,
                                          default=str) + "\n")
            self._handle.flush()

    def tail(self, n: int = 50) -> list:
        """The most recent ``n`` records, oldest first."""
        if n <= 0:
            return []
        ring = self._ring
        if n >= len(ring):
            return list(ring)
        return list(ring)[-n:]

    def __len__(self) -> int:
        return len(self._ring)

    def export_jsonl(self, path: str) -> int:
        """Write the retained ring as JSON Lines; returns the count."""
        count = 0
        with open(path, "w", encoding="utf-8") as handle:
            for record in self._ring:
                handle.write(json.dumps(record, sort_keys=True, default=str)
                             + "\n")
                count += 1
        return count

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
