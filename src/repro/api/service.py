"""The E23 control plane: guarded policy decisions behind a service API.

:class:`ControlPlane` is transport-agnostic — :meth:`handle_request`
takes ``(method, path, query, headers, body)`` and returns an
:class:`ApiResponse` — so the asyncio HTTP front end
(:mod:`repro.api.http`), the CLI smoke test, and the E23 bench's
direct-dispatch overhead arms all drive exactly the same code.

Observability is structural, not optional logging:

* every request mints an ``api.request`` root span and activates it, so
  engine decisions, safeguard vetoes, journal appends, and admission
  rejects all nest under one trace the caller can replay via
  ``/explain`` (the response echoes ``trace_id``);
* RED metrics per endpoint — ``api.requests[.*]`` rates,
  ``api.errors.<reason>`` by stable reason slug, an ``api.latency``
  histogram feeding streaming P² p50/p95/p99 SLIs;
* a structured access-log record per request in the bundle format;
* admission rejects are metered, traced, trace-recorded **and**
  hash-chain audited — the E21 gateway posture at the HTTP edge;
* an E20 :class:`~repro.telemetry.health.AlertEngine` watches the
  service's *own* SLIs (error rate, p99, queue saturation) with the
  same rule grammar the fleet uses: the control plane self-monitors.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from time import perf_counter
from typing import Optional

from repro.api.accesslog import AccessLog
from repro.api.auth import AdmissionControl
from repro.api.jobs import JobQueue
from repro.api.profile import EvaluationProfile, default_profile
from repro.api.runtime import ServiceRuntime
from repro.audit.log import AuditLog
from repro.core.events import Event
from repro.statespace.batch import StateMatrix, numpy_available
from repro.telemetry.explain import explain
from repro.telemetry.exposition import prometheus_text, write_bundle
from repro.telemetry.health import AlertEngine, AlertRule, HealthMonitor

#: Endpoints the router knows.  ``/jobs`` additionally accepts an id
#: path segment (``/jobs/job-3``).
ENDPOINTS = ("evaluate", "batch", "audit", "explain", "health", "metrics",
             "jobs", "query")

#: Stable error-reason slugs -> HTTP status.
_REASON_STATUS = {
    "unauthorized": 401, "rate-limited": 429, "not-found": 404,
    "bad-request": 400, "method-not-allowed": 405, "queue-full": 503,
    "unknown-kind": 400, "no-numpy": 503, "too-many-rows": 413,
    "no-warehouse": 503, "internal": 500,
}


class ApiResponse:
    """One transport-agnostic response: status + payload + trace id."""

    __slots__ = ("status", "payload", "content_type", "trace_id", "reason")

    def __init__(self, status: int, payload, content_type: str,
                 trace_id: Optional[str], reason: Optional[str]):
        self.status = status
        self.payload = payload
        self.content_type = content_type
        self.trace_id = trace_id
        self.reason = reason

    def body_bytes(self) -> bytes:
        if isinstance(self.payload, (bytes, bytearray)):
            return bytes(self.payload)
        if isinstance(self.payload, str):
            return self.payload.encode("utf-8")
        return (json.dumps(self.payload, sort_keys=True, default=str)
                + "\n").encode("utf-8")


@dataclass
class ControlPlaneConfig:
    """Service knobs: admission, queueing, self-monitoring, observability."""

    api_keys: Optional[dict] = None          # key -> principal; None = open
    rate: Optional[float] = None             # req/s per principal; None = off
    burst: float = 20.0
    queue_capacity: int = 8
    workers: int = 2
    monitor_interval: float = 1.0
    observability: bool = True               # spans + RED + access log
    access_log_capacity: int = 10_000
    access_log_path: Optional[str] = None
    access_log_max_bytes: Optional[int] = None   # rotate stream at this size
    access_log_rotations: int = 3
    error_rate_threshold: float = 0.5        # api-error-rate alert
    p99_threshold_s: float = 0.5             # api-p99-latency alert
    batch_row_limit: int = 100_000
    batch_return_rows_max: int = 256
    audit_tail_limit: int = 500
    extra_alert_rules: list = field(default_factory=list)
    #: Directory of an E24 telemetry warehouse to serve via ``/query``
    #: (``None`` = endpoint answers 503 ``no-warehouse``).
    warehouse_dir: Optional[str] = None
    query_result_limit: int = 500


class ControlPlane:
    """The always-on policy decision service (paper sec V at runtime)."""

    def __init__(self, profile: Optional[EvaluationProfile] = None,
                 config: Optional[ControlPlaneConfig] = None,
                 clock=None):
        self.config = config or ControlPlaneConfig()
        cfg = self.config
        self.runtime = ServiceRuntime(clock=clock,
                                      spans_enabled=cfg.observability)
        self.profile = profile or default_profile()
        self.device = self.profile.build_device(
            clock=lambda: self.runtime.now, tracer=self.runtime.telemetry)
        self.batch_evaluator = (self.profile.build_batch_evaluator()
                                if numpy_available() else None)
        self.audit = AuditLog()
        self.admission = AdmissionControl(
            self.runtime, api_keys=cfg.api_keys, rate=cfg.rate,
            burst=cfg.burst)
        self.access = AccessLog(capacity=cfg.access_log_capacity,
                                path=cfg.access_log_path,
                                max_bytes=cfg.access_log_max_bytes,
                                rotations=cfg.access_log_rotations)
        self.jobs = JobQueue(self.runtime, capacity=cfg.queue_capacity,
                             workers=cfg.workers)
        self.warehouse = None
        if cfg.warehouse_dir is not None:
            from repro.telemetry.warehouse import Warehouse

            self.warehouse = Warehouse(cfg.warehouse_dir)
        self.monitor = HealthMonitor(self.runtime,
                                     interval=cfg.monitor_interval)
        self.alerts = AlertEngine(self.runtime, self.monitor,
                                  audit=self.audit)
        self._register_slis()
        self._register_alert_rules()
        metrics = self.runtime.metrics
        self._requests = metrics.counter("api.requests")
        self._errors = metrics.counter("api.errors")
        self._latency = metrics.histogram("api.latency")
        # Hot-path counter caches: registry lookups are name-hashed, so
        # the per-request path holds direct references instead.
        self._endpoint_counters = {
            endpoint: metrics.counter(f"api.requests.{endpoint}")
            for endpoint in ENDPOINTS
        }
        self._reason_counters = {
            reason: metrics.counter(f"api.errors.{reason}")
            for reason in _REASON_STATUS
        }
        self._handlers = {
            "evaluate": self._handle_evaluate,
            "batch": self._handle_batch,
            "audit": self._handle_audit,
            "explain": self._handle_explain,
            "health": self._handle_health,
            "metrics": self._handle_metrics,
            "jobs": self._handle_jobs,
            "query": self._handle_query,
        }

    # -- self-monitoring --------------------------------------------------------

    def _register_slis(self) -> None:
        monitor = self.monitor
        metrics = self.runtime.metrics
        # Latency quantiles are read from the histogram at tick time, not
        # streamed through per-observation P² estimators: the histogram
        # is already exact, and keeping estimators off the request path
        # saves ~9us on every request (the monitor samples once per
        # interval, not once per request).
        latency = metrics.histogram("api.latency")
        monitor.track_value("api.latency_p50",
                            lambda _now: latency.quantile(0.5))
        monitor.track_value("api.latency_p95",
                            lambda _now: latency.quantile(0.95))
        monitor.track_value("api.latency_p99",
                            lambda _now: latency.quantile(0.99))
        monitor.track_rate("api.request_rate", "api.requests")
        monitor.track_ratio("api.error_rate", "api.errors", "api.requests")
        monitor.track_value("jobs.queue_depth",
                            lambda _now: metrics.value("jobs.queue_depth"))
        monitor.track_value(
            "jobs.queue_saturation",
            lambda _now: metrics.value("jobs.queue_saturation"))
        monitor.track_value("jobs.workers_busy",
                            lambda _now: metrics.value("jobs.workers_busy"))

    def _register_alert_rules(self) -> None:
        cfg = self.config
        rules = [
            AlertRule("api-error-rate",
                      f"api.error_rate > {cfg.error_rate_threshold}",
                      severity="critical", for_ticks=2,
                      description="sustained request failure ratio"),
            AlertRule("api-p99-latency",
                      f"api.latency_p99 > {cfg.p99_threshold_s}",
                      severity="warning", for_ticks=3,
                      description="tail latency above SLO"),
            AlertRule("jobs-queue-saturation",
                      "jobs.queue_saturation >= 1", severity="critical",
                      for_ticks=1,
                      description="background job queue is full"),
        ]
        for rule in rules + list(cfg.extra_alert_rules):
            self.alerts.add_rule(rule)

    # -- routing ----------------------------------------------------------------

    @staticmethod
    def route(path: str) -> tuple:
        """``(endpoint, sub)`` — ``(None, None)`` for unknown paths."""
        parts = [part for part in path.split("/") if part]
        if not parts or parts[0] not in ENDPOINTS:
            return (None, None)
        if len(parts) == 1:
            return (parts[0], None)
        if parts[0] == "jobs" and len(parts) == 2:
            return ("jobs", parts[1])
        return (None, None)

    # -- the request path -------------------------------------------------------

    def handle_request(self, method: str, path: str,
                       query: Optional[dict] = None,
                       headers: Optional[dict] = None,
                       body: Optional[bytes] = None,
                       remote: str = "") -> ApiResponse:
        """Serve one request end to end (transport-agnostic core)."""
        start = perf_counter()
        query = query or {}
        headers = headers or {}
        observe = self.config.observability
        runtime = self.runtime
        tracer = runtime.telemetry
        endpoint, sub = self.route(path)
        span = None
        previous = None
        if observe:
            span = tracer.start_trace("api.request", endpoint or path,
                                      method=method, remote=remote)
            if span is not None:
                previous = tracer.activate(span.context)
        trace_id = span.context.trace_id if span is not None else None
        principal = None
        reason: Optional[str] = None
        status, payload = 500, {"error": "internal"}
        try:
            if endpoint is None:
                reason = "not-found"
                status, payload = 404, {"error": reason, "path": path}
            else:
                principal, reject = self.admission.admit(endpoint, headers)
                if reject is not None:
                    reason = reject
                    status = _REASON_STATUS[reject]
                    payload = {"error": reject, "endpoint": endpoint}
                    self._on_admission_reject(span, endpoint, reject,
                                              principal)
                else:
                    status, payload, reason = self._handlers[endpoint](
                        method, sub, query, body)
        except Exception as exc:                  # fail closed, stay up
            reason = "internal"
            status = 500
            payload = {"error": "internal", "detail": str(exc)}
        finally:
            duration = perf_counter() - start
            if span is not None:
                tracer.activate(previous)
                span.detail["status"] = status
                span.detail["duration_ms"] = round(duration * 1000.0, 3)
            runtime.events_processed += 1
            if observe:
                self._requests.inc()
                metrics = runtime.metrics
                counter = self._endpoint_counters.get(endpoint)
                if counter is None:
                    counter = metrics.counter(
                        f"api.requests.{endpoint or 'unknown'}")
                counter.inc()
                if status >= 400:
                    self._errors.inc()
                    counter = self._reason_counters.get(reason)
                    if counter is None:
                        counter = metrics.counter(
                            f"api.errors.{reason or status}")
                    counter.inc()
                self._latency.observe(duration)
                self.access.log({
                    "ts": runtime.now, "method": method,
                    "endpoint": endpoint or path, "status": status,
                    "principal": principal, "reason": reason,
                    "trace_id": trace_id,
                    "duration_ms": round(duration * 1000.0, 3),
                    "remote": remote,
                })
            # Monitor/alert ticks fire outside the request span, so
            # alert traces stay rooted on the alert, not on whichever
            # request happened to pump them.
            runtime.pump()
        if trace_id is not None and isinstance(payload, dict):
            payload.setdefault("trace_id", trace_id)
        content_type = ("text/plain; version=0.0.4; charset=utf-8"
                        if isinstance(payload, str) else "application/json")
        return ApiResponse(status, payload, content_type, trace_id, reason)

    def _on_admission_reject(self, span, endpoint: str, reject: str,
                             principal) -> None:
        """The E21 gateway reject idiom at the HTTP edge: span + trace
        event + audit-chain entry, all carrying the stable reason slug."""
        runtime = self.runtime
        if span is not None:
            runtime.telemetry.start_span("api.reject", endpoint,
                                         parent=span.context, reason=reject,
                                         principal=principal)
        runtime.record("api.reject", endpoint, reason=reject,
                       principal=principal)
        self.audit.append(runtime.now, "api.reject", endpoint,
                          {"reason": reject, "principal": principal})

    # -- endpoint handlers ------------------------------------------------------

    @staticmethod
    def _json_body(body: Optional[bytes]) -> dict:
        if not body:
            return {}
        data = json.loads(body.decode("utf-8"))
        if not isinstance(data, dict):
            raise ValueError("request body must be a JSON object")
        return data

    def _handle_evaluate(self, method, _sub, _query, body):
        if method != "POST":
            return (405, {"error": "method-not-allowed"},
                    "method-not-allowed")
        try:
            data = self._json_body(body)
            event_spec = data.get("event") or {}
            kind = event_spec.get("kind")
            if not kind:
                raise ValueError("event.kind is required")
            device = self.device
            overrides = data.get("state")
            if overrides:
                device.state.apply(dict(overrides), time=self.runtime.now,
                                   cause="api.state")
        except (ValueError, KeyError, TypeError) as exc:
            return (400, {"error": "bad-request", "detail": str(exc)},
                    "bad-request")
        event = Event(kind, time=self.runtime.now,
                      source=str(event_spec.get("source", "api")),
                      payload=dict(event_spec.get("payload") or {}))
        device = self.device
        tracer = self.runtime.telemetry
        # Propagate the request root into the engine: decision spans
        # (and their safeguard.veto children) nest under this request.
        saved = device.trace_context
        device.trace_context = tracer.current
        try:
            decision = device.engine.handle_event(event)
        finally:
            device.trace_context = saved
        return (200, {
            "outcome": decision.outcome.value,
            "policy_id": decision.policy_id,
            "requested": decision.requested,
            "executed": decision.executed,
            "vetoes": [{"safeguard": name, "message": message}
                       for name, message in decision.vetoes],
            "state": device.state.snapshot(),
        }, None)

    def _handle_batch(self, method, _sub, _query, body):
        if method != "POST":
            return (405, {"error": "method-not-allowed"},
                    "method-not-allowed")
        evaluator = self.batch_evaluator
        if evaluator is None:
            return (503, {"error": "no-numpy",
                          "detail": "vectorized path unavailable"},
                    "no-numpy")
        try:
            data = self._json_body(body)
            rows = data.get("rows")
            if not isinstance(rows, list) or not rows:
                raise ValueError("rows must be a non-empty list of "
                                 "state vectors")
        except (ValueError, TypeError) as exc:
            return (400, {"error": "bad-request", "detail": str(exc)},
                    "bad-request")
        if len(rows) > self.config.batch_row_limit:
            return (413, {"error": "too-many-rows",
                          "limit": self.config.batch_row_limit},
                    "too-many-rows")
        before = evaluator.stats()
        matrix = StateMatrix.from_rows(self.profile.space, rows)
        chosen = evaluator.select(matrix)
        vetoed, executed = evaluator.apply(matrix, chosen)
        after = evaluator.stats()
        programs = evaluator.programs
        names = [programs[int(i)].name if i >= 0 else None for i in chosen]
        payload = {
            "rows": matrix.n_rows,
            "chosen": names,
            "vetoed": int(vetoed.sum()),
            "executed": int(executed.sum()),
            # Compile-time fallbacks are structural (per evaluator);
            # the eval deltas are what *this request* cost.
            "fallback_reasons": after["fallback_reasons"],
            "scalar_evals": after["scalar_evals"] - before["scalar_evals"],
            "vector_evals": after["vector_evals"] - before["vector_evals"],
        }
        if (data.get("return_rows")
                or matrix.n_rows <= self.config.batch_return_rows_max):
            payload["results"] = list(matrix.rows())
        return (200, payload, None)

    def _handle_audit(self, method, _sub, query, _body):
        if method != "GET":
            return (405, {"error": "method-not-allowed"},
                    "method-not-allowed")
        kind = query.get("kind", "")
        subject = query.get("subject") or None
        try:
            limit = int(query.get("limit", self.config.audit_tail_limit))
        except ValueError:
            return (400, {"error": "bad-request", "detail": "bad limit"},
                    "bad-request")
        entries = self.audit.entries(kind, subject)
        tail = entries[-limit:] if limit > 0 else []
        return (200, {
            "total": len(self.audit),
            "matched": len(entries),
            "entries": [entry.to_payload() for entry in tail],
            "head_hash": self.audit.head_hash(),
            "verified": self.audit.verify(),
        }, None)

    def _handle_explain(self, method, _sub, query, _body):
        if method != "GET":
            return (405, {"error": "method-not-allowed"},
                    "method-not-allowed")
        trace_id = query.get("trace_id")
        if not trace_id:
            return (400, {"error": "bad-request",
                          "detail": "trace_id query parameter is required"},
                    "bad-request")
        explanation = explain(self.runtime.telemetry, trace_id)
        if not len(explanation):
            return (404, {"error": "not-found", "explain": trace_id},
                    "not-found")
        return (200, {
            "explained": trace_id,
            "spans": explanation.chain(),
            "kinds": explanation.kinds(),
            "subjects": explanation.subjects(),
            "rendered": explanation.render(),
        }, None)

    def _handle_health(self, method, _sub, _query, _body):
        if method != "GET":
            return (405, {"error": "method-not-allowed"},
                    "method-not-allowed")
        active = sorted(self.alerts.active)
        runtime = self.runtime
        return (200, {
            "status": "degraded" if active else "ok",
            "now": runtime.now,
            "uptime": runtime.uptime(),
            "requests": runtime.metrics.value("api.requests"),
            "slis": self.monitor.state,
            "alerts": {"active": active,
                       "fired": len(self.alerts.history)},
            "jobs": {"depth": self.jobs.depth,
                     "capacity": self.jobs.capacity},
            "profile": self.profile.name,
        }, None)

    def _handle_metrics(self, method, _sub, _query, _body):
        if method != "GET":
            return (405, {"error": "method-not-allowed"},
                    "method-not-allowed")
        return (200, prometheus_text(self.runtime.metrics), None)

    def _handle_jobs(self, method, sub, _query, body):
        if method == "POST" and sub is None:
            try:
                data = self._json_body(body)
                kind = data.get("kind")
                if not kind:
                    raise ValueError("kind is required")
            except (ValueError, TypeError) as exc:
                return (400, {"error": "bad-request", "detail": str(exc)},
                        "bad-request")
            trace_id = None
            current = self.runtime.telemetry.current
            if current is not None:
                trace_id = current.trace_id
            job, reject = self.jobs.submit(kind, data.get("params"),
                                           trace_id=trace_id)
            if reject is not None:
                return (_REASON_STATUS[reject],
                        {"error": reject, "kind": kind}, reject)
            return (202, {"job": job.to_dict()}, None)
        if method == "GET" and sub is not None:
            job = self.jobs.get(sub)
            if job is None:
                return (404, {"error": "not-found", "job_id": sub},
                        "not-found")
            return (200, {"job": job.to_dict()}, None)
        if method == "GET":
            jobs = self.jobs.jobs()
            return (200, {"jobs": [job.to_dict() for job in jobs[-50:]],
                          "depth": self.jobs.depth,
                          "capacity": self.jobs.capacity}, None)
        return (405, {"error": "method-not-allowed"}, "method-not-allowed")

    def _handle_query(self, method, _sub, _query, body):
        """The E24 warehouse behind the control plane: cross-run selects,
        percentile aggregation, per-arm group-by, and sentinel compares —
        admission-metered, traced (a ``warehouse.query`` span nests under
        the request root), and explainable like every other route."""
        if method != "POST":
            return (405, {"error": "method-not-allowed"},
                    "method-not-allowed")
        warehouse = self.warehouse
        if warehouse is None:
            return (503, {"error": "no-warehouse",
                          "detail": "no warehouse_dir configured"},
                    "no-warehouse")
        try:
            data = self._json_body(body)
            op = str(data.get("op", "select"))
            where = data.get("where")
            if where is not None and not isinstance(where, dict):
                raise ValueError("where must be a JSON object")
        except (ValueError, TypeError) as exc:
            return (400, {"error": "bad-request", "detail": str(exc)},
                    "bad-request")
        tracer = self.runtime.telemetry
        if tracer.current is not None:
            tracer.start_span("warehouse.query", op, parent=tracer.current,
                              metric=data.get("metric"))
        try:
            if op == "stats":
                return (200, {"op": op, "stats": warehouse.stats()}, None)
            if op == "metrics":
                return (200, {"op": op,
                              "metrics": warehouse.metrics_known(where)},
                        None)
            if op == "compare":
                from repro.telemetry.warehouse import compare_runs

                baseline = warehouse.runs(dict(data.get("baseline") or {}))
                candidate = warehouse.runs(dict(data.get("candidate") or {}))
                report = compare_runs(baseline, candidate)
                return (200, {"op": op, "report": report.to_dict()}, None)
            metric = data.get("metric")
            if not metric:
                raise ValueError(f"op {op!r} requires a metric")
            if op == "select":
                rows = warehouse.select(metric, where)
                limit = self.config.query_result_limit
                return (200, {
                    "op": op, "metric": metric, "matched": len(rows),
                    "values": [{"run": record.key.label(),
                                "experiment": record.key.experiment,
                                "arm": record.key.arm,
                                "seed": record.key.seed,
                                "value": value}
                               for record, value in rows[:limit]],
                }, None)
            if op == "percentile":
                q = data.get("q", [0.5, 0.95, 0.99])
                result = warehouse.percentile(
                    metric, q if isinstance(q, list) else float(q), where)
                matched = len(warehouse.select(metric, where))
                return (200, {"op": op, "metric": metric,
                              "matched": matched,
                              "percentiles": result}, None)
            if op == "group":
                by = str(data.get("by", "arm"))
                quantiles = tuple(float(value)
                                  for value in data.get("quantiles", [0.5]))
                groups = warehouse.group(metric, by=by, where=where,
                                         quantiles=quantiles)
                return (200, {"op": op, "metric": metric, "by": by,
                              "groups": groups}, None)
            raise ValueError(f"unknown op {op!r}")
        except (ValueError, TypeError) as exc:
            return (400, {"error": "bad-request", "detail": str(exc)},
                    "bad-request")

    # -- lifecycle & export -----------------------------------------------------

    def export_bundle(self, dirpath: str,
                      extra_manifest: Optional[dict] = None) -> dict:
        """Write the full telemetry bundle plus the access-log ring."""
        import os

        extra = {"service": "repro.api", "profile": self.profile.name,
                 "access_log_records": len(self.access)}
        if extra_manifest:
            extra.update(extra_manifest)
        manifest = write_bundle(self.runtime, dirpath,
                                extra_manifest=extra, alerts=self.alerts)
        self.access.export_jsonl(os.path.join(dirpath, "access.jsonl"))
        return manifest

    def close(self) -> None:
        self.jobs.stop()
        self.monitor.stop()
        self.access.close()
