"""``python -m repro.api`` — boot the always-on control plane.

Examples::

    python -m repro.api --port 8733
    python -m repro.api --api-key secret1:operator --rate 50 --burst 100
    python -m repro.api --smoke          # boot, self-exercise, exit

``--smoke`` starts the server on an ephemeral port, drives one request
through every endpoint (including a ``/jobs`` round-trip and an
``/explain`` replay of its own ``/evaluate`` trace), prints a JSON
report, and exits non-zero on any failure — the CI smoke job's entry
point.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from typing import Optional

from repro.api.http import ServerThread, serve
from repro.api.service import ControlPlane, ControlPlaneConfig


def _parse_keys(pairs) -> Optional[dict]:
    if not pairs:
        return None
    keys = {}
    for pair in pairs:
        key, sep, principal = pair.partition(":")
        if not sep or not key or not principal:
            raise SystemExit(f"--api-key wants KEY:PRINCIPAL, got {pair!r}")
        keys[key] = principal
    return keys


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.api",
        description="Always-on policy control plane (E23)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8733)
    parser.add_argument("--api-key", action="append", default=[],
                        metavar="KEY:PRINCIPAL",
                        help="require x-api-key auth (repeatable)")
    parser.add_argument("--rate", type=float, default=None,
                        help="token-bucket refill, requests/s per principal")
    parser.add_argument("--burst", type=float, default=20.0,
                        help="token-bucket burst size")
    parser.add_argument("--workers", type=int, default=2,
                        help="background job worker threads")
    parser.add_argument("--queue-capacity", type=int, default=8,
                        help="bounded job queue size")
    parser.add_argument("--monitor-interval", type=float, default=1.0,
                        help="health-monitor sampling period, seconds")
    parser.add_argument("--access-log", default=None, metavar="PATH",
                        help="stream JSONL access records to PATH")
    parser.add_argument("--access-log-max-bytes", type=int, default=None,
                        metavar="N",
                        help="rotate the access-log stream at N bytes")
    parser.add_argument("--warehouse", default=None, metavar="DIR",
                        help="serve an E24 telemetry warehouse via /query")
    parser.add_argument("--no-observability", action="store_true",
                        help="disable spans, RED metrics, and access log")
    parser.add_argument("--smoke", action="store_true",
                        help="boot on an ephemeral port, self-test, exit")
    return parser


def plane_from_args(args) -> ControlPlane:
    config = ControlPlaneConfig(
        api_keys=_parse_keys(args.api_key),
        rate=args.rate,
        burst=args.burst,
        workers=args.workers,
        queue_capacity=args.queue_capacity,
        monitor_interval=args.monitor_interval,
        observability=not args.no_observability,
        access_log_path=args.access_log,
        access_log_max_bytes=args.access_log_max_bytes,
        warehouse_dir=args.warehouse,
    )
    return ControlPlane(config=config)


def run_smoke(plane: ControlPlane) -> int:
    """Self-exercise every endpoint over real HTTP; 0 on full success."""
    import http.client

    headers = {"Content-Type": "application/json"}
    if plane.config.api_keys:
        headers["x-api-key"] = next(iter(plane.config.api_keys))
    thread = ServerThread(plane)
    host, port = thread.start()
    report: dict = {"address": f"{host}:{port}", "checks": {}}
    ok = True

    def check(name: str, method: str, path: str, body=None,
              expect: int = 200) -> dict:
        nonlocal ok
        conn = http.client.HTTPConnection(host, port, timeout=10)
        payload = json.dumps(body).encode() if body is not None else None
        conn.request(method, path, body=payload, headers=headers)
        resp = conn.getresponse()
        raw = resp.read()
        conn.close()
        passed = resp.status == expect
        ok = ok and passed
        try:
            data = json.loads(raw)
        except ValueError:
            data = {"raw_bytes": len(raw)}
        report["checks"][name] = {"status": resp.status, "pass": passed}
        return data if isinstance(data, dict) else {}

    try:
        evaluated = check("evaluate", "POST", "/evaluate",
                          {"event": {"kind": "mgmt.command.move"}})
        check("health", "GET", "/health")
        check("metrics", "GET", "/metrics")
        check("batch", "POST", "/batch",
              {"rows": [{"heat": 20.0}, {"heat": 130.0}]})
        check("audit", "GET", "/audit")
        if plane.warehouse is not None:
            check("query", "POST", "/query", {"op": "stats"})
        else:
            # No warehouse configured: the endpoint must refuse loudly
            # with the stable reason slug, not 404 or crash.
            check("query", "POST", "/query", {"op": "stats"}, expect=503)
        trace_id = evaluated.get("trace_id")
        if trace_id:
            check("explain", "GET", f"/explain?trace_id={trace_id}")
        else:
            report["checks"]["explain"] = {"status": None, "pass": False}
            ok = False
        submitted = check("jobs-submit", "POST", "/jobs",
                          {"kind": "noop"}, expect=202)
        job_id = (submitted.get("job") or {}).get("job_id")
        if job_id:
            job = plane.jobs.get(job_id)
            if job is not None:
                job.done_event.wait(10)
            check("jobs-status", "GET", f"/jobs/{job_id}")
        else:
            report["checks"]["jobs-status"] = {"status": None, "pass": False}
            ok = False
    finally:
        thread.stop()
        plane.close()
    report["ok"] = ok
    print(json.dumps(report, indent=2, sort_keys=True))
    return 0 if ok else 1


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    plane = plane_from_args(args)
    if args.smoke:
        return run_smoke(plane)
    try:
        asyncio.run(serve(plane, args.host, args.port))
    except KeyboardInterrupt:
        pass
    finally:
        plane.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
