"""Bounded job queue + scheduler for long-running scenario work (E23).

`/evaluate` answers in microseconds; a full confrontation scenario runs
for seconds.  The control plane therefore keeps a **bounded** queue of
background jobs drained by a small worker pool, and refuses loudly
(``queue-full``) instead of buffering without limit — an unbounded
accept queue is exactly the failure mode the paper's always-on guard
must not have.  Queue depth and worker business are published as gauges
(``jobs.queue_depth``, ``jobs.workers_busy``, ``jobs.queue_saturation``
as a 0..1 ratio) so the service's own :class:`~repro.telemetry.health.
AlertEngine` can watch for saturation with the same rule grammar the
fleet uses.

Job kinds are a registry of plain callables; the built-ins are
``confrontation`` (a short E13 scenario run returning its summary),
``sleep`` (the induced-overload arm of the E23 bench: occupies a worker
for N seconds), and ``noop``.
"""

from __future__ import annotations

import queue
import threading
import traceback
from typing import Callable, Optional

JOB_STATES = ("queued", "running", "done", "failed")


def _run_confrontation(params: dict) -> dict:
    from repro.scenarios.confrontation import ConfrontationScenario
    from repro.scenarios.harness import SafeguardConfig

    scenario = ConfrontationScenario(
        seed=int(params.get("seed", 0)),
        config=SafeguardConfig.full(),
        n_drones_per_org=int(params.get("drones", 2)),
        n_civilians=int(params.get("civilians", 6)),
        n_warfighters=int(params.get("warfighters", 2)),
    )
    return scenario.run(until=float(params.get("until", 20.0)))


def _run_sleep(params: dict) -> dict:
    import time

    seconds = float(params.get("seconds", 0.05))
    time.sleep(seconds)
    return {"slept": seconds}


def _run_noop(params: dict) -> dict:
    return {"ok": True, "params": dict(params)}


#: Built-in job kinds.  Extend via ``JobQueue.register``.
DEFAULT_RUNNERS: dict = {
    "confrontation": _run_confrontation,
    "sleep": _run_sleep,
    "noop": _run_noop,
}


class Job:
    """One submitted background job and its lifecycle record."""

    __slots__ = ("job_id", "kind", "params", "status", "submitted_at",
                 "started_at", "finished_at", "result", "error", "trace_id",
                 "done_event")

    def __init__(self, job_id: str, kind: str, params: dict,
                 submitted_at: float, trace_id: Optional[str]):
        self.job_id = job_id
        self.kind = kind
        self.params = params
        self.status = "queued"
        self.submitted_at = submitted_at
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.result: Optional[dict] = None
        self.error: Optional[str] = None
        self.trace_id = trace_id
        self.done_event = threading.Event()

    def to_dict(self) -> dict:
        return {
            "job_id": self.job_id, "kind": self.kind, "status": self.status,
            "submitted_at": self.submitted_at, "started_at": self.started_at,
            "finished_at": self.finished_at, "result": self.result,
            "error": self.error, "trace_id": self.trace_id,
        }


class JobQueue:
    """Bounded FIFO of background jobs drained by daemon worker threads."""

    def __init__(self, runtime, capacity: int = 8, workers: int = 2,
                 runners: Optional[dict] = None):
        if capacity < 1:
            raise ValueError("job queue capacity must be >= 1")
        if workers < 0:
            raise ValueError("worker count must be >= 0")
        self.runtime = runtime
        self.capacity = capacity
        self.runners = dict(DEFAULT_RUNNERS if runners is None else runners)
        self._queue: queue.Queue = queue.Queue(maxsize=capacity)
        self._jobs: dict = {}
        self._lock = threading.Lock()
        self._next_id = 0
        self._stopping = False
        metrics = runtime.metrics
        self._submitted = metrics.counter("jobs.submitted")
        self._completed = metrics.counter("jobs.completed")
        self._failed = metrics.counter("jobs.failed")
        self._rejected = metrics.counter("jobs.rejected")
        self._depth = metrics.gauge("jobs.queue_depth")
        self._busy = metrics.gauge("jobs.workers_busy")
        self._saturation = metrics.gauge("jobs.queue_saturation")
        self._workers = [
            threading.Thread(target=self._worker, name=f"e23-job-worker-{i}",
                             daemon=True)
            for i in range(workers)
        ]
        for thread in self._workers:
            thread.start()

    # -- submission -------------------------------------------------------------

    def register(self, kind: str, runner: Callable[[dict], dict]) -> None:
        self.runners[kind] = runner

    def _update_depth(self) -> None:
        depth = self._queue.qsize()
        self._depth.set(depth)
        self._saturation.set(depth / self.capacity)

    def submit(self, kind: str, params: Optional[dict] = None,
               trace_id: Optional[str] = None) -> tuple:
        """``(job, None)`` on accept; ``(None, reason)`` on reject —
        reasons are ``unknown-kind`` and ``queue-full``."""
        if kind not in self.runners:
            self._rejected.inc()
            return (None, "unknown-kind")
        with self._lock:
            self._next_id += 1
            job_id = f"job-{self._next_id}"
        job = Job(job_id, kind, dict(params or {}),
                  submitted_at=self.runtime.now, trace_id=trace_id)
        try:
            self._queue.put_nowait(job)
        except queue.Full:
            self._rejected.inc()
            return (None, "queue-full")
        with self._lock:
            self._jobs[job_id] = job
        self._submitted.inc()
        self._update_depth()
        return (job, None)

    # -- queries ----------------------------------------------------------------

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> list:
        with self._lock:
            return list(self._jobs.values())

    @property
    def depth(self) -> int:
        return self._queue.qsize()

    # -- the worker loop --------------------------------------------------------

    def _worker(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:                       # shutdown sentinel
                return
            self._update_depth()
            job.status = "running"
            job.started_at = self.runtime.now
            self._busy.set(self._busy.value + 1)
            try:
                job.result = self.runners[job.kind](job.params)
                job.status = "done"
                self._completed.inc()
            except Exception:
                job.status = "failed"
                job.error = traceback.format_exc(limit=4)
                self._failed.inc()
            finally:
                job.finished_at = self.runtime.now
                self._busy.set(max(0.0, self._busy.value - 1))
                job.done_event.set()
                self._queue.task_done()

    def run_pending(self) -> int:
        """Drain the queue synchronously on the calling thread.

        For deterministic tests (``workers=0``) and the direct-dispatch
        bench arms, where background threads would add scheduling noise.
        """
        ran = 0
        while True:
            try:
                job = self._queue.get_nowait()
            except queue.Empty:
                return ran
            if job is None:
                continue
            self._update_depth()
            job.status = "running"
            job.started_at = self.runtime.now
            try:
                job.result = self.runners[job.kind](job.params)
                job.status = "done"
                self._completed.inc()
            except Exception:
                job.status = "failed"
                job.error = traceback.format_exc(limit=4)
                self._failed.inc()
            finally:
                job.finished_at = self.runtime.now
                job.done_event.set()
                self._queue.task_done()
            ran += 1

    def stop(self) -> None:
        """Unblock every worker thread (they exit on the sentinel)."""
        self._stopping = True
        for _ in self._workers:
            try:
                self._queue.put_nowait(None)
            except queue.Full:
                break
