"""Stdlib asyncio HTTP/1.1 front end for the control plane (E23).

A deliberately small server — request line, headers, ``Content-Length``
bodies, keep-alive — because the interesting work lives in
:class:`~repro.api.service.ControlPlane`; this layer only parses bytes,
calls :meth:`~repro.api.service.ControlPlane.handle_request`, and
writes the response (echoing the request's trace id as ``X-Trace-Id``).

The server also owns the **pump task**: a background coroutine calling
:meth:`~repro.api.runtime.ServiceRuntime.pump` on a cadence derived
from the tightest registered periodic interval, so the health monitor
keeps sampling (and alerts keep firing/clearing) even when no requests
arrive — an always-on watcher must not depend on traffic to notice it
is unhealthy.

:class:`ServerThread` runs the whole loop in a daemon thread for tests,
benchmarks, and the CI smoke job.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Optional
from urllib.parse import parse_qsl, urlsplit

MAX_HEADER_BYTES = 32 * 1024
MAX_BODY_BYTES = 16 * 1024 * 1024

_STATUS_TEXT = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 401: "Unauthorized",
    404: "Not Found", 405: "Method Not Allowed", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpServer:
    """Asyncio streams server bound to one :class:`ControlPlane`."""

    def __init__(self, plane, host: str = "127.0.0.1", port: int = 0):
        self.plane = plane
        self.host = host
        self.port = port
        self.connections = 0
        self.requests = 0
        self._server: Optional[asyncio.AbstractServer] = None
        self._pump_task = None
        self._conn_tasks: set = set()

    @property
    def address(self) -> tuple:
        """``(host, port)`` actually bound (port 0 resolves on start)."""
        if self._server is None:
            raise RuntimeError("server is not started")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return (host, port)

    def _pump_interval(self) -> float:
        tightest = self.plane.runtime.min_interval()
        if tightest is None:
            return 0.25
        return min(0.5, max(0.02, tightest / 2.0))

    async def _pump_loop(self) -> None:
        interval = self._pump_interval()
        while True:
            await asyncio.sleep(interval)
            self.plane.runtime.pump()

    async def start(self) -> tuple:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self._pump_task = asyncio.ensure_future(self._pump_loop())
        return self.address

    async def stop(self) -> None:
        pending = []
        if self._pump_task is not None:
            self._pump_task.cancel()
            pending.append(self._pump_task)
            self._pump_task = None
        for task in list(self._conn_tasks):
            task.cancel()
            pending.append(task)
        self._conn_tasks.clear()
        if pending:
            # Await the cancellations: an unawaited cancelled task dies
            # noisily in the event loop's destructor.
            await asyncio.gather(*pending, return_exceptions=True)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- one connection ---------------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self.connections += 1
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        peer = writer.get_extra_info("peername")
        remote = f"{peer[0]}:{peer[1]}" if peer else ""
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, target, headers, body, malformed = request
                if malformed is not None:
                    await self._write_simple(writer, 400, malformed)
                    break
                parts = urlsplit(target)
                query = dict(parse_qsl(parts.query))
                response = self.plane.handle_request(
                    method, parts.path, query=query, headers=headers,
                    body=body, remote=remote)
                self.requests += 1
                keep_alive = (headers.get("connection", "keep-alive")
                              .lower() != "close")
                await self._write_response(writer, response, keep_alive)
                if not keep_alive:
                    break
        except (ConnectionResetError, asyncio.IncompleteReadError,
                asyncio.CancelledError):
            pass
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, OSError, asyncio.CancelledError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        """``(method, target, headers, body, malformed_reason)`` or
        ``None`` on clean EOF between requests."""
        try:
            raw = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError as eof:
            if not eof.partial:
                return None
            return ("", "", {}, b"", "truncated request head")
        except asyncio.LimitOverrunError:
            return ("", "", {}, b"", "request head too large")
        if len(raw) > MAX_HEADER_BYTES:
            return ("", "", {}, b"", "request head too large")
        head = raw.decode("latin-1").split("\r\n")
        parts = head[0].split(" ")
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            return ("", "", {}, b"", "malformed request line")
        method, target = parts[0].upper(), parts[1]
        headers: dict = {}
        for line in head[1:]:
            if not line:
                continue
            name, sep, value = line.partition(":")
            if not sep:
                return ("", "", {}, b"", "malformed header")
            headers[name.strip().lower()] = value.strip()
        length_text = headers.get("content-length", "0")
        try:
            length = int(length_text)
        except ValueError:
            return ("", "", {}, b"", "bad content-length")
        if length < 0 or length > MAX_BODY_BYTES:
            return ("", "", {}, b"", "body too large")
        body = await reader.readexactly(length) if length else b""
        return (method, target, headers, body, None)

    async def _write_response(self, writer: asyncio.StreamWriter, response,
                              keep_alive: bool) -> None:
        body = response.body_bytes()
        text = _STATUS_TEXT.get(response.status, "Unknown")
        lines = [
            f"HTTP/1.1 {response.status} {text}",
            f"Content-Type: {response.content_type}",
            f"Content-Length: {len(body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        if response.trace_id is not None:
            lines.append(f"X-Trace-Id: {response.trace_id}")
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
                     + body)
        await writer.drain()

    async def _write_simple(self, writer: asyncio.StreamWriter, status: int,
                            detail: str) -> None:
        body = (f'{{"error": "bad-request", "detail": "{detail}"}}\n'
                .encode("utf-8"))
        text = _STATUS_TEXT.get(status, "Unknown")
        writer.write((
            f"HTTP/1.1 {status} {text}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n").encode("latin-1") + body)
        await writer.drain()


async def serve(plane, host: str = "127.0.0.1", port: int = 8733) -> None:
    """Run the server until cancelled (the ``python -m repro.api`` path)."""
    server = HttpServer(plane, host, port)
    bound_host, bound_port = await server.start()
    print(f"repro.api control plane listening on "          # noqa: T201
          f"http://{bound_host}:{bound_port}")
    try:
        await asyncio.Event().wait()
    finally:
        await server.stop()


class ServerThread:
    """A control-plane server on a daemon thread (tests, bench, CI smoke)."""

    def __init__(self, plane, host: str = "127.0.0.1", port: int = 0):
        self.plane = plane
        self.server = HttpServer(plane, host, port)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._failure: Optional[BaseException] = None
        self.address: Optional[tuple] = None

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)
        try:
            self.address = loop.run_until_complete(self.server.start())
        except BaseException as exc:     # surface bind errors to start()
            self._failure = exc
            self._ready.set()
            return
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(self.server.stop())
            loop.close()

    def start(self, timeout: float = 10.0) -> tuple:
        self._thread = threading.Thread(target=self._run,
                                        name="e23-http-server", daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("server thread did not become ready")
        if self._failure is not None:
            raise RuntimeError(f"server failed to start: {self._failure}")
        return self.address

    def stop(self, timeout: float = 10.0) -> None:
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout)
