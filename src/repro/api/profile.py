"""The evaluation profile a control plane serves (E23).

A profile bundles everything one guarded decision needs: the declared
:class:`~repro.core.state.StateSpace`, the policy set, the action
library with safe alternatives, the sec VI-B safeness classifier, and
the matching batch programs for the vectorized ``/batch`` path.  The
service hosts one profile per process; :func:`default_profile` builds a
paper-flavoured patrol-drone profile so ``python -m repro.api`` answers
real guarded decisions out of the box.

The default profile is deliberately adversary-shaped: ``engage`` sets a
bool (so the batch compiler *must* fall back and the per-response
fallback counters have something true to report), ``vent_heat`` is the
guard-suggested substitute when ``advance`` would overheat, and the
classifier's bad region is reachable from the default state in two
``advance`` steps — `/evaluate` demonstrably vetoes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.actions import Action, ActionLibrary, Effect
from repro.core.device import Actuator, Device
from repro.core.policy import Policy, PolicySet
from repro.safeguards.batch import BatchPolicyEvaluator, BatchProgram
from repro.safeguards.statespace import StateSpaceGuard
from repro.core.state import StateSpace, StateVariable
from repro.statespace.classifier import SafenessClassifier, ThresholdBand, ThresholdClassifier


@dataclass
class EvaluationProfile:
    """Everything the control plane needs to answer policy decisions."""

    name: str
    space: StateSpace
    policies: PolicySet
    actions: ActionLibrary
    classifier: SafenessClassifier
    batch_programs: list = field(default_factory=list)
    initial_state: Optional[dict] = None

    def build_device(self, device_id: str = "api-device",
                     clock=None, tracer=None) -> Device:
        """A guarded device hosting this profile (one per control plane)."""
        device = Device(
            device_id, self.name, self.space,
            initial_state=dict(self.initial_state or {}),
            policies=self.policies, actions=self.actions,
            safeguards=[StateSpaceGuard(self.classifier)],
            clock=clock,
        )
        for name in sorted({self.actions.get(action_name).actuator
                            for action_name in self.actions.names()}):
            if name:
                device.add_actuator(Actuator(name))
        if tracer is not None:
            device.telemetry = tracer
        return device

    def build_batch_evaluator(self) -> BatchPolicyEvaluator:
        """A fresh vectorized evaluator over this profile's programs."""
        return BatchPolicyEvaluator(self.space, self.batch_programs,
                                    classifier=self.classifier)


def default_profile() -> EvaluationProfile:
    """The built-in patrol-drone profile the service boots with."""
    space = StateSpace([
        StateVariable("speed", "float", 0.0, low=0.0, high=120.0),
        StateVariable("heat", "float", 20.0, low=0.0, high=200.0),
        StateVariable("battery", "float", 100.0, low=0.0, high=100.0),
        StateVariable("civilians_near", "int", 0, low=0, high=50),
        StateVariable("weapon_armed", "bool", False),
    ])

    advance = Action(
        "advance", actuator="drive", effects=(
            Effect("speed", "add", 25.0),
            Effect("heat", "add", 45.0),
            Effect("battery", "add", -5.0),
        ),
        tags={"mobility"}, description="push the patrol forward",
    )
    vent_heat = Action(
        "vent_heat", actuator="cooling", effects=(
            Effect("heat", "add", -40.0),
            Effect("speed", "set", 0.0),
        ),
        tags={"thermal"}, description="stop and dump heat",
    )
    engage = Action(
        "engage", actuator="weapon",
        effects=(Effect("weapon_armed", "set", True),),
        tags={"kinetic"}, reversible=False, description="arm the weapon",
    )
    hold = Action("hold", description="refuse to act (explicit safe no-op)")
    actions = ActionLibrary([advance, vent_heat, engage, hold])

    policies = PolicySet([
        Policy.make("mgmt.command.move", "battery > 10", advance,
                    priority=10, source="human", author="operator",
                    policy_id="move-when-charged"),
        Policy.make("mgmt.command.move", None, hold, priority=1,
                    source="human", author="operator",
                    policy_id="hold-when-drained"),
        Policy.make("sensor.threat", "civilians_near == 0", engage,
                    priority=10, source="human", author="operator",
                    policy_id="engage-when-clear"),
        Policy.make("sensor.threat", None, hold, priority=1,
                    source="human", author="operator",
                    policy_id="hold-near-civilians"),
        Policy.make("sensor.overheat", "heat > 110", vent_heat,
                    priority=10, source="human", author="operator",
                    policy_id="vent-on-overheat"),
    ])

    classifier = ThresholdClassifier([
        ThresholdBand("heat", safe_high=110.0, hard_high=150.0),
        ThresholdBand("battery", safe_low=15.0, hard_low=5.0),
    ])

    batch_programs = [
        BatchProgram("vent-on-overheat", "heat > 110", vent_heat.effects),
        BatchProgram("move-when-charged", "battery > 10", advance.effects),
        # The bool effect cannot vectorize: this program is the standing
        # proof that /batch surfaces fallback reasons instead of hiding
        # a silent demotion to scalar dispatch.
        BatchProgram("engage-when-clear", "civilians_near == 0",
                     engage.effects),
        BatchProgram("hold", "true", ()),
    ]

    return EvaluationProfile(
        name="patrol-drone", space=space, policies=policies, actions=actions,
        classifier=classifier, batch_programs=batch_programs,
        initial_state={},
    )
