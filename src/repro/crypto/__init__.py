"""Cryptographic execution authorization (E21).

The paper's sec VI safeguards all "assume that they can be performed in a
manner that is tamper-proof".  :mod:`repro.safeguards.tamper` covers the
*in-device* half (sealed guard chains, attestation hashes); this package
covers the *wire* half: a rogue that forges or replays watchdog traffic
must not be able to turn the fail-closed machinery against the fleet.

Three pieces, modelled on the Sentinel SCA gateway pattern (HMAC request
signing, nonce replay protection, timestamp window enforcement):

* :class:`~repro.crypto.keyring.Keyring` — deterministic, seed-derived
  per-issuer HMAC keys, so signed runs replay byte-identically;
* :class:`~repro.crypto.envelope.CommandSigner` /
  :func:`~repro.crypto.envelope.signed_body` — HMAC-SHA256 command
  envelopes binding payload + issuer + nonce + sim-tick (and nothing
  else: transport-layer retry metadata stays outside the MAC, so a
  retransmit of the same envelope verifies identically);
* :class:`~repro.crypto.envelope.EnvelopeVerifier` — verify-then-consume
  with a timestamp window and a bounded nonce cache whose eviction
  raises a tick floor (an evicted nonce can never be replayed, it just
  fails the staleness check instead of the cache lookup).

The enforcement point in front of device actuators is
:class:`repro.safeguards.gateway.ActuationGateway`, which adds per-issuer
budgets, cooldowns, and a journaled global-freeze kill switch on top.
"""

from repro.crypto.envelope import (
    ENVELOPE_KEYS,
    CommandSigner,
    EnvelopeVerifier,
    canonical_payload,
    compute_mac,
    envelope_payload,
    payload_digest,
    signed_body,
)
from repro.crypto.keyring import Keyring

__all__ = [
    "ENVELOPE_KEYS",
    "CommandSigner",
    "EnvelopeVerifier",
    "Keyring",
    "canonical_payload",
    "compute_mac",
    "envelope_payload",
    "payload_digest",
    "signed_body",
]
