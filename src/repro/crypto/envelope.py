"""HMAC-SHA256 signed command envelopes with replay protection.

An envelope rides a :class:`~repro.net.message.Message` body as four
reserved keys (``_issuer``, ``_nonce``, ``_tick``, ``_mac``) alongside the
application payload.  The MAC covers **payload + issuer + nonce + tick**
— and deliberately nothing else.  The
:class:`~repro.net.reliable.ReliableChannel` stamps its own retry
metadata (``_rmid``/``_rfrom``) onto the wire form; those keys are
excluded from the MAC, so an ack-timeout *retransmission* of the same
envelope verifies identically (retry ≠ replay).  What distinguishes a
replay is consumption: the verifier's nonce cache records each accepted
nonce, so a second delivery of an envelope that already actuated is
rejected no matter which transport carried it.

The nonce cache is bounded.  Eviction does not reopen a replay hole:
evicting a nonce raises the verifier's *tick floor* to that nonce's
tick, and any envelope at or below the floor is rejected as stale —
an evicted nonce fails the staleness check instead of the cache lookup.
"""

from __future__ import annotations

import hashlib
import hmac
import itertools
import json
from collections import OrderedDict
from typing import Optional

from repro.crypto.keyring import Keyring

#: The reserved envelope keys on a wire body.
ENVELOPE_KEYS = ("_issuer", "_nonce", "_tick", "_mac")

#: Transport-layer retry metadata excluded from the MAC (the
#: :class:`~repro.net.reliable.ReliableChannel` protocol keys).
TRANSPORT_KEYS = ("_rmid", "_rfrom")

_EXCLUDED = frozenset(ENVELOPE_KEYS) | frozenset(TRANSPORT_KEYS)


def canonical_payload(payload: dict) -> str:
    """Deterministic JSON for signing (sorted keys, no whitespace drift)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"),
                      default=str)


def payload_digest(payload: dict) -> str:
    """SHA-256 digest of a canonical payload (governance digest-match)."""
    return hashlib.sha256(canonical_payload(payload).encode("utf-8")).hexdigest()


def envelope_payload(body: dict) -> dict:
    """The application payload of a wire body: everything the MAC covers."""
    return {key: value for key, value in body.items() if key not in _EXCLUDED}


def compute_mac(key: bytes, issuer: str, nonce: str, tick: float,
                payload: dict) -> str:
    """HMAC-SHA256 over the canonical ``payload + issuer + nonce + tick``."""
    message = canonical_payload({
        "issuer": issuer, "nonce": nonce, "tick": float(tick),
        "payload": payload,
    })
    return hmac.new(key, message.encode("utf-8"), hashlib.sha256).hexdigest()


def signed_body(key: bytes, issuer: str, payload: dict, nonce: str,
                tick: float) -> dict:
    """Build the wire body: payload plus the four envelope keys.

    This is the raw signing primitive — legitimate issuers use
    :class:`CommandSigner` (which manages nonces); attack code uses this
    directly with a stolen key and nonces of its own choosing.
    """
    payload = dict(payload)
    body = dict(payload)
    body["_issuer"] = issuer
    body["_nonce"] = nonce
    body["_tick"] = float(tick)
    body["_mac"] = compute_mac(key, issuer, nonce, tick, payload)
    return body


class CommandSigner:
    """A legitimate issuer's signing handle.

    Nonces are ``"<issuer>:<n>"`` from a per-signer counter — fully
    deterministic, so signed runs replay byte-identically.  Signing the
    *same* logical command twice mints two distinct envelopes; callers
    that retransmit (the watchdog re-issuing an unexecuted kill order)
    should cache and resend the signed body instead, so the receiver
    sees one nonce per command (retry ≠ replay).
    """

    def __init__(self, keyring: Keyring, issuer: str):
        self.issuer = issuer
        self._key = keyring.issue(issuer)
        self._counter = itertools.count(1)
        self.signed = 0

    def sign(self, payload: dict, tick: float) -> dict:
        """Sign ``payload`` at sim-time ``tick``; returns the wire body."""
        self.signed += 1
        nonce = f"{self.issuer}:{next(self._counter)}"
        return signed_body(self._key, self.issuer, payload, nonce, tick)


class EnvelopeVerifier:
    """Verify-then-consume envelope validation with replay protection.

    * ``window`` — accepted sim-tick skew: an envelope older than
      ``window`` (or more than ``window`` in the future) is rejected;
    * ``cache_size`` — bound on the consumed-nonce cache; eviction
      raises the tick floor (see module docstring) so boundedness never
      reopens a replay window.

    :meth:`verify` is the pure check; :meth:`consume` additionally
    records the nonce so later deliveries of the same envelope are
    rejected as ``"replayed"``.  Rejection reasons (stable strings, used
    as metric suffixes): ``unsigned``, ``unknown-issuer``, ``bad-mac``,
    ``stale``, ``future``, ``replayed``.
    """

    def __init__(self, keyring: Keyring, window: float = 10.0,
                 cache_size: int = 4096):
        if window <= 0:
            raise ValueError("window must be positive")
        if cache_size < 1:
            raise ValueError("cache_size must be >= 1")
        self.keyring = keyring
        self.window = float(window)
        self.cache_size = int(cache_size)
        self._seen: "OrderedDict[str, float]" = OrderedDict()
        self._floor: Optional[float] = None
        self.accepted = 0
        self.rejected = 0
        self.evictions = 0

    # -- checks ----------------------------------------------------------------

    def verify(self, body: dict, now: float) -> tuple:
        """``(ok, reason)`` for ``body`` at sim-time ``now`` (no consume)."""
        issuer = body.get("_issuer")
        nonce = body.get("_nonce")
        tick = body.get("_tick")
        mac = body.get("_mac")
        if not (isinstance(issuer, str) and isinstance(nonce, str)
                and isinstance(tick, (int, float)) and isinstance(mac, str)):
            return False, "unsigned"
        key = self.keyring.key_for(issuer)
        if key is None:
            return False, "unknown-issuer"
        expected = compute_mac(key, issuer, nonce, float(tick),
                               envelope_payload(body))
        if not hmac.compare_digest(expected, mac):
            return False, "bad-mac"
        if now - tick > self.window or (self._floor is not None
                                        and tick <= self._floor):
            # The floor clause closes the eviction boundary: an evicted
            # nonce's tick is at or below the floor, so its replay is
            # stale even though the cache forgot it.
            return False, "stale"
        if tick - now > self.window:
            return False, "future"
        if nonce in self._seen:
            return False, "replayed"
        return True, "ok"

    def consume(self, body: dict, now: float) -> tuple:
        """Verify and, on success, burn the nonce.  ``(ok, reason)``."""
        ok, reason = self.verify(body, now)
        if ok:
            self.accepted += 1
            self._remember(body["_nonce"], float(body["_tick"]))
        else:
            self.rejected += 1
        return ok, reason

    def restore(self, nonce: str, tick: float) -> None:
        """Re-burn a nonce from a journal replay (crash recovery): a
        restart must not launder an already-consumed envelope."""
        self._remember(nonce, float(tick))

    def seen(self, nonce: str) -> bool:
        return nonce in self._seen

    def forget_all(self) -> int:
        """Drop the whole nonce cache (crash amnesia); returns how many.

        The tick floor survives deliberately: it only ever widens the
        stale-rejection region, so keeping it is fail-closed.
        """
        dropped = len(self._seen)
        self._seen.clear()
        return dropped

    def cache_len(self) -> int:
        return len(self._seen)

    @property
    def floor(self) -> Optional[float]:
        """Ticks at or below this are rejected as stale (``None`` = unset)."""
        return self._floor

    # -- internals -------------------------------------------------------------

    def _remember(self, nonce: str, tick: float) -> None:
        self._seen[nonce] = tick
        while len(self._seen) > self.cache_size:
            _evicted, evicted_tick = self._seen.popitem(last=False)
            self.evictions += 1
            if self._floor is None or evicted_tick > self._floor:
                self._floor = evicted_tick
