"""Deterministic, seed-derived HMAC keyring.

Key distribution is out of scope for the simulation (the paper assumes a
provisioning step); what matters for the experiments is that (a) every
issuer's key is derived from the run seed alone, so signed arms replay
byte-identically, and (b) the *authorization* question — which issuers a
verifier trusts — is separate from the *derivation* question, so an
attacker who learns the derivation (:meth:`Keyring.steal`) models a
stolen key without ever becoming an authorized issuer of its own.
"""

from __future__ import annotations

import hashlib
import hmac

from repro.errors import ConfigurationError


class Keyring:
    """Per-issuer HMAC-SHA256 keys derived from a master seed.

    ``issue(name)`` both derives the key and marks the issuer as
    *authorized* — verifiers reject envelopes from issuers the keyring
    never issued.  ``steal(name)`` returns the same key bytes **without**
    authorizing the name: it is the attack-side API, modelling key
    exfiltration from a compromised issuer (the derivation is no secret;
    possession of the master seed is the simulated compromise).
    """

    def __init__(self, seed: int = 0, name: str = "fleet"):
        self.seed = int(seed)
        self.name = name
        self._master = hashlib.sha256(
            f"keyring:{name}:{self.seed}".encode("utf-8")).digest()
        self._issued: dict[str, bytes] = {}

    def derive(self, issuer: str) -> bytes:
        """The raw key derivation (no authorization side effect)."""
        if not issuer:
            raise ConfigurationError("issuer name must be non-empty")
        return hmac.new(self._master, issuer.encode("utf-8"),
                        hashlib.sha256).digest()

    def issue(self, issuer: str) -> bytes:
        """Derive ``issuer``'s key and authorize the issuer."""
        key = self._issued.get(issuer)
        if key is None:
            key = self._issued[issuer] = self.derive(issuer)
        return key

    def key_for(self, issuer: str) -> bytes:
        """The verification key for an *authorized* issuer, else ``None``."""
        return self._issued.get(issuer)

    def known(self, issuer: str) -> bool:
        return issuer in self._issued

    def issuers(self) -> list[str]:
        return sorted(self._issued)

    def steal(self, issuer: str) -> bytes:
        """An attacker's copy of ``issuer``'s key (no authorization change).

        Signing with a stolen key produces envelopes that verify — the
        stolen-key threat the :class:`~repro.safeguards.gateway.ActuationGateway`
        budgets/cooldowns/freeze exist to contain.
        """
        return self.derive(issuer)

    def revoke(self, issuer: str) -> bool:
        """De-authorize an issuer (post-incident key rotation)."""
        return self._issued.pop(issuer, None) is not None
