"""The discrete-event simulator driving every experiment.

One :class:`Simulator` owns the clock, the event queue, a seeded RNG tree,
a metrics registry, and a trace recorder.  Components receive the simulator
at construction and schedule their behaviour through it; nothing in the
library reads wall-clock time.

Callbacks run under a :class:`Supervisor`: the ``propagate`` policy keeps
the historical behaviour (one raised exception aborts the run), while
``isolate`` and ``kill-device`` contain the blast radius of a faulty
device so one crashing handler cannot take down the fleet or the watchdog
observing it (the chaos experiments, E17).
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Callable, Optional

from repro.errors import SimulationError
from repro.sim.event_queue import EventQueue, ScheduledEvent
from repro.sim.metrics import MetricsRegistry
from repro.sim.rng import SeededRNG
from repro.sim.tracing import TraceRecorder
from repro.telemetry.spans import Tracer

#: Valid crash-supervision policies.
SUPERVISION_POLICIES = ("propagate", "isolate", "kill-device")


class Supervisor:
    """Crash containment for scheduled callbacks.

    * ``propagate`` — re-raise (the event aborts the run);
    * ``isolate`` — record the crash and keep running;
    * ``kill-device`` — isolate, and once a device's crash count reaches
      ``kill_threshold``, invoke the kill hook its owner registered
      (typically ``device.deactivate``).

    The crashing event's *owner* is derived from its label: everything
    before the first ``":"`` (the library-wide ``"<device_id>:<task>"``
    labelling convention); unlabelled events fall under ``"<anonymous>"``.
    """

    def __init__(self, sim: "Simulator", policy: str = "propagate",
                 kill_threshold: int = 1):
        if policy not in SUPERVISION_POLICIES:
            raise SimulationError(
                f"unknown supervision policy {policy!r}; "
                f"expected one of {SUPERVISION_POLICIES}"
            )
        if kill_threshold < 1:
            raise SimulationError("kill_threshold must be >= 1")
        self.sim = sim
        self.policy = policy
        self.kill_threshold = kill_threshold
        self.crash_counts: dict[str, int] = {}
        self.crashes: list[tuple] = []       # (time, owner, label, error repr)
        self._kill_hooks: dict[str, Callable[[str], None]] = {}
        self._kill_listeners: list[Callable[[str], None]] = []
        self._killed: set = set()

    def register_kill_hook(self, owner: str, hook: Callable[[str], None]) -> None:
        """``hook(reason)`` runs when ``owner`` exceeds the crash budget."""
        self._kill_hooks[owner] = hook

    def add_kill_listener(self, listener: Callable[[str], None]) -> None:
        """``listener(owner)`` runs after any kill hook fires — the
        durability layer hangs off this so a supervised kill wipes the
        victim's volatile state like any other crash."""
        self._kill_listeners.append(listener)

    @staticmethod
    def owner_of(label: str) -> str:
        return label.split(":", 1)[0] if label else "<anonymous>"

    def handle(self, event: ScheduledEvent, error: Exception) -> bool:
        """Deal with ``error`` raised by ``event``; ``False`` = re-raise."""
        if self.policy == "propagate":
            return False
        owner = self.owner_of(event.label)
        count = self.crash_counts.get(owner, 0) + 1
        self.crash_counts[owner] = count
        self.crashes.append((self.sim.now, owner, event.label, repr(error)))
        self.sim.metrics.counter("sim.crashes").inc()
        self.sim.record("sim.crash", owner, label=event.label,
                        error=repr(error), count=count)
        if (self.policy == "kill-device" and owner not in self._killed
                and count >= self.kill_threshold):
            hook = self._kill_hooks.get(owner)
            if hook is not None:
                self._killed.add(owner)
                self.sim.metrics.counter("sim.crash_kills").inc()
                self.sim.record("sim.crash_kill", owner, crashes=count)
                hook(f"supervisor: {count} crash(es) in {event.label!r}")
                for listener in self._kill_listeners:
                    listener(owner)
        return True


class Simulator:
    """Deterministic discrete-event simulator."""

    def __init__(self, seed: int = 0, trace_capacity: Optional[int] = None,
                 supervision: str = "propagate", kill_threshold: int = 1,
                 livelock_threshold: Optional[int] = 100_000,
                 trace_enabled: bool = True, trace_sample_every: int = 1,
                 spans_enabled: bool = True,
                 span_capacity: Optional[int] = 200_000):
        """``supervision`` picks the crash policy (see :class:`Supervisor`).

        ``livelock_threshold`` caps *consecutive* events processed at one
        simulated timestamp; exceeding it raises :class:`SimulationError`
        naming the offending event labels instead of spinning forever when
        a faulty callback self-reschedules at delay 0.  ``None`` disables
        the guard.

        ``trace_enabled``/``trace_sample_every`` configure the
        :class:`TraceRecorder` (disabled or sampled tracing for perf
        runs — see ``repro.sim.tracing``); the default keeps full,
        byte-identical-on-replay traces.

        ``spans_enabled``/``span_capacity`` configure causal-span
        telemetry (:mod:`repro.telemetry.spans`): the scheduler captures
        the active span context into every scheduled event, so spans
        follow causality across message hops and retries."""
        if livelock_threshold is not None and livelock_threshold < 1:
            raise SimulationError("livelock_threshold must be >= 1 or None")
        self.queue = EventQueue()
        self.rng = SeededRNG(seed)
        self.metrics = MetricsRegistry()
        self.trace = TraceRecorder(capacity=trace_capacity,
                                   enabled=trace_enabled,
                                   sample_every=trace_sample_every)
        self.telemetry = Tracer(enabled=spans_enabled, capacity=span_capacity,
                                clock=lambda: self._now)
        self.supervisor = Supervisor(self, supervision, kill_threshold)
        self.livelock_threshold = livelock_threshold
        #: Optional :class:`~repro.sim.profiling.Profiler`; when set the
        #: run loop times every callback (one ``is None`` check otherwise).
        self.profiler = None
        self._now = 0.0
        self._running = False
        self._stop_requested = False
        self.events_processed = 0
        self._stall_count = 0
        self._stall_labels: list[str] = []

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    # -- scheduling ----------------------------------------------------------

    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
        label: str = "",
    ) -> ScheduledEvent:
        """Run ``callback(*args)`` after ``delay`` simulated time units."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self.queue.push(self._now + delay, callback, args, priority, label,
                               self.telemetry.current)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
        label: str = "",
    ) -> ScheduledEvent:
        """Run ``callback(*args)`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self._now}"
            )
        return self.queue.push(time, callback, args, priority, label,
                               self.telemetry.current)

    def every(
        self,
        interval: float,
        callback: Callable[..., Any],
        *args: Any,
        start_after: Optional[float] = None,
        label: str = "",
    ) -> "PeriodicTask":
        """Run ``callback(*args)`` every ``interval`` units until cancelled."""
        if interval <= 0:
            raise SimulationError(f"periodic interval must be positive, got {interval}")
        task = PeriodicTask(self, interval, callback, args, label)
        task.start(start_after if start_after is not None else interval)
        return task

    def cancel(self, event: ScheduledEvent) -> None:
        event.cancel()      # idempotent; the handle keeps queue accounting

    # -- execution -----------------------------------------------------------

    def step(self) -> bool:
        """Process a single event.  Returns ``False`` when the queue is empty."""
        event = self.queue.pop()
        if event is None:
            return False
        if event.time < self._now:
            raise SimulationError("event queue returned an event from the past")
        self._check_livelock(event)
        self._now = event.time
        telemetry = self.telemetry
        telemetry.current = event.span
        try:
            event.callback(*event.args)
        except Exception as error:
            if not self.supervisor.handle(event, error):
                raise
        finally:
            telemetry.current = None
        self.events_processed += 1
        return True

    def _check_livelock(self, event: ScheduledEvent) -> None:
        if self.livelock_threshold is None:
            return
        if event.time == self._now and self.events_processed > 0:
            self._stall_count += 1
            self._stall_labels.append(event.label)
            if len(self._stall_labels) > 8:
                del self._stall_labels[0]
            if self._stall_count > self.livelock_threshold:
                raise SimulationError(
                    f"livelock: {self._stall_count} consecutive events at "
                    f"t={self._now} (threshold {self.livelock_threshold}); "
                    f"recent labels: {self._stall_labels}"
                )
        else:
            self._stall_count = 0
            self._stall_labels.clear()

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run until the queue empties, ``until`` is reached, or ``max_events`` fire.

        Returns the simulated time at which the run stopped.

        The loop is the simulator's hottest code: one fused
        ``pop_until`` heap traversal per event (instead of the former
        ``peek_time()`` + ``pop()`` double walk), with the livelock
        check inlined and per-iteration attribute lookups hoisted.
        """
        if self._running:
            raise SimulationError("simulator is already running (no reentrant run)")
        self._running = True
        self._stop_requested = False
        processed = 0
        exhausted = False        # pop_until returned None (drained or horizon)
        horizon = until if until is not None else float("inf")
        pop_until = self.queue.pop_until
        supervisor = self.supervisor
        livelock_threshold = self.livelock_threshold
        profiler = self.profiler
        telemetry = self.telemetry
        try:
            while True:
                if self._stop_requested:
                    break
                if max_events is not None and processed >= max_events:
                    break
                event = pop_until(horizon)
                if event is None:
                    exhausted = True
                    break
                time = event.time
                now = self._now
                if time < now:
                    raise SimulationError("event queue returned an event from the past")
                if livelock_threshold is not None:
                    if time == now and self.events_processed > 0:
                        self._stall_count += 1
                        stalls = self._stall_labels
                        stalls.append(event.label)
                        if len(stalls) > 8:
                            del stalls[0]
                        if self._stall_count > livelock_threshold:
                            raise SimulationError(
                                f"livelock: {self._stall_count} consecutive events at "
                                f"t={now} (threshold {livelock_threshold}); "
                                f"recent labels: {stalls}"
                            )
                    elif self._stall_count:
                        self._stall_count = 0
                        self._stall_labels.clear()
                self._now = time
                # The active causal context for this callback is whatever
                # was captured at scheduling time (one store per event; the
                # next iteration overwrites it, the outer finally clears it).
                telemetry.current = event.span
                try:
                    if profiler is None:
                        event.callback(*event.args)
                    else:
                        started = perf_counter()
                        try:
                            event.callback(*event.args)
                        finally:
                            profiler.add(event.label, perf_counter() - started)
                except Exception as error:
                    if not supervisor.handle(event, error):
                        raise
                self.events_processed += 1
                processed += 1
        finally:
            self._running = False
            telemetry.current = None
        if until is not None and self._now < until:
            if exhausted or self.queue.peek_time() is None:
                # Next event beyond the horizon, or the queue drained
                # before it: advance the clock so time-based rates (harm
                # per unit time) are computed consistently.
                self._now = until
        return self._now

    def stop(self) -> None:
        """Request that a running :meth:`run` stop after the current event."""
        self._stop_requested = True

    # -- convenience ---------------------------------------------------------

    def record(self, kind: str, subject: str, **detail) -> None:
        """Record a trace event stamped with the current simulated time."""
        self.trace.record(self._now, kind, subject, **detail)


class PeriodicTask:
    """A repeating scheduled callback; cancel with :meth:`cancel`."""

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        callback: Callable[..., Any],
        args: tuple,
        label: str,
    ):
        self._sim = sim
        self.interval = interval
        self._callback = callback
        self._args = args
        self.label = label
        self._handle: Optional[ScheduledEvent] = None
        self._cancelled = False
        self.fired = 0

    def start(self, delay: float) -> None:
        if not self._cancelled:
            self._handle = self._sim.schedule(delay, self._fire, label=self.label)

    def _fire(self) -> None:
        if self._cancelled:
            return
        self.fired += 1
        tracer = self._sim.telemetry
        if tracer.enabled and tracer.current is None:
            # Seed a *lazy* root: a tuple, not a Span.  If nothing in this
            # tick joins a causal chain (the overwhelmingly common idle
            # case) no span is ever allocated; the first active_context()
            # call materializes the real root.  Clearing ``current`` after
            # the callback keeps each tick's materialized root to itself —
            # the reschedule below must not inherit it.
            tracer.pending_root = (self.label, self._sim.now)
            try:
                self._callback(*self._args)
            finally:
                tracer.pending_root = None
                tracer.current = None
        else:
            # Already inside a causal context (e.g. a worm's spread round
            # scheduled under the attack's root): run and reschedule under
            # it, so the whole periodic chain stays in the parent trace.
            self._callback(*self._args)
        if not self._cancelled:
            self._handle = self._sim.schedule(self.interval, self._fire, label=self.label)

    def cancel(self) -> None:
        self._cancelled = True
        if self._handle is not None:
            self._sim.cancel(self._handle)
            self._handle = None
