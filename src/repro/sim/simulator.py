"""The discrete-event simulator driving every experiment.

One :class:`Simulator` owns the clock, the event queue, a seeded RNG tree,
a metrics registry, and a trace recorder.  Components receive the simulator
at construction and schedule their behaviour through it; nothing in the
library reads wall-clock time.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.errors import SimulationError
from repro.sim.event_queue import EventQueue, ScheduledEvent
from repro.sim.metrics import MetricsRegistry
from repro.sim.rng import SeededRNG
from repro.sim.tracing import TraceRecorder


class Simulator:
    """Deterministic discrete-event simulator."""

    def __init__(self, seed: int = 0, trace_capacity: Optional[int] = None):
        self.queue = EventQueue()
        self.rng = SeededRNG(seed)
        self.metrics = MetricsRegistry()
        self.trace = TraceRecorder(capacity=trace_capacity)
        self._now = 0.0
        self._running = False
        self._stop_requested = False
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    # -- scheduling ----------------------------------------------------------

    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
        label: str = "",
    ) -> ScheduledEvent:
        """Run ``callback(*args)`` after ``delay`` simulated time units."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self.queue.push(self._now + delay, callback, args, priority, label)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
        label: str = "",
    ) -> ScheduledEvent:
        """Run ``callback(*args)`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self._now}"
            )
        return self.queue.push(time, callback, args, priority, label)

    def every(
        self,
        interval: float,
        callback: Callable[..., Any],
        *args: Any,
        start_after: Optional[float] = None,
        label: str = "",
    ) -> "PeriodicTask":
        """Run ``callback(*args)`` every ``interval`` units until cancelled."""
        if interval <= 0:
            raise SimulationError(f"periodic interval must be positive, got {interval}")
        task = PeriodicTask(self, interval, callback, args, label)
        task.start(start_after if start_after is not None else interval)
        return task

    def cancel(self, event: ScheduledEvent) -> None:
        if not event.cancelled:
            event.cancel()
            self.queue.note_cancelled()

    # -- execution -----------------------------------------------------------

    def step(self) -> bool:
        """Process a single event.  Returns ``False`` when the queue is empty."""
        event = self.queue.pop()
        if event is None:
            return False
        if event.time < self._now:
            raise SimulationError("event queue returned an event from the past")
        self._now = event.time
        event.callback(*event.args)
        self.events_processed += 1
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run until the queue empties, ``until`` is reached, or ``max_events`` fire.

        Returns the simulated time at which the run stopped.
        """
        if self._running:
            raise SimulationError("simulator is already running (no reentrant run)")
        self._running = True
        self._stop_requested = False
        processed = 0
        try:
            while True:
                if self._stop_requested:
                    break
                if max_events is not None and processed >= max_events:
                    break
                next_time = self.queue.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    self._now = until
                    break
                self.step()
                processed += 1
        finally:
            self._running = False
        if until is not None and self._now < until and self.queue.peek_time() is None:
            # Queue drained before the horizon: advance the clock to it so
            # time-based rates (harm per unit time) are computed consistently.
            self._now = until
        return self._now

    def stop(self) -> None:
        """Request that a running :meth:`run` stop after the current event."""
        self._stop_requested = True

    # -- convenience ---------------------------------------------------------

    def record(self, kind: str, subject: str, **detail) -> None:
        """Record a trace event stamped with the current simulated time."""
        self.trace.record(self._now, kind, subject, **detail)


class PeriodicTask:
    """A repeating scheduled callback; cancel with :meth:`cancel`."""

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        callback: Callable[..., Any],
        args: tuple,
        label: str,
    ):
        self._sim = sim
        self.interval = interval
        self._callback = callback
        self._args = args
        self.label = label
        self._handle: Optional[ScheduledEvent] = None
        self._cancelled = False
        self.fired = 0

    def start(self, delay: float) -> None:
        if not self._cancelled:
            self._handle = self._sim.schedule(delay, self._fire, label=self.label)

    def _fire(self) -> None:
        if self._cancelled:
            return
        self.fired += 1
        self._callback(*self._args)
        if not self._cancelled:
            self._handle = self._sim.schedule(self.interval, self._fire, label=self.label)

    def cancel(self) -> None:
        self._cancelled = True
        if self._handle is not None:
            self._sim.cancel(self._handle)
            self._handle = None
