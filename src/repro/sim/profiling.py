"""Lightweight profiling hooks for the discrete-event simulator.

Attach a :class:`Profiler` to a :class:`~repro.sim.simulator.Simulator`
and its run loop times every callback, accumulating wall-clock time per
event label (the library-wide ``"<device_id>:<task>"`` convention) plus
an overall events/second figure.  The hook costs one ``is None`` check
per event when disabled, so leaving ``sim.profiler`` unset keeps the
fast path fast.

This exists so performance work has numbers to stand on: benchmarks and
future PRs can report *which* labels a change made cheaper instead of
guessing from end-to-end wall clock.

Usage::

    sim = Simulator(seed=7)
    ...build scenario...
    with profile_run(sim) as profiler:
        sim.run(until=120.0)
    print(profiler.format_report())
"""

from __future__ import annotations

import time as _time
from contextlib import contextmanager
from typing import Optional


class Profiler:
    """Accumulates per-label callback timings for one or more runs."""

    __slots__ = ("per_label", "events", "busy_time", "wall_time", "_started")

    def __init__(self) -> None:
        #: label -> [count, total_seconds]
        self.per_label: dict = {}
        self.events = 0
        self.busy_time = 0.0     # summed callback time
        self.wall_time = 0.0     # start()..stop() envelope
        self._started: Optional[float] = None

    # -- run-loop hook (called by Simulator.run) ----------------------------

    def add(self, label: str, elapsed: float) -> None:
        """Account one callback invocation (run-loop internal)."""
        self.events += 1
        self.busy_time += elapsed
        bucket = self.per_label.get(label)
        if bucket is None:
            self.per_label[label] = [1, elapsed]
        else:
            bucket[0] += 1
            bucket[1] += elapsed

    # -- envelope -----------------------------------------------------------

    def start(self) -> None:
        if self._started is not None:
            # A silent overwrite here used to *discard* the open envelope:
            # two overlapping profile_run()s sharing one Profiler would
            # report a wall_time missing the first start..second-start
            # stretch while busy_time kept accumulating — the mixed-
            # envelope bug.  Overlap is a caller error; say so.
            raise RuntimeError("Profiler.start() while already started; "
                               "stop() the open envelope first")
        self._started = _time.perf_counter()

    def stop(self) -> None:
        if self._started is not None:
            self.wall_time += _time.perf_counter() - self._started
            self._started = None

    # -- reporting ----------------------------------------------------------

    def events_per_sec(self) -> float:
        """Events per wall-clock second over the profiled envelope."""
        if self.wall_time <= 0.0:
            return 0.0
        return self.events / self.wall_time

    def top_labels(self, limit: int = 10) -> list:
        """(label, count, total_seconds) rows, most expensive first.

        Ties broken by label so reports are deterministic.
        """
        rows = [(label, count, total)
                for label, (count, total) in self.per_label.items()]
        rows.sort(key=lambda row: (-row[2], row[0]))
        return rows[:limit]

    def report(self, limit: int = 10) -> dict:
        """A plain-dict summary (what benchmarks export to JSON)."""
        return {
            "events": self.events,
            "wall_time_sec": self.wall_time,
            "busy_time_sec": self.busy_time,
            "events_per_sec": self.events_per_sec(),
            "top_labels": [
                {"label": label, "count": count, "total_sec": total}
                for label, count, total in self.top_labels(limit)
            ],
        }

    def format_report(self, limit: int = 10) -> str:
        """A human-readable rendering of :meth:`report`."""
        lines = [
            f"events: {self.events}  wall: {self.wall_time:.3f}s  "
            f"busy: {self.busy_time:.3f}s  rate: {self.events_per_sec():,.0f} ev/s"
        ]
        for label, count, total in self.top_labels(limit):
            shown = label or "<unlabelled>"
            lines.append(f"  {shown:<40} {count:>8} calls  {total * 1e3:>9.2f} ms")
        return "\n".join(lines)


class BarrierTiming:
    """Per-shard time-in-shard vs time-in-barrier accounting (F4).

    A sharded run (:mod:`repro.sim.sharding`) advances in barrier windows;
    inside each window every shard runs its simulator (*busy* time) and
    then waits for the slowest shard plus the message exchange (*barrier*
    time).  This accumulates both per shard, so imbalance — one shard
    carrying a hot community while the rest idle at the barrier — is a
    number, not a guess.  :meth:`publish` pushes the totals into a
    :class:`~repro.sim.metrics.MetricsRegistry` as gauges, from where the
    E20 health stack and the Prometheus/JSONL exposition already pick
    gauges up.
    """

    __slots__ = ("n_shards", "busy_sec", "barrier_sec", "windows")

    def __init__(self, n_shards: int) -> None:
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        self.n_shards = n_shards
        self.busy_sec = [0.0] * n_shards
        self.barrier_sec = [0.0] * n_shards
        self.windows = 0

    def add_window(self, busies, window_wall: float) -> None:
        """Account one barrier window: per-shard busy times + window wall.

        A shard's barrier share is the window wall clock minus its own
        busy time — the stretch it spent waiting on the slowest shard and
        the cross-shard message exchange.
        """
        if len(busies) != self.n_shards:
            raise ValueError(
                f"expected {self.n_shards} busy samples, got {len(busies)}")
        self.windows += 1
        for index, busy in enumerate(busies):
            self.busy_sec[index] += busy
            self.barrier_sec[index] += max(0.0, window_wall - busy)

    def barrier_frac(self, shard: int) -> float:
        """Fraction of shard time spent at the barrier (0 = never waits)."""
        total = self.busy_sec[shard] + self.barrier_sec[shard]
        if total <= 0.0:
            return 0.0
        return self.barrier_sec[shard] / total

    def imbalance(self) -> float:
        """Max busy over mean busy (1.0 = perfectly balanced shards)."""
        if not self.busy_sec:
            return 1.0
        mean = sum(self.busy_sec) / len(self.busy_sec)
        if mean <= 0.0:
            return 1.0
        return max(self.busy_sec) / mean

    def publish(self, registry, prefix: str = "shard") -> None:
        """Set ``<prefix>.<i>.busy_sec`` / ``.barrier_sec`` /
        ``.barrier_frac`` gauges plus ``<prefix>.imbalance``."""
        for index in range(self.n_shards):
            registry.gauge(f"{prefix}.{index}.busy_sec").set(
                self.busy_sec[index])
            registry.gauge(f"{prefix}.{index}.barrier_sec").set(
                self.barrier_sec[index])
            registry.gauge(f"{prefix}.{index}.barrier_frac").set(
                self.barrier_frac(index))
        registry.gauge(f"{prefix}.imbalance").set(self.imbalance())
        registry.gauge(f"{prefix}.windows").set(self.windows)

    def report(self) -> dict:
        """A plain-dict summary (what benchmarks export to JSON)."""
        return {
            "windows": self.windows,
            "imbalance": self.imbalance(),
            "shards": [
                {
                    "shard": index,
                    "busy_sec": self.busy_sec[index],
                    "barrier_sec": self.barrier_sec[index],
                    "barrier_frac": self.barrier_frac(index),
                }
                for index in range(self.n_shards)
            ],
        }


@contextmanager
def profile_run(sim, profiler: Optional[Profiler] = None):
    """Attach a :class:`Profiler` to ``sim`` for the ``with`` body.

    Pass an existing ``profiler`` to *accumulate* across several
    invocations (wall_time sums the envelopes, busy_time the callbacks);
    omit it for a fresh one.  Restores the previous profiler (usually
    ``None``) on exit so nested or repeated profiling composes
    predictably.
    """
    if profiler is None:
        profiler = Profiler()
    previous = sim.profiler
    sim.profiler = profiler
    profiler.start()
    try:
        yield profiler
    finally:
        profiler.stop()
        sim.profiler = previous
