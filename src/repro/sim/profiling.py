"""Lightweight profiling hooks for the discrete-event simulator.

Attach a :class:`Profiler` to a :class:`~repro.sim.simulator.Simulator`
and its run loop times every callback, accumulating wall-clock time per
event label (the library-wide ``"<device_id>:<task>"`` convention) plus
an overall events/second figure.  The hook costs one ``is None`` check
per event when disabled, so leaving ``sim.profiler`` unset keeps the
fast path fast.

This exists so performance work has numbers to stand on: benchmarks and
future PRs can report *which* labels a change made cheaper instead of
guessing from end-to-end wall clock.

Usage::

    sim = Simulator(seed=7)
    ...build scenario...
    with profile_run(sim) as profiler:
        sim.run(until=120.0)
    print(profiler.format_report())
"""

from __future__ import annotations

import time as _time
from contextlib import contextmanager
from typing import Optional


class Profiler:
    """Accumulates per-label callback timings for one or more runs."""

    __slots__ = ("per_label", "events", "busy_time", "wall_time", "_started")

    def __init__(self) -> None:
        #: label -> [count, total_seconds]
        self.per_label: dict = {}
        self.events = 0
        self.busy_time = 0.0     # summed callback time
        self.wall_time = 0.0     # start()..stop() envelope
        self._started: Optional[float] = None

    # -- run-loop hook (called by Simulator.run) ----------------------------

    def add(self, label: str, elapsed: float) -> None:
        """Account one callback invocation (run-loop internal)."""
        self.events += 1
        self.busy_time += elapsed
        bucket = self.per_label.get(label)
        if bucket is None:
            self.per_label[label] = [1, elapsed]
        else:
            bucket[0] += 1
            bucket[1] += elapsed

    # -- envelope -----------------------------------------------------------

    def start(self) -> None:
        if self._started is not None:
            # A silent overwrite here used to *discard* the open envelope:
            # two overlapping profile_run()s sharing one Profiler would
            # report a wall_time missing the first start..second-start
            # stretch while busy_time kept accumulating — the mixed-
            # envelope bug.  Overlap is a caller error; say so.
            raise RuntimeError("Profiler.start() while already started; "
                               "stop() the open envelope first")
        self._started = _time.perf_counter()

    def stop(self) -> None:
        if self._started is not None:
            self.wall_time += _time.perf_counter() - self._started
            self._started = None

    # -- reporting ----------------------------------------------------------

    def events_per_sec(self) -> float:
        """Events per wall-clock second over the profiled envelope."""
        if self.wall_time <= 0.0:
            return 0.0
        return self.events / self.wall_time

    def top_labels(self, limit: int = 10) -> list:
        """(label, count, total_seconds) rows, most expensive first.

        Ties broken by label so reports are deterministic.
        """
        rows = [(label, count, total)
                for label, (count, total) in self.per_label.items()]
        rows.sort(key=lambda row: (-row[2], row[0]))
        return rows[:limit]

    def report(self, limit: int = 10) -> dict:
        """A plain-dict summary (what benchmarks export to JSON)."""
        return {
            "events": self.events,
            "wall_time_sec": self.wall_time,
            "busy_time_sec": self.busy_time,
            "events_per_sec": self.events_per_sec(),
            "top_labels": [
                {"label": label, "count": count, "total_sec": total}
                for label, count, total in self.top_labels(limit)
            ],
        }

    def format_report(self, limit: int = 10) -> str:
        """A human-readable rendering of :meth:`report`."""
        lines = [
            f"events: {self.events}  wall: {self.wall_time:.3f}s  "
            f"busy: {self.busy_time:.3f}s  rate: {self.events_per_sec():,.0f} ev/s"
        ]
        for label, count, total in self.top_labels(limit):
            shown = label or "<unlabelled>"
            lines.append(f"  {shown:<40} {count:>8} calls  {total * 1e3:>9.2f} ms")
        return "\n".join(lines)


@contextmanager
def profile_run(sim, profiler: Optional[Profiler] = None):
    """Attach a :class:`Profiler` to ``sim`` for the ``with`` body.

    Pass an existing ``profiler`` to *accumulate* across several
    invocations (wall_time sums the envelopes, busy_time the callbacks);
    omit it for a fresh one.  Restores the previous profiler (usually
    ``None``) on exit so nested or repeated profiling composes
    predictably.
    """
    if profiler is None:
        profiler = Profiler()
    previous = sim.profiler
    sim.profiler = profiler
    profiler.start()
    try:
        yield profiler
    finally:
        profiler.stop()
        sim.profiler = previous
