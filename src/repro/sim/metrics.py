"""Metric primitives for experiments.

Counters, gauges, histograms, and time series, grouped in a registry.
The benchmark harness prints experiment rows straight from a registry
snapshot, so every metric supports a plain-dict export.
"""

from __future__ import annotations

import math
from bisect import insort
from typing import Optional


class Counter:
    """A monotonically increasing count.

    Hot callbacks hold a direct reference (a *cached handle*) obtained
    once from :meth:`MetricsRegistry.counter` instead of re-looking the
    name up per event; ``__slots__`` keeps the instances lean.
    """

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount

    def snapshot(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A value that can move in either direction."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, initial: float = 0.0):
        self.name = name
        self.value = initial

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta

    def snapshot(self) -> dict:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Streaming distribution summary with exact quantiles.

    Keeps a sorted list of observations; experiment scales here are small
    (≤ millions of points) so exactness is worth the O(log n) insert.
    """

    def __init__(self, name: str):
        self.name = name
        self._sorted: list[float] = []
        self._sum = 0.0
        self._watchers: list = []

    def observe(self, value: float) -> None:
        if math.isnan(value):
            raise ValueError(f"histogram {self.name} observed NaN")
        insort(self._sorted, value)
        self._sum += value
        if self._watchers:
            for watcher in self._watchers:
                watcher(value)

    def subscribe(self, watcher) -> None:
        """Stream every future observation to ``watcher(value)``.

        This is how O(1)-memory online estimators (EWMA, P²) ride along
        a histogram without re-walking its sorted list; the hot
        :meth:`observe` path pays one truthiness check when nobody
        subscribed.
        """
        self._watchers.append(watcher)

    @property
    def count(self) -> int:
        return len(self._sorted)

    @property
    def mean(self) -> float:
        return self._sum / len(self._sorted) if self._sorted else 0.0

    @property
    def min(self) -> float:
        return self._sorted[0] if self._sorted else 0.0

    @property
    def max(self) -> float:
        return self._sorted[-1] if self._sorted else 0.0

    def quantile(self, q: float) -> Optional[float]:
        """The q-quantile (0 ≤ q ≤ 1) by linear interpolation, or
        ``None`` when nothing has been observed yet.

        ``None`` — not a silent ``0.0`` — because downstream health
        logic must distinguish "no data" from "genuinely zero": a fresh
        link with an empty RTT histogram is *unknown*, not perfect.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if not self._sorted:
            return None
        idx = q * (len(self._sorted) - 1)
        lo = int(math.floor(idx))
        hi = int(math.ceil(idx))
        if lo == hi or self._sorted[lo] == self._sorted[hi]:
            return self._sorted[lo]
        frac = idx - lo
        return self._sorted[lo] * (1 - frac) + self._sorted[hi] * frac

    def snapshot(self) -> dict:
        return {
            "type": "histogram",
            "count": self.count,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.quantile(0.5),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


class TimeSeries:
    """(time, value) samples, e.g. aggregate heat over simulated time."""

    def __init__(self, name: str):
        self.name = name
        self.samples: list[tuple[float, float]] = []

    def record(self, time: float, value: float) -> None:
        if self.samples and time < self.samples[-1][0]:
            raise ValueError(f"time series {self.name} must be recorded in time order")
        self.samples.append((time, value))

    def values(self) -> list[float]:
        return [v for _, v in self.samples]

    def last(self) -> Optional[float]:
        return self.samples[-1][1] if self.samples else None

    def peak(self) -> float:
        return max((v for _, v in self.samples), default=0.0)

    def time_above(self, threshold: float) -> float:
        """Total simulated time spent strictly above ``threshold``.

        Uses step interpolation: each sample's value holds until the next
        sample's timestamp.
        """
        total = 0.0
        for (t0, v0), (t1, _v1) in zip(self.samples, self.samples[1:]):
            if v0 > threshold:
                total += t1 - t0
        return total

    def snapshot(self) -> dict:
        return {
            "type": "timeseries",
            "count": len(self.samples),
            "last": self.last(),
            "peak": self.peak(),
        }


class MetricsRegistry:
    """Namespace of metrics for one simulation run."""

    def __init__(self) -> None:
        self._metrics: dict[str, object] = {}

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get_or_create(name, Histogram)

    def timeseries(self, name: str) -> TimeSeries:
        return self._get_or_create(name, TimeSeries)

    def _get_or_create(self, name: str, cls):
        existing = self._metrics.get(name)
        if existing is None:
            existing = cls(name)
            self._metrics[name] = existing
        elif not isinstance(existing, cls):
            raise TypeError(
                f"metric {name!r} already registered as {type(existing).__name__}"
            )
        return existing

    def get(self, name: str):
        return self._metrics.get(name)

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def snapshot(self) -> dict:
        return {name: metric.snapshot() for name, metric in sorted(self._metrics.items())}

    def value(self, name: str, default: float = 0.0) -> float:
        """Convenience: the scalar value of a counter/gauge, or ``default``."""
        metric = self._metrics.get(name)
        if isinstance(metric, (Counter, Gauge)):
            return metric.value
        return default
