"""Deterministic fault injection (the chaos harness, E17).

The paper's prevention mechanisms are only credible if they keep working
when the substrate fails (Kott et al.'s battle-things networks are
contested and intermittently connected).  A :class:`FaultPlan` is a
declarative, seedable schedule of substrate failures — device crashes and
restarts, injected handler exceptions, link degradation windows, network
partitions, clock-skewed sensors — that composes with any scenario and
replays byte-identically under the same seed.  A :class:`FaultInjector`
arms a plan against a concrete simulator/network/fleet.

Fault *specs* are plain frozen dataclasses so plans can be compared,
serialized, and generated programmatically (``FaultPlan.random``).
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import TYPE_CHECKING, Optional, Sequence

from repro.errors import ConfigurationError
from repro.sim.rng import SeededRNG
from repro.sim.simulator import Simulator
from repro.types import DeviceStatus

if TYPE_CHECKING:  # avoid a sim -> net import cycle at runtime
    from repro.net.network import Network

CRASH_REASON = "fault: crash"


class InjectedFault(RuntimeError):
    """The exception a :class:`HandlerGlitch` raises inside a callback."""


# -- fault specs ---------------------------------------------------------------


@dataclass(frozen=True)
class DeviceCrash:
    """Hard-stop a device at ``at``; optionally restart after a delay.

    A crashed device stops acting (status ``DEACTIVATED`` with a crash
    reason) and its network addresses go silent.  Restart only revives
    devices still down for *this* reason — a watchdog kill or a
    self-quarantine in the meantime is never undone by the fault layer.
    """

    device_id: str
    at: float
    restart_after: Optional[float] = None


@dataclass(frozen=True)
class HandlerGlitch:
    """Raise :class:`InjectedFault` inside a callback owned by ``device_id``.

    Exercises the supervision policy: under ``propagate`` the run aborts,
    under ``isolate``/``kill-device`` the crash is contained and counted.
    """

    device_id: str
    at: float
    message: str = "injected handler fault"


@dataclass(frozen=True)
class LinkDegradation:
    """Raise global loss / latency between ``at`` and ``until``."""

    at: float
    until: float
    loss_rate: float = 0.5
    latency_factor: float = 1.0


@dataclass(frozen=True)
class NetworkPartition:
    """Split addresses into isolated groups at ``at``; heal at ``heal_at``.

    ``groups`` lists *device ids*; the injector expands each to every
    network address the device owns (``"<id>"`` plus any ``"<id>.*"``
    service address, e.g. the safety tether).  Unlisted addresses —
    including fleet-level services such as the watchdog — remain together
    on the other side of the split.
    """

    at: float
    heal_at: float
    groups: tuple = ()


@dataclass(frozen=True)
class ClockSkew:
    """Skew a device's local clock by ``offset`` from ``at`` on.

    The device's sensors and obligations stamp events with the skewed
    time; the simulator's own clock is untouched.
    """

    device_id: str
    at: float
    offset: float = 0.0


@dataclass(frozen=True)
class JournalCorruption:
    """Damage the tail of a device's stable-storage blobs at ``at``.

    The failure modes a write-ahead journal exists to survive:
    ``drop_bytes`` tears that many bytes off each blob's tail (an
    interrupted write), ``flip_bit`` flips one bit counted from the end
    (media rot near the write head).  Applied to every blob whose name
    starts with ``"<device_id>."``; requires the injector to be armed
    with a :class:`~repro.store.recovery.DurabilityManager`.  Recovery's
    CRC framing truncates the damaged tail instead of trusting it.
    """

    device_id: str
    at: float
    drop_bytes: int = 0
    flip_bit: Optional[int] = None


FAULT_TYPES = (DeviceCrash, HandlerGlitch, LinkDegradation, NetworkPartition,
               ClockSkew, JournalCorruption)


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, replayable schedule of substrate faults."""

    faults: tuple = ()
    seed: Optional[int] = None        # provenance when generated randomly
    intensity: float = 0.0

    def __post_init__(self):
        object.__setattr__(self, "faults", tuple(self.faults))
        for fault in self.faults:
            if not isinstance(fault, FAULT_TYPES):
                raise ConfigurationError(
                    f"unknown fault spec {type(fault).__name__}"
                )

    def __len__(self) -> int:
        return len(self.faults)

    def describe(self) -> list[dict]:
        """Plain-dict view (stable ordering) for logs and serialization."""
        out = []
        for fault in self.faults:
            entry = {"fault": type(fault).__name__}
            entry.update({f.name: getattr(fault, f.name)
                          for f in fields(fault)})
            out.append(entry)
        return out

    @staticmethod
    def none() -> "FaultPlan":
        return FaultPlan()

    @staticmethod
    def random(
        seed: int,
        device_ids: Sequence[str],
        horizon: float,
        intensity: float = 0.5,
        crash_fraction: float = 0.4,
        glitches_per_device: float = 0.6,
        restart_fraction: float = 0.5,
        degradation_loss: float = 0.75,
        partition_fraction: float = 0.4,
        corruption_fraction: float = 0.0,
    ) -> "FaultPlan":
        """Generate a fault storm scaled by ``intensity`` in [0, 1].

        Deterministic in ``seed`` alone: the draws come from a standalone
        :class:`SeededRNG`, not the simulator's tree, so the same plan can
        be armed against different scenario arms (the E17 comparison needs
        every arm to suffer the *same* storm).
        """
        if not 0.0 <= intensity <= 1.0:
            raise ConfigurationError("intensity must be in [0, 1]")
        rng = SeededRNG(seed, name="faultplan")
        devices = sorted(device_ids)
        faults: list = []
        if intensity == 0.0 or not devices or horizon <= 0:
            return FaultPlan(faults=(), seed=seed, intensity=intensity)

        # Device crashes (some restart, some stay down).
        n_crashes = round(intensity * crash_fraction * len(devices))
        for device_id in rng.sample(devices, min(n_crashes, len(devices))):
            at = rng.uniform(0.1 * horizon, 0.8 * horizon)
            restart = (rng.uniform(0.05 * horizon, 0.2 * horizon)
                       if rng.chance(restart_fraction) else None)
            faults.append(DeviceCrash(device_id, at, restart_after=restart))

        # Handler-exception injection spread across the fleet.
        n_glitches = round(intensity * glitches_per_device * len(devices))
        for index in range(n_glitches):
            faults.append(HandlerGlitch(
                rng.choice(devices), rng.uniform(0.05 * horizon, 0.95 * horizon),
                message=f"injected glitch #{index}",
            ))

        # One or two lossy windows covering a big slice of the run.
        n_windows = 1 + (1 if intensity > 0.6 else 0)
        for _ in range(n_windows):
            start = rng.uniform(0.1 * horizon, 0.5 * horizon)
            length = rng.uniform(0.15 * horizon, 0.35 * horizon) * intensity
            faults.append(LinkDegradation(
                at=start, until=min(start + length, horizon),
                loss_rate=min(degradation_loss * intensity + 0.2, 0.95),
                latency_factor=1.0 + 2.0 * intensity,
            ))

        # A partition splitting off part of the fleet at higher intensity.
        if intensity >= 0.4 and len(devices) >= 2:
            n_cut = max(1, round(partition_fraction * len(devices) * intensity))
            cut = tuple(rng.sample(devices, min(n_cut, len(devices) - 1)))
            start = rng.uniform(0.2 * horizon, 0.5 * horizon)
            faults.append(NetworkPartition(
                at=start,
                heal_at=min(start + rng.uniform(0.2, 0.45) * horizon, horizon),
                groups=(cut,),
            ))

        # Clock skew on a couple of sensors.
        n_skews = round(intensity * 0.25 * len(devices))
        for device_id in rng.sample(devices, min(n_skews, len(devices))):
            faults.append(ClockSkew(
                device_id, at=rng.uniform(0.0, 0.5 * horizon),
                offset=rng.uniform(-5.0, 5.0),
            ))

        # Journal damage (opt-in: default 0.0 keeps historical plans — and
        # their RNG draw sequence — byte-identical).
        if corruption_fraction > 0.0:
            n_corruptions = round(intensity * corruption_fraction * len(devices))
            for device_id in rng.sample(devices,
                                        min(n_corruptions, len(devices))):
                torn = rng.chance(0.5)
                faults.append(JournalCorruption(
                    device_id, at=rng.uniform(0.2 * horizon, 0.9 * horizon),
                    drop_bytes=rng.randint(1, 64) if torn else 0,
                    flip_bit=None if torn else rng.randint(0, 255),
                ))

        faults.sort(key=lambda f: (f.at, type(f).__name__,
                                   getattr(f, "device_id", "")))
        return FaultPlan(faults=tuple(faults), seed=seed, intensity=intensity)


# -- the injector --------------------------------------------------------------


class FaultInjector:
    """Arms a :class:`FaultPlan` against a live simulation.

    ``devices`` is the scenario's ``device_id -> Device`` mapping; the
    network is optional (plans without link faults work without one).
    Every applied fault is recorded in the trace under ``fault.*`` and
    counted in ``faults.*`` metrics so replay comparisons can assert on
    them directly.
    """

    def __init__(self, sim: Simulator, devices: dict,
                 network: Optional[Network] = None,
                 durability=None, flight=None):
        """``durability`` (a
        :class:`~repro.store.recovery.DurabilityManager`) arms the
        crash-amnesia model: a :class:`DeviceCrash` wipes the victim's
        registered volatile state, and the restart path replays whatever
        reached stable storage before the device rejoins the network.
        Without one, crashes keep the historical behaviour (process
        memory implausibly survives).

        ``flight`` (a :class:`~repro.telemetry.flight.FlightRecorder`)
        dumps the victim's recent-telemetry ring to stable storage at the
        instant of each crash — *before* the amnesia wipe, so the
        evidence of the device's final moments survives it."""
        self.sim = sim
        self.devices = devices
        self.network = network
        self.durability = durability
        self.flight = flight
        self.crashes = 0
        self.restarts = 0
        self.glitches = 0
        self._base_params: Optional[tuple] = None
        self._degradations_active = 0

    def apply(self, plan: FaultPlan) -> None:
        """Schedule every fault in ``plan``."""
        for fault in plan.faults:
            if isinstance(fault, DeviceCrash):
                self.sim.schedule_at(fault.at, self._crash, fault,
                                     label=f"{fault.device_id}:fault-crash")
            elif isinstance(fault, HandlerGlitch):
                self.sim.schedule_at(fault.at, self._glitch, fault,
                                     label=f"{fault.device_id}:fault-glitch")
            elif isinstance(fault, LinkDegradation):
                self._require_network("LinkDegradation")
                self.sim.schedule_at(fault.at, self._degrade, fault,
                                     label="net:fault-degrade")
                self.sim.schedule_at(fault.until, self._restore, fault,
                                     label="net:fault-restore")
            elif isinstance(fault, NetworkPartition):
                self._require_network("NetworkPartition")
                self.sim.schedule_at(fault.at, self._partition, fault,
                                     label="net:fault-partition")
                self.sim.schedule_at(fault.heal_at, self._heal,
                                     label="net:fault-heal")
            elif isinstance(fault, ClockSkew):
                self.sim.schedule_at(fault.at, self._skew, fault,
                                     label=f"{fault.device_id}:fault-skew")
            elif isinstance(fault, JournalCorruption):
                if self.durability is None:
                    raise ConfigurationError(
                        "JournalCorruption faults need a DurabilityManager"
                    )
                self.sim.schedule_at(fault.at, self._corrupt, fault,
                                     label=f"{fault.device_id}:fault-corrupt")

    def _require_network(self, kind: str) -> None:
        if self.network is None:
            raise ConfigurationError(f"{kind} faults need a network")

    # -- device faults ---------------------------------------------------------

    def _device_addresses(self, device_id: str) -> list[str]:
        if self.network is None:
            return []
        return [address for address in self.network.addresses()
                if address == device_id
                or address.startswith(device_id + ".")]

    def _crash(self, fault: DeviceCrash) -> None:
        device = self.devices.get(fault.device_id)
        if device is None or device.status == DeviceStatus.DEACTIVATED:
            return
        device.deactivate(CRASH_REASON)
        for address in self._device_addresses(fault.device_id):
            self.network.suspend(address)
        if self.flight is not None:
            # Dump the flight ring before the amnesia wipe below: the dump
            # rides the journal path, so it is on stable storage by the
            # time the crash erases the device's volatile state.
            self.flight.dump(fault.device_id, reason="crash")
        if self.durability is not None:
            self.durability.crash(fault.device_id)
        self.crashes += 1
        self.sim.metrics.counter("faults.crashes").inc()
        self.sim.record("fault.crash", fault.device_id,
                        restart_after=fault.restart_after)
        if fault.restart_after is not None:
            self.sim.schedule(fault.restart_after, self._restart, fault,
                              label=f"{fault.device_id}:fault-restart")

    def _restart(self, fault: DeviceCrash) -> None:
        device = self.devices.get(fault.device_id)
        if device is None or device.deactivation_reason != CRASH_REASON:
            return  # killed/quarantined meanwhile: stays down
        if self.durability is not None:
            # Replay stable storage *before* the device acts or talks
            # again: it rejoins with its obligations, votes, and forensic
            # history intact rather than amnesiac.
            self.durability.restart(fault.device_id)
            if device.deactivation_reason != CRASH_REASON:
                return  # recovery re-asserted a deactivation (sticky quarantine)
        device.reactivate()
        for address in self._device_addresses(fault.device_id):
            self.network.resume(address)
        self.restarts += 1
        self.sim.metrics.counter("faults.restarts").inc()
        self.sim.record("fault.restart", fault.device_id)

    def _corrupt(self, fault: JournalCorruption) -> None:
        storage = self.durability.storage
        damage = {}
        for name in storage.names(prefix=fault.device_id + "."):
            damage[name] = storage.corrupt_tail(
                name, drop_bytes=fault.drop_bytes, flip_bit=fault.flip_bit)
        self.sim.metrics.counter("faults.journal_corruptions").inc()
        self.sim.record("fault.journal_corrupt", fault.device_id,
                        blobs=sorted(damage),
                        drop_bytes=fault.drop_bytes, flip_bit=fault.flip_bit)

    def _glitch(self, fault: HandlerGlitch) -> None:
        self.glitches += 1
        self.sim.metrics.counter("faults.glitches").inc()
        self.sim.record("fault.glitch", fault.device_id, message=fault.message)
        raise InjectedFault(f"{fault.device_id}: {fault.message}")

    def _skew(self, fault: ClockSkew) -> None:
        device = self.devices.get(fault.device_id)
        if device is None:
            return
        offset = fault.offset
        device.set_clock(lambda: self.sim.now + offset)
        self.sim.metrics.counter("faults.clock_skews").inc()
        self.sim.record("fault.clock_skew", fault.device_id, offset=offset)

    # -- link faults -----------------------------------------------------------

    def _degrade(self, fault: LinkDegradation) -> None:
        if self._base_params is None:
            self._base_params = (self.network.loss_rate,
                                 self.network.base_latency)
        self._degradations_active += 1
        self.network.loss_rate = fault.loss_rate
        self.network.base_latency = self._base_params[1] * fault.latency_factor
        self.sim.metrics.counter("faults.degradations").inc()
        self.sim.record("fault.degrade", "net", loss_rate=fault.loss_rate,
                        latency_factor=fault.latency_factor)

    def _restore(self, fault: LinkDegradation) -> None:
        self._degradations_active = max(0, self._degradations_active - 1)
        if self._degradations_active == 0 and self._base_params is not None:
            self.network.loss_rate, self.network.base_latency = self._base_params
            self.sim.record("fault.restore", "net")

    def _partition(self, fault: NetworkPartition) -> None:
        groups = []
        for group in fault.groups:
            expanded: list[str] = []
            for device_id in group:
                addresses = self._device_addresses(device_id)
                expanded.extend(addresses if addresses else [device_id])
            groups.append(expanded)
        self.network.topology.partition(groups)
        self.sim.metrics.counter("faults.partitions").inc()
        self.sim.record("fault.partition", "net",
                        groups=[sorted(group) for group in groups])

    def _heal(self) -> None:
        self.network.topology.heal()
        self.sim.record("fault.heal", "net")
