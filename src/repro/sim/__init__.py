"""Deterministic discrete-event simulation substrate.

Every experiment in the paper's reproduction runs on this simulator: it
provides a virtual clock, an ordered event queue, seeded randomness with
named substreams (so adding a new random consumer does not perturb others),
metric collection, and structured tracing.
"""

from repro.sim.event_queue import EventQueue, ScheduledEvent
from repro.sim.faults import FaultInjector, FaultPlan, InjectedFault
from repro.sim.metrics import Counter, Gauge, Histogram, MetricsRegistry, TimeSeries
from repro.sim.rng import SeededRNG
from repro.sim.simulator import Simulator, Supervisor
from repro.sim.tracing import TraceEvent, TraceRecorder

__all__ = [
    "Counter",
    "EventQueue",
    "FaultInjector",
    "FaultPlan",
    "Gauge",
    "Histogram",
    "InjectedFault",
    "MetricsRegistry",
    "ScheduledEvent",
    "SeededRNG",
    "Simulator",
    "Supervisor",
    "TimeSeries",
    "TraceEvent",
    "TraceRecorder",
]
