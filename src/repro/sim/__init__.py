"""Deterministic discrete-event simulation substrate.

Every experiment in the paper's reproduction runs on this simulator: it
provides a virtual clock, an ordered event queue, seeded randomness with
named substreams (so adding a new random consumer does not perturb others),
metric collection, and structured tracing.
"""

from repro.sim.event_queue import EventQueue, ScheduledEvent
from repro.sim.metrics import Counter, Gauge, Histogram, MetricsRegistry, TimeSeries
from repro.sim.rng import SeededRNG
from repro.sim.simulator import Simulator
from repro.sim.tracing import TraceEvent, TraceRecorder

__all__ = [
    "Counter",
    "EventQueue",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ScheduledEvent",
    "SeededRNG",
    "Simulator",
    "TimeSeries",
    "TraceEvent",
    "TraceRecorder",
]
