"""Deterministic discrete-event simulation substrate.

Every experiment in the paper's reproduction runs on this simulator: it
provides a virtual clock, an ordered event queue, seeded randomness with
named substreams (so adding a new random consumer does not perturb others),
metric collection, and structured tracing.
"""

from repro.sim.event_queue import EventQueue, ScheduledEvent
from repro.sim.faults import FaultInjector, FaultPlan, InjectedFault
from repro.sim.metrics import Counter, Gauge, Histogram, MetricsRegistry, TimeSeries
from repro.sim.profiling import BarrierTiming, Profiler, profile_run
from repro.sim.rng import SeededRNG
from repro.sim.sharding import (
    ShardPlan,
    ShardResult,
    ShardedRun,
    partition_crc,
    partition_graph,
    run_sharded,
)
from repro.sim.simulator import Simulator, Supervisor
from repro.sim.tracing import TraceEvent, TraceRecorder

__all__ = [
    "BarrierTiming",
    "Counter",
    "EventQueue",
    "FaultInjector",
    "FaultPlan",
    "Gauge",
    "Histogram",
    "InjectedFault",
    "MetricsRegistry",
    "ScheduledEvent",
    "Profiler",
    "SeededRNG",
    "ShardPlan",
    "ShardResult",
    "ShardedRun",
    "Simulator",
    "Supervisor",
    "TimeSeries",
    "TraceEvent",
    "TraceRecorder",
    "partition_crc",
    "partition_graph",
    "profile_run",
    "run_sharded",
]
