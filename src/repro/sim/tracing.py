"""Structured tracing of simulation activity.

Traces are the raw material for the paper's audit requirements (sec VI-B:
"support for audits... would require the collection of comprehensive
context information").  The audit subsystem builds its tamper-evident
chain on top of these records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One recorded occurrence.

    ``kind`` is a dotted category such as ``"action.executed"`` or
    ``"safeguard.veto"``; ``subject`` names the device or component;
    ``detail`` carries structured context.
    """

    time: float
    kind: str
    subject: str
    detail: dict = field(default_factory=dict)

    def matches(self, kind_prefix: str) -> bool:
        return self.kind == kind_prefix or self.kind.startswith(kind_prefix + ".")


class TraceRecorder:
    """Collects :class:`TraceEvent` records and supports filtered queries.

    Tracing allocates a frozen dataclass per record, which is measurable
    in hot loops, so perf-sensitive runs can turn it down:

    * ``enabled=False`` — :meth:`record` returns ``None`` immediately
      (only ``dropped`` is counted; listeners are not invoked);
    * ``sample_every=N`` — keep the first of every ``N`` calls and drop
      the rest (deterministic stride, no RNG, so sampled runs replay
      identically for a given seed).

    Audit-bearing experiments keep the default full recording.
    """

    def __init__(self, capacity: Optional[int] = None, *,
                 enabled: bool = True, sample_every: int = 1):
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.capacity = capacity
        self.enabled = enabled
        self.sample_every = sample_every
        self.events: list[TraceEvent] = []
        # Per-cause drop accounting: overhead measurements (E19) need to
        # know whether records vanished because tracing was off, because
        # the sampling stride skipped them, or because capacity filled.
        self.dropped_disabled = 0
        self.dropped_sampled = 0
        self.dropped_capacity = 0
        self._calls = 0
        self._listeners: list[Callable[[TraceEvent], None]] = []

    @property
    def dropped(self) -> int:
        """Total records dropped, across every cause."""
        return self.dropped_disabled + self.dropped_sampled + self.dropped_capacity

    def record(self, time: float, kind: str, subject: str, **detail) -> Optional[TraceEvent]:
        if not self.enabled:
            self.dropped_disabled += 1
            return None
        if self.sample_every != 1:
            calls = self._calls
            self._calls = calls + 1
            if calls % self.sample_every:
                self.dropped_sampled += 1
                return None
        event = TraceEvent(time=time, kind=kind, subject=subject, detail=detail)
        if self.capacity is not None and len(self.events) >= self.capacity:
            self.dropped_capacity += 1
        else:
            self.events.append(event)
        for listener in self._listeners:
            listener(event)
        return event

    def subscribe(self, listener: Callable[[TraceEvent], None]) -> None:
        """Register a callback invoked for every recorded event."""
        self._listeners.append(listener)

    def query(
        self,
        kind_prefix: str = "",
        subject: Optional[str] = None,
        since: float = float("-inf"),
        until: float = float("inf"),
    ) -> list[TraceEvent]:
        """Return events matching the filters, in time order."""
        out = []
        for event in self.events:
            if kind_prefix and not event.matches(kind_prefix):
                continue
            if subject is not None and event.subject != subject:
                continue
            if not since <= event.time <= until:
                continue
            out.append(event)
        return out

    def count(self, kind_prefix: str = "", subject: Optional[str] = None) -> int:
        return len(self.query(kind_prefix=kind_prefix, subject=subject))

    def subjects(self) -> set:
        return {event.subject for event in self.events}

    def extend(self, events: Iterable[TraceEvent]) -> None:
        for event in events:
            if self.capacity is not None and len(self.events) >= self.capacity:
                self.dropped_capacity += 1
            else:
                self.events.append(event)

    def stats(self) -> dict:
        """Snapshot of recording volume and drop causes."""
        return {
            "events": len(self.events),
            "dropped": self.dropped,
            "dropped_disabled": self.dropped_disabled,
            "dropped_sampled": self.dropped_sampled,
            "dropped_capacity": self.dropped_capacity,
            "enabled": self.enabled,
            "sample_every": self.sample_every,
        }

    def clear(self) -> None:
        self.events.clear()
        self.dropped_disabled = 0
        self.dropped_sampled = 0
        self.dropped_capacity = 0

    def export_jsonl(self, path: str, kind_prefix: str = "") -> int:
        """Write events (optionally filtered) as JSON Lines; returns count.

        The comprehensive context record audits need (sec VI-B), in a form
        external tooling can consume.
        """
        import json

        events = self.query(kind_prefix=kind_prefix)
        with open(path, "w", encoding="utf-8") as handle:
            for event in events:
                handle.write(json.dumps({
                    "time": event.time, "kind": event.kind,
                    "subject": event.subject, "detail": event.detail,
                }, default=str) + "\n")
        return len(events)

    @staticmethod
    def load_jsonl(path: str) -> "TraceRecorder":
        """Rebuild a recorder from an exported JSONL file."""
        import json

        recorder = TraceRecorder()
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                raw = json.loads(line)
                recorder.events.append(TraceEvent(
                    time=float(raw["time"]), kind=str(raw["kind"]),
                    subject=str(raw["subject"]), detail=dict(raw["detail"]),
                ))
        return recorder
