"""Sharded single-scenario execution with a byte-identical-trace guarantee (F4).

One large fleet is partitioned across shards along its interaction graph;
each shard runs its own :class:`~repro.sim.simulator.Simulator` between
tick barriers, exchanging only cross-shard messages at each barrier.
The contract — extending the serial==parallel guarantee the sweep
executor established for *cells* to the inside of one scenario — is:

    the merged trace, summary, and audit-chain digest of a run are
    **byte-identical for every shard count**, including ``n_shards=1``.

What makes that hold (each point is load-bearing):

* **Shard assignment is deterministic** — :func:`partition_graph` grows
  shards by breadth-first search from evenly spaced seeds over the
  sorted member list (communities stay together), and
  :func:`partition_crc` offers the ``cell_seed``-style hashed
  assignment; both are pure functions of ``(members, edges, n_shards)``.
* **Per-device behaviour is assignment-invariant** — every shard
  simulator is built from the *same* master seed, and
  :class:`~repro.sim.rng.SeededRNG` derives substreams by hashing
  ``seed:name``, so ``rng.stream("device/<id>")`` yields the same
  sequence no matter which process hosts the device.  Message latency
  and loss are CRC-hashed per message
  (:mod:`repro.net.shardnet`), never drawn from a shared stream.
* **Message exchange is submission-order merged** — each barrier batch
  is sorted by ``(deliver_at, sender, per-sender seq)``, a pure function
  of the message set, and injected in that order at a dedicated event
  priority.
* **The merged trace is a stable sort** of per-shard trace records by
  ``(time, subject)``; each subject lives entirely in one shard, so the
  per-subject record order is the shard's own generation order.

The worker side (:func:`shard_worker`) keeps a live shard across windows
in a forked process and speaks a tiny pipe protocol: ``run`` a window,
return the outbox; ``finalize``, return a :class:`ShardResult`.  The
in-process mode runs the identical code path shard-by-shard and is the
reference "serial" execution.
"""

from __future__ import annotations

import hashlib
import math
import multiprocessing
import zlib
from collections import deque
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Optional, Sequence

from repro.errors import ConfigurationError, SimulationError
from repro.net.shardnet import wire_sort_key
from repro.sim.profiling import BarrierTiming

#: ``build_fn(shard_index, n_shards, members, build_args)`` returns a
#: runtime object exposing ``.sim``, ``.router`` and ``.finalize()``.
BuildFn = Callable[[int, int, list, dict], object]


# ---------------------------------------------------------------------------
# Partitioning
# ---------------------------------------------------------------------------


def partition_crc(members, n_shards: int, salt=0) -> dict:
    """``cell_seed``-style hashed assignment: member -> shard.

    Spreads members uniformly but ignores the interaction graph; use it
    as the baseline the graph partitioner is measured against.
    """
    if n_shards < 1:
        raise ConfigurationError("n_shards must be >= 1")
    assignment = {}
    for member in members:
        text = f"{salt!r}|{member!r}".encode("utf-8")
        assignment[member] = zlib.crc32(text) % n_shards
    return assignment


def partition_graph(members, edges, n_shards: int) -> dict:
    """Deterministic BFS-growth partition along the interaction graph.

    Seeds are evenly spaced over the sorted member list; shards claim one
    member per round from their BFS frontier (falling back to the next
    unassigned member in sorted order), capped at ``ceil(n / n_shards)``.
    Pure function of ``(members, edges, n_shards)`` — no RNG, no dict
    iteration order beyond sorted sequences — so every process computes
    the same assignment.
    """
    if n_shards < 1:
        raise ConfigurationError("n_shards must be >= 1")
    ordered = sorted(set(members))
    n = len(ordered)
    if n == 0:
        return {}
    adjacency: dict = {member: [] for member in ordered}
    for a, b in edges:
        if a in adjacency and b in adjacency:
            adjacency[a].append(b)
            adjacency[b].append(a)
    for member in ordered:
        adjacency[member] = sorted(set(adjacency[member]))
    quota = math.ceil(n / n_shards)
    seeds = [ordered[(index * n) // n_shards] for index in range(n_shards)]
    assignment: dict = {}
    frontiers = [deque([seed]) for seed in seeds]
    sizes = [0] * n_shards
    cursor = 0  # next sorted member to hand a starved shard
    while len(assignment) < n:
        progress = False
        for shard in range(n_shards):
            if sizes[shard] >= quota:
                continue
            member = None
            frontier = frontiers[shard]
            while frontier:
                candidate = frontier.popleft()
                if candidate not in assignment:
                    member = candidate
                    break
            if member is None:
                while cursor < n and ordered[cursor] in assignment:
                    cursor += 1
                if cursor >= n:
                    continue
                member = ordered[cursor]
            assignment[member] = shard
            sizes[shard] += 1
            progress = True
            frontier.extend(adjacency[member])
        if not progress:
            break
    # Safety net: anything left (cannot happen with ceil quotas) goes to
    # the emptiest shard, smallest index first.
    for member in ordered:
        if member not in assignment:
            shard = min(range(n_shards), key=lambda s: (sizes[s], s))
            assignment[member] = shard
            sizes[shard] += 1
    return assignment


def cut_edges(assignment: dict, edges) -> int:
    """How many interaction edges cross a shard boundary."""
    return sum(1 for a, b in edges
               if a in assignment and b in assignment
               and assignment[a] != assignment[b])


@dataclass(frozen=True)
class ShardPlan:
    """A deterministic fleet partition: member -> shard, plus pins."""

    n_shards: int
    assignment: dict
    strategy: str = "graph"

    @staticmethod
    def build(members, n_shards: int, edges=(), pins: Optional[dict] = None,
              strategy: str = "graph", salt=0) -> "ShardPlan":
        """Partition ``members`` (graph BFS or CRC hash), then apply pins.

        ``pins`` maps members (e.g. a fleet-global watchdog) to fixed
        shard indices — pinned members join the plan without affecting
        the balance of the partitioned fleet.
        """
        if strategy == "graph":
            assignment = partition_graph(members, edges, n_shards)
        elif strategy == "crc":
            assignment = partition_crc(members, n_shards, salt=salt)
        else:
            raise ConfigurationError(f"unknown partition strategy {strategy!r}")
        for member, shard in (pins or {}).items():
            if not 0 <= shard < n_shards:
                raise ConfigurationError(
                    f"pin for {member!r} outside [0, {n_shards})")
            assignment[member] = shard
        return ShardPlan(n_shards=n_shards, assignment=dict(assignment),
                         strategy=strategy)

    def members_of(self, shard: int) -> list:
        return sorted(m for m, s in self.assignment.items() if s == shard)

    def shard_of(self, member) -> int:
        return self.assignment[member]

    def sizes(self) -> list:
        counts = [0] * self.n_shards
        for shard in self.assignment.values():
            counts[shard] += 1
        return counts


# ---------------------------------------------------------------------------
# Per-shard results and the deterministic merge
# ---------------------------------------------------------------------------


@dataclass
class ShardResult:
    """Everything one shard ships home at finalize (picklable).

    ``trace`` rows are ``(time, subject, rendered_line)`` so the merge
    can stable-sort without re-parsing; ``audit`` rows are canonical
    strings feeding the audit-chain digest; ``spans`` are deterministic
    scenario span dicts (explicit shard-invariant contexts — the
    tracer's counter-minted ids are per-process and stay out of the
    determinism surface).
    """

    shard_index: int
    trace: list = field(default_factory=list)
    summary: dict = field(default_factory=dict)
    audit: list = field(default_factory=list)
    spans: list = field(default_factory=list)
    metrics: dict = field(default_factory=dict)
    events_processed: int = 0


def merge_trace(results: Sequence[ShardResult]) -> list:
    """Stable-sorted merged trace lines: the determinism surface.

    Every subject's records come from exactly one shard (devices never
    migrate), so a stable sort by ``(time, subject)`` preserves each
    subject's generation order while making cross-subject order a pure
    function of the record set.
    """
    rows = []
    for result in results:
        rows.extend(result.trace)
    rows.sort(key=lambda row: (row[0], row[1]))
    return [row[2] for row in rows]


def trace_digest(lines: Sequence[str]) -> str:
    return hashlib.sha256("\n".join(lines).encode("utf-8")).hexdigest()


def audit_chain_digest(results: Sequence[ShardResult]) -> str:
    """Hash-chain over the merged, deterministically sorted audit entries."""
    entries = []
    for result in results:
        entries.extend(result.audit)
    entries.sort()
    digest = "0" * 64
    for entry in entries:
        digest = hashlib.sha256((digest + entry).encode("utf-8")).hexdigest()
    return digest


def merge_summaries(summaries: Sequence[dict]) -> dict:
    """Merge per-shard summaries: numbers add, dicts merge-add, flags must
    agree.  The result is part of the determinism surface, so the merge
    is order-insensitive for everything it sums."""
    merged: dict = {}
    for summary in summaries:
        for key, value in summary.items():
            if key not in merged:
                merged[key] = value.copy() if isinstance(value, dict) else value
                continue
            current = merged[key]
            if isinstance(value, bool) or isinstance(current, bool):
                if current != value:
                    raise SimulationError(
                        f"shard summaries disagree on flag {key!r}")
            elif isinstance(value, (int, float)):
                merged[key] = current + value
            elif isinstance(value, dict):
                for inner_key, inner_value in value.items():
                    current[inner_key] = current.get(inner_key, 0) + inner_value
            elif current != value:
                raise SimulationError(
                    f"shard summaries disagree on value {key!r}")
    return merged


def merge_spans(results: Sequence[ShardResult]) -> list:
    """Merged deterministic scenario spans, sorted like the trace."""
    spans = []
    for result in results:
        spans.extend(result.spans)
    spans.sort(key=lambda s: (s.get("time", 0.0), s.get("subject", ""),
                              s.get("name", ""), s.get("span_id", "")))
    return spans


# ---------------------------------------------------------------------------
# Barrier schedule and routing
# ---------------------------------------------------------------------------


def barrier_schedule(horizon: float, window: float) -> list:
    """The barrier times: ``window, 2*window, ...`` capped at ``horizon``.

    Computed by multiplication (not accumulation) so the schedule is a
    pure function of ``(horizon, window)`` with no float drift.
    """
    if horizon <= 0 or window <= 0:
        raise ConfigurationError("horizon and window must be positive")
    count = max(1, math.ceil(horizon / window - 1e-9))
    barriers = [min(window * (index + 1), horizon) for index in range(count)]
    if barriers[-1] < horizon:
        barriers.append(horizon)
    return barriers


def route_batches(outboxes, assignment: dict, n_shards: int):
    """Group drained outboxes by destination shard, submission-order
    sorted (:func:`repro.net.shardnet.wire_sort_key`).  Returns
    ``(batches, unroutable_count)``."""
    batches: list = [[] for _ in range(n_shards)]
    unroutable = 0
    for outbox in outboxes:
        for message in outbox:
            shard = assignment.get(message.recipient)
            if shard is None:
                unroutable += 1
                continue
            batches[shard].append(message)
    for batch in batches:
        batch.sort(key=wire_sort_key)
    return batches, unroutable


# ---------------------------------------------------------------------------
# Shard hosts: in-process and worker-process
# ---------------------------------------------------------------------------


class ShardHost:
    """One live shard: a built runtime plus the window-step protocol."""

    def __init__(self, build_fn: BuildFn, build_args: dict, shard_index: int,
                 n_shards: int, members: list):
        self.shard_index = shard_index
        self.runtime = build_fn(shard_index, n_shards, list(members),
                                build_args)
        self.sim = self.runtime.sim
        self.router = self.runtime.router

    def run_window(self, barrier: float, inbound) -> tuple:
        """Inject the barrier batch, run to the barrier; returns
        ``(outbox, busy_seconds)``."""
        self.router.inject(inbound)
        started = perf_counter()
        self.sim.run(until=barrier)
        busy = perf_counter() - started
        return self.router.drain_outbox(), busy

    def finalize(self) -> ShardResult:
        return self.runtime.finalize()


def shard_worker(conn, build_fn: BuildFn, build_args: dict, shard_index: int,
                 n_shards: int, members: list) -> None:
    """Worker-process loop: build once, step windows over the pipe."""
    try:
        host = ShardHost(build_fn, build_args, shard_index, n_shards, members)
        conn.send(("ready", shard_index))
        while True:
            command, payload = conn.recv()
            if command == "run":
                barrier, inbound = payload
                outbox, busy = host.run_window(barrier, inbound)
                conn.send(("window", (outbox, busy)))
            elif command == "finalize":
                conn.send(("result", host.finalize()))
                return
            else:
                raise SimulationError(f"unknown shard command {command!r}")
    except Exception:
        import traceback

        try:
            conn.send(("error", traceback.format_exc()))
        except (BrokenPipeError, OSError):  # coordinator already gone
            pass
    finally:
        conn.close()


# ---------------------------------------------------------------------------
# The coordinator
# ---------------------------------------------------------------------------


@dataclass
class ShardedRun:
    """A finished sharded run: the determinism surface plus perf data.

    ``summary`` / ``trace_lines`` / ``trace_digest`` / ``audit_digest`` /
    ``spans`` are byte-identical across shard counts; ``timing`` and
    ``perf`` are observational (wall clock) and excluded from that
    contract.
    """

    plan: ShardPlan
    results: list
    summary: dict
    trace_lines: list
    trace_digest: str
    audit_digest: str
    spans: list
    timing: BarrierTiming
    perf: dict

    def trace_bytes(self) -> bytes:
        return "\n".join(self.trace_lines).encode("utf-8")


def _expect(conn, kind: str):
    tag, payload = conn.recv()
    if tag == "error":
        raise SimulationError(f"shard worker failed:\n{payload}")
    if tag != kind:
        raise SimulationError(f"expected {kind!r} from worker, got {tag!r}")
    return payload


def _mp_context():
    # fork keeps worker startup cheap and build_fn flexible; fall back to
    # the platform default (spawn) where fork is unavailable.
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def run_sharded(build_fn: BuildFn, build_args: dict, plan: ShardPlan,
                horizon: float, window: float, *,
                processes: bool = False) -> ShardedRun:
    """Run one fleet partitioned per ``plan`` to ``horizon``.

    ``processes=False`` runs every shard in this process, shard-by-shard
    (the reference execution); ``processes=True`` hosts each shard in a
    forked worker and overlaps their windows.  Both produce the same
    merged result, byte for byte.
    """
    n_shards = plan.n_shards
    members_by_shard = [plan.members_of(shard) for shard in range(n_shards)]
    barriers = barrier_schedule(horizon, window)
    timing = BarrierTiming(n_shards)
    inbound: list = [[] for _ in range(n_shards)]
    unroutable = 0
    wall_started = perf_counter()

    if processes and n_shards > 1:
        ctx = _mp_context()
        pipes = []
        workers = []
        try:
            for shard in range(n_shards):
                parent, child = ctx.Pipe()
                worker = ctx.Process(
                    target=shard_worker,
                    args=(child, build_fn, build_args, shard, n_shards,
                          members_by_shard[shard]),
                    daemon=True,
                )
                worker.start()
                child.close()
                pipes.append(parent)
                workers.append(worker)
            for parent in pipes:
                _expect(parent, "ready")
            for barrier in barriers:
                window_started = perf_counter()
                for shard, parent in enumerate(pipes):
                    parent.send(("run", (barrier, inbound[shard])))
                outboxes = []
                busies = []
                for parent in pipes:
                    outbox, busy = _expect(parent, "window")
                    outboxes.append(outbox)
                    busies.append(busy)
                timing.add_window(busies, perf_counter() - window_started)
                inbound, dropped = route_batches(outboxes, plan.assignment,
                                                 n_shards)
                unroutable += dropped
            results = []
            for parent in pipes:
                parent.send(("finalize", None))
            for parent in pipes:
                results.append(_expect(parent, "result"))
            for worker in workers:
                worker.join(timeout=30.0)
        finally:
            for worker in workers:
                if worker.is_alive():
                    worker.terminate()
            for parent in pipes:
                parent.close()
        mode = "processes"
    else:
        hosts = [ShardHost(build_fn, build_args, shard, n_shards,
                           members_by_shard[shard])
                 for shard in range(n_shards)]
        for barrier in barriers:
            window_started = perf_counter()
            outboxes = []
            busies = []
            for shard, host in enumerate(hosts):
                outbox, busy = host.run_window(barrier, inbound[shard])
                outboxes.append(outbox)
                busies.append(busy)
            timing.add_window(busies, perf_counter() - window_started)
            inbound, dropped = route_batches(outboxes, plan.assignment,
                                             n_shards)
            unroutable += dropped
        results = [host.finalize() for host in hosts]
        mode = "inprocess"

    wall = perf_counter() - wall_started
    results.sort(key=lambda result: result.shard_index)
    lines = merge_trace(results)
    events = sum(result.events_processed for result in results)
    perf = {
        "mode": mode,
        "shards": n_shards,
        "windows": len(barriers),
        "events": events,
        "wall_sec": wall,
        "events_per_sec": (events / wall) if wall > 0 else 0.0,
        "unroutable": unroutable,
        "imbalance": timing.imbalance(),
    }
    return ShardedRun(
        plan=plan,
        results=results,
        summary=merge_summaries([result.summary for result in results]),
        trace_lines=lines,
        trace_digest=trace_digest(lines),
        audit_digest=audit_chain_digest(results),
        spans=merge_spans(results),
        timing=timing,
        perf=perf,
    )
