"""Seeded randomness with named substreams.

A single master seed drives the whole simulation, but each consumer asks
for a *named* substream (``rng.stream("attacks.worm")``).  Substream seeds
are derived by hashing the master seed with the name, so adding or removing
one consumer never perturbs the draws seen by another — a requirement for
the ablation experiments (E10) where safeguards toggle on and off while the
injected threats must stay identical.
"""

from __future__ import annotations

import hashlib
import random
from typing import Optional, Sequence, TypeVar

T = TypeVar("T")


def _derive_seed(master_seed: int, name: str) -> int:
    digest = hashlib.sha256(f"{master_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class SeededRNG:
    """A reproducible random source with derived substreams."""

    def __init__(self, seed: int = 0, name: str = "root"):
        self.seed = int(seed)
        self.name = name
        self._random = random.Random(_derive_seed(self.seed, name))
        self._streams: dict[str, SeededRNG] = {}

    def stream(self, name: str) -> "SeededRNG":
        """Return (creating on first use) the substream called ``name``."""
        if name not in self._streams:
            self._streams[name] = SeededRNG(self.seed, f"{self.name}/{name}")
        return self._streams[name]

    # -- thin, typed delegations to random.Random ---------------------------

    def random(self) -> float:
        return self._random.random()

    def uniform(self, low: float, high: float) -> float:
        return self._random.uniform(low, high)

    def randint(self, low: int, high: int) -> int:
        return self._random.randint(low, high)

    def gauss(self, mu: float = 0.0, sigma: float = 1.0) -> float:
        return self._random.gauss(mu, sigma)

    def expovariate(self, rate: float) -> float:
        return self._random.expovariate(rate)

    def choice(self, seq: Sequence[T]) -> T:
        return self._random.choice(seq)

    def sample(self, seq: Sequence[T], k: int) -> list[T]:
        return self._random.sample(seq, k)

    def shuffle(self, items: list) -> None:
        self._random.shuffle(items)

    def chance(self, probability: float) -> bool:
        """Return ``True`` with the given probability."""
        if probability <= 0.0:
            return False
        if probability >= 1.0:
            return True
        return self._random.random() < probability

    def weighted_choice(self, items: Sequence[T], weights: Sequence[float]) -> T:
        return self._random.choices(list(items), weights=list(weights), k=1)[0]

    def fork(self, salt: Optional[str] = None) -> "SeededRNG":
        """Return an independent child stream (not cached)."""
        return SeededRNG(self.seed, f"{self.name}/fork:{salt or self._random.random()}")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SeededRNG(seed={self.seed}, name={self.name!r})"
