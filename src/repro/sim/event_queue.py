"""Priority queue of scheduled simulation events.

Ordering is total and deterministic: events fire by (time, priority,
sequence number).  The sequence number breaks ties in insertion order so
repeated runs with the same seed replay identically.

Heap entries are plain ``(time, priority, seq, event)`` tuples: tuple
comparison short-circuits on the numeric fields (the sequence number is
unique, so the event payload itself is never compared), which is markedly
faster than dataclass field-by-field ordering in the simulator's hot
loop.  The :class:`ScheduledEvent` payload is a ``__slots__`` class for
the same reason.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from repro.errors import SimulationError

_INF = float("inf")


class ScheduledEvent:
    """A callback scheduled to run at a simulated time.

    Events are ordered by ``(time, priority, seq)`` which is exactly the
    firing order.  ``cancelled`` events stay in the heap but are skipped
    when popped (lazy deletion).  Cancellation bookkeeping lives here —
    :meth:`cancel` notifies the owning queue — so ``len(queue)`` always
    counts live events no matter which path cancelled the handle.
    """

    __slots__ = ("time", "priority", "seq", "callback", "args", "label",
                 "cancelled", "span", "_queue")

    def __init__(self, time: float, priority: int, seq: int,
                 callback: Callable[..., Any], args: tuple = (),
                 label: str = "", queue: Optional["EventQueue"] = None,
                 span: object = None):
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.label = label
        self.cancelled = False
        #: Causal span context captured at scheduling time (telemetry).
        self.span = span
        self._queue = queue

    def cancel(self) -> None:
        """Mark the event so it will be skipped when its time comes.

        Idempotent, and self-accounting: the owning queue's live count is
        decremented exactly once, and only while the event is actually
        still queued (popped events detach from the queue first).
        """
        if not self.cancelled:
            self.cancelled = True
            queue = self._queue
            if queue is not None:
                self._queue = None
                queue._live -= 1

    def __repr__(self) -> str:
        state = ", cancelled" if self.cancelled else ""
        return (f"ScheduledEvent(time={self.time!r}, priority={self.priority}, "
                f"seq={self.seq}, label={self.label!r}{state})")


class EventQueue:
    """A deterministic min-heap of :class:`ScheduledEvent` objects."""

    __slots__ = ("_heap", "_seq", "_live")

    def __init__(self) -> None:
        self._heap: list = []        # (time, priority, seq, ScheduledEvent)
        self._seq = 0
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def push(
        self,
        time: float,
        callback: Callable[..., Any],
        args: tuple = (),
        priority: int = 0,
        label: str = "",
        span: object = None,
    ) -> ScheduledEvent:
        """Schedule ``callback(*args)`` at ``time`` and return a cancellable handle."""
        if time != time or time == _INF:  # NaN or inf
            raise SimulationError(f"cannot schedule event at time {time!r}")
        seq = self._seq
        self._seq = seq + 1
        event = ScheduledEvent(time, priority, seq, callback, args, label, self,
                               span)
        heapq.heappush(self._heap, (time, priority, seq, event))
        self._live += 1
        return event

    def pop(self) -> Optional[ScheduledEvent]:
        """Remove and return the next live event, or ``None`` if empty."""
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)[3]
            if not event.cancelled:
                event._queue = None
                self._live -= 1
                return event
        return None

    def pop_until(self, horizon: float) -> Optional[ScheduledEvent]:
        """Pop the next live event at or before ``horizon``, else ``None``.

        Fuses the former ``peek_time()``/``pop()`` pair into a single heap
        traversal: cancelled entries are drained once, and an event beyond
        the horizon stays queued.  ``None`` therefore means *either* the
        queue is empty *or* the next live event is later than ``horizon``
        (callers distinguish via :meth:`peek_time` when it matters).
        """
        heap = self._heap
        while heap:
            entry = heap[0]
            if entry[3].cancelled:
                heapq.heappop(heap)
                continue
            if entry[0] > horizon:
                return None
            event = heapq.heappop(heap)[3]
            event._queue = None
            self._live -= 1
            return event
        return None

    def peek_time(self) -> Optional[float]:
        """Return the time of the next live event without removing it."""
        heap = self._heap
        while heap and heap[0][3].cancelled:
            heapq.heappop(heap)
        if not heap:
            return None
        return heap[0][0]

    def note_cancelled(self) -> None:
        """Deprecated no-op, kept for source compatibility.

        :meth:`ScheduledEvent.cancel` now keeps the live count accurate
        itself, which closes the historical accounting drift where events
        cancelled directly on the handle (bypassing this method) left
        ``len(queue)`` overcounting until the heap drained them.
        """

    def clear(self) -> None:
        """Drop every pending event (their handles read as cancelled)."""
        for entry in self._heap:
            event = entry[3]
            event.cancelled = True
            event._queue = None
        self._heap.clear()
        self._live = 0
