"""Priority queue of scheduled simulation events.

Ordering is total and deterministic: events fire by (time, priority,
sequence number).  The sequence number breaks ties in insertion order so
repeated runs with the same seed replay identically.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.errors import SimulationError


@dataclass(order=True)
class ScheduledEvent:
    """A callback scheduled to run at a simulated time.

    Instances are ordered by ``(time, priority, seq)`` which is exactly the
    firing order.  ``cancelled`` events stay in the heap but are skipped
    when popped (lazy deletion).
    """

    time: float
    priority: int
    seq: int
    callback: Callable[..., Any] = field(compare=False)
    args: tuple = field(compare=False, default=())
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event so it will be skipped when its time comes."""
        self.cancelled = True


class EventQueue:
    """A deterministic min-heap of :class:`ScheduledEvent` objects."""

    def __init__(self) -> None:
        self._heap: list[ScheduledEvent] = []
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def push(
        self,
        time: float,
        callback: Callable[..., Any],
        args: tuple = (),
        priority: int = 0,
        label: str = "",
    ) -> ScheduledEvent:
        """Schedule ``callback(*args)`` at ``time`` and return a cancellable handle."""
        if time != time or time == float("inf"):  # NaN or inf
            raise SimulationError(f"cannot schedule event at time {time!r}")
        event = ScheduledEvent(
            time=time,
            priority=priority,
            seq=next(self._counter),
            callback=callback,
            args=args,
            label=label,
        )
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def pop(self) -> Optional[ScheduledEvent]:
        """Remove and return the next live event, or ``None`` if empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._live -= 1
            return event
        self._live = 0
        return None

    def peek_time(self) -> Optional[float]:
        """Return the time of the next live event without removing it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            self._live = 0
            return None
        return self._heap[0].time

    def note_cancelled(self) -> None:
        """Account for an externally-cancelled event (keeps ``len`` accurate)."""
        if self._live > 0:
            self._live -= 1

    def clear(self) -> None:
        """Drop every pending event."""
        self._heap.clear()
        self._live = 0
