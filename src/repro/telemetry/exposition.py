"""Metrics exposition: Prometheus text format, JSONL, and run bundles.

The registry's in-memory snapshot becomes operator-consumable artifacts:

* :func:`prometheus_text` — the Prometheus text exposition format
  (counters and gauges verbatim; histograms as summaries with quantile
  labels plus ``_sum``/``_count``; time series as ``_last``/``_peak``/
  ``_count`` gauges);
* :func:`metrics_jsonl` — one JSON object per metric, for ad-hoc
  tooling and diffing between runs;
* :func:`write_bundle` — the per-run telemetry bundle
  (``metrics.prom``, ``metrics.jsonl``, ``spans.jsonl``,
  ``events.jsonl``, ``manifest.json``) CI uploads as a build artifact.
"""

from __future__ import annotations

import json
import os
import re
from typing import Optional

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_ESCAPES = {"\\": "\\\\", '"': '\\"', "\n": "\\n"}

#: Quantiles exported for histogram metrics (mirrors the snapshot keys).
HISTOGRAM_QUANTILES = (0.5, 0.95, 0.99)


def sanitize_metric_name(name: str) -> str:
    """Map a registry name (``net.sent``) onto the Prometheus grammar
    (``net_sent``): ``[a-zA-Z_:][a-zA-Z0-9_:]*``."""
    cleaned = _NAME_OK.sub("_", name)
    if not cleaned or cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def _escape_label(value: str) -> str:
    for raw, escaped in _LABEL_ESCAPES.items():
        value = value.replace(raw, escaped)
    return value


def _format_value(value) -> str:
    if value is None:
        return "NaN"
    return repr(float(value))


def _atomic_write_text(path: str, text: str) -> None:
    """Write ``text`` to ``path`` atomically: a crash mid-write leaves
    the previous file intact, never a torn one (tmp + ``os.replace``)."""
    tmp = path + ".tmp"
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.remove(tmp)
        raise


def prometheus_text(registry) -> str:
    """Render a :class:`~repro.sim.metrics.MetricsRegistry` in the
    Prometheus text exposition format (version 0.0.4).

    Every metric family gets a ``# HELP``/``# TYPE`` header pair exactly
    once — including summary families whose quantile values render as
    ``NaN`` — even when distinct registry names sanitize onto the same
    family (``api.latency`` and ``api_latency`` collide; the first
    declares the family, later samples just join it).
    """
    from repro.sim.metrics import Counter, Gauge, Histogram, TimeSeries

    lines: list[str] = []
    declared: set = set()

    def header(family: str, kind: str, source: str) -> None:
        if family in declared:
            return
        declared.add(family)
        lines.append(f"# HELP {family} {source}")
        lines.append(f"# TYPE {family} {kind}")

    for name in registry.names():
        metric = registry.get(name)
        prom = sanitize_metric_name(name)
        if isinstance(metric, Counter):
            header(prom, "counter", name)
            lines.append(f"{prom} {_format_value(metric.value)}")
        elif isinstance(metric, Gauge):
            header(prom, "gauge", name)
            lines.append(f"{prom} {_format_value(metric.value)}")
        elif isinstance(metric, Histogram):
            header(prom, "summary", name)
            for q in HISTOGRAM_QUANTILES:
                lines.append(f'{prom}{{quantile="{_escape_label(repr(q))}"}} '
                             f"{_format_value(metric.quantile(q))}")
            lines.append(f"{prom}_sum {_format_value(metric.mean * metric.count)}")
            lines.append(f"{prom}_count {metric.count}")
        elif isinstance(metric, TimeSeries):
            for suffix, value in (("last", metric.last()),
                                  ("peak", metric.peak()),
                                  ("count", len(metric.samples))):
                header(f"{prom}_{suffix}", "gauge", name)
                lines.append(f"{prom}_{suffix} {_format_value(value)}")
        else:                                         # future metric kinds
            header(prom, "untyped", name)
            snap = metric.snapshot()
            lines.append(f"{prom} {_format_value(snap.get('value'))}")
    return "\n".join(lines) + ("\n" if lines else "")


def metrics_jsonl(registry, path: str) -> int:
    """Write one JSON object per metric (``{"name", ...snapshot}``);
    returns the number of metrics written.  The write is atomic: the
    full text is built first, so a snapshot that raises leaves any
    previous file untouched."""
    records = []
    for name, snap in registry.snapshot().items():
        records.append(json.dumps({"name": name, **snap},
                                  sort_keys=True, default=str) + "\n")
    _atomic_write_text(path, "".join(records))
    return len(records)


def write_bundle(sim, dirpath: str,
                 extra_manifest: Optional[dict] = None,
                 alerts=None, leases=None) -> dict:
    """Write the full per-run telemetry bundle under ``dirpath``.

    Files: ``metrics.prom`` (Prometheus snapshot), ``metrics.jsonl``,
    ``spans.jsonl`` (causal spans), ``events.jsonl`` (trace events), and
    ``manifest.json`` tying them together with run stats.  With an
    ``alerts`` engine (:class:`~repro.telemetry.health.AlertEngine`) the
    fired/resolved alert history additionally lands in
    ``alerts.jsonl``; with a ``leases`` authority
    (:class:`~repro.safeguards.lease.LeaseAuthority`) or a plain list of
    lease lifecycle events, they land in ``leases.jsonl`` (E22).
    Returns the manifest dict.

    Every file lands atomically (tmp + ``os.replace``): a crash mid-dump
    leaves each artifact either absent, or complete from this dump, or
    complete from the previous one — never torn.
    """
    os.makedirs(dirpath, exist_ok=True)

    _atomic_write_text(os.path.join(dirpath, "metrics.prom"),
                       prometheus_text(sim.metrics))
    metric_count = metrics_jsonl(sim.metrics, os.path.join(dirpath, "metrics.jsonl"))

    def atomic_export(export_fn, path: str) -> int:
        tmp = path + ".tmp"
        try:
            count = export_fn(tmp)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.remove(tmp)
            raise
        return count

    span_count = atomic_export(sim.telemetry.export_jsonl,
                               os.path.join(dirpath, "spans.jsonl"))
    event_count = atomic_export(sim.trace.export_jsonl,
                                os.path.join(dirpath, "events.jsonl"))

    files = ["metrics.prom", "metrics.jsonl", "spans.jsonl",
             "events.jsonl", "manifest.json"]
    alert_counts = None
    if alerts is not None:
        _atomic_write_text(os.path.join(dirpath, "alerts.jsonl"),
                           alerts.export_jsonl())
        files.insert(-1, "alerts.jsonl")
        alert_counts = {"fired": len(alerts.history),
                        "active": len(alerts.active)}

    lease_count = None
    if leases is not None:
        lease_events = leases if isinstance(leases, list) else leases.events
        _atomic_write_text(
            os.path.join(dirpath, "leases.jsonl"),
            "".join(json.dumps(event, sort_keys=True, default=str) + "\n"
                    for event in lease_events))
        files.insert(-1, "leases.jsonl")
        lease_count = len(lease_events)

    manifest = {
        "sim_time": sim.now,
        "events_processed": sim.events_processed,
        "metrics": metric_count,
        "spans": sim.telemetry.stats(),
        "trace_events": event_count,
        "trace": sim.trace.stats(),
        "files": files,
    }
    if alert_counts is not None:
        manifest["alerts"] = alert_counts
    if lease_count is not None:
        manifest["lease_events"] = lease_count
    if extra_manifest:
        manifest.update(extra_manifest)
    _atomic_write_text(
        os.path.join(dirpath, "manifest.json"),
        json.dumps(manifest, indent=2, sort_keys=True, default=str) + "\n")
    return manifest
