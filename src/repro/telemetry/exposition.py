"""Metrics exposition: Prometheus text format, JSONL, and run bundles.

The registry's in-memory snapshot becomes operator-consumable artifacts:

* :func:`prometheus_text` — the Prometheus text exposition format
  (counters and gauges verbatim; histograms as summaries with quantile
  labels plus ``_sum``/``_count``; time series as ``_last``/``_peak``/
  ``_count`` gauges);
* :func:`metrics_jsonl` — one JSON object per metric, for ad-hoc
  tooling and diffing between runs;
* :func:`write_bundle` — the per-run telemetry bundle
  (``metrics.prom``, ``metrics.jsonl``, ``spans.jsonl``,
  ``events.jsonl``, ``manifest.json``) CI uploads as a build artifact;
* :func:`parse_prometheus_text` — the inverse of
  :func:`prometheus_text`, so the warehouse (E24) can ingest a
  ``metrics.prom`` snapshot back into typed metric families without a
  live registry.

Bundles are **self-describing** since schema version 1
(:data:`BUNDLE_SCHEMA`): the manifest carries the run's identity —
``experiment``, ``arm``, ``seed``, ``horizon`` — so warehouse ingest
needs nothing but the directory.
"""

from __future__ import annotations

import json
import math
import os
import re
from typing import Optional

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_ESCAPES = {"\\": "\\\\", '"': '\\"', "\n": "\\n"}
_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)\s*$")
_LABEL = re.compile(r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:\\.|[^"\\])*)"')

#: Manifest schema version stamped by :func:`write_bundle`.  Bump when a
#: manifest key changes meaning; the warehouse refuses schemas it does
#: not know.
BUNDLE_SCHEMA = 1

#: Quantiles exported for histogram metrics (mirrors the snapshot keys).
HISTOGRAM_QUANTILES = (0.5, 0.95, 0.99)


def sanitize_metric_name(name: str) -> str:
    """Map a registry name (``net.sent``) onto the Prometheus grammar
    (``net_sent``): ``[a-zA-Z_:][a-zA-Z0-9_:]*``."""
    cleaned = _NAME_OK.sub("_", name)
    if not cleaned or cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def _escape_label(value: str) -> str:
    for raw, escaped in _LABEL_ESCAPES.items():
        value = value.replace(raw, escaped)
    return value


def _format_value(value) -> str:
    if value is None:
        return "NaN"
    return repr(float(value))


def _atomic_write_text(path: str, text: str) -> None:
    """Write ``text`` to ``path`` atomically: a crash mid-write leaves
    the previous file intact, never a torn one (tmp + ``os.replace``)."""
    tmp = path + ".tmp"
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.remove(tmp)
        raise


def prometheus_text(registry) -> str:
    """Render a :class:`~repro.sim.metrics.MetricsRegistry` in the
    Prometheus text exposition format (version 0.0.4).

    Every metric family gets a ``# HELP``/``# TYPE`` header pair exactly
    once — including summary families whose quantile values render as
    ``NaN`` — even when distinct registry names sanitize onto the same
    family (``api.latency`` and ``api_latency`` collide; the first
    declares the family, later samples just join it).
    """
    from repro.sim.metrics import Counter, Gauge, Histogram, TimeSeries

    lines: list[str] = []
    declared: set = set()

    def header(family: str, kind: str, source: str) -> None:
        if family in declared:
            return
        declared.add(family)
        lines.append(f"# HELP {family} {source}")
        lines.append(f"# TYPE {family} {kind}")

    for name in registry.names():
        metric = registry.get(name)
        prom = sanitize_metric_name(name)
        if isinstance(metric, Counter):
            header(prom, "counter", name)
            lines.append(f"{prom} {_format_value(metric.value)}")
        elif isinstance(metric, Gauge):
            header(prom, "gauge", name)
            lines.append(f"{prom} {_format_value(metric.value)}")
        elif isinstance(metric, Histogram):
            header(prom, "summary", name)
            for q in HISTOGRAM_QUANTILES:
                lines.append(f'{prom}{{quantile="{_escape_label(repr(q))}"}} '
                             f"{_format_value(metric.quantile(q))}")
            lines.append(f"{prom}_sum {_format_value(metric.mean * metric.count)}")
            lines.append(f"{prom}_count {metric.count}")
        elif isinstance(metric, TimeSeries):
            for suffix, value in (("last", metric.last()),
                                  ("peak", metric.peak()),
                                  ("count", len(metric.samples))):
                header(f"{prom}_{suffix}", "gauge", name)
                lines.append(f"{prom}_{suffix} {_format_value(value)}")
        else:                                         # future metric kinds
            header(prom, "untyped", name)
            snap = metric.snapshot()
            lines.append(f"{prom} {_format_value(snap.get('value'))}")
    return "\n".join(lines) + ("\n" if lines else "")


def _unescape_label(value: str) -> str:
    out = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            out.append({"n": "\n", "\\": "\\", '"': '"'}.get(nxt, nxt))
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def parse_prometheus_text(text: str) -> dict:
    """Parse the text exposition format back into metric families.

    Returns ``{family: {"type", "help", "samples"}}`` where each sample
    is ``{"name", "labels", "value"}`` (``value`` is a float, ``NaN``
    preserved).  Summary ``_sum``/``_count`` samples and time-series
    ``_last``/``_peak``/``_count`` gauges attach to the family that
    declared them when a header exists, otherwise they found their own.
    Unparseable lines are collected under ``"_errors"`` in the returned
    mapping's ``None``-keyed slot rather than raising: a warehouse must
    ingest a slightly mangled snapshot, not crash on it.
    """
    families: dict = {}
    errors: list = []

    def family_for(name: str) -> dict:
        # A sample like api_latency_sum belongs to the api_latency
        # summary family when that family was declared by a header.
        for suffix in ("_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in families:
                return families[name[: -len(suffix)]]
        return families.setdefault(
            name, {"type": "untyped", "help": None, "samples": []})

    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            rest = line[len("# HELP "):]
            name, _, help_text = rest.partition(" ")
            families.setdefault(
                name, {"type": "untyped", "help": None, "samples": []}
            )["help"] = help_text
            continue
        if line.startswith("# TYPE "):
            rest = line[len("# TYPE "):]
            name, _, kind = rest.partition(" ")
            families.setdefault(
                name, {"type": "untyped", "help": None, "samples": []}
            )["type"] = kind.strip() or "untyped"
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE.match(line)
        if match is None:
            errors.append(raw_line)
            continue
        name = match.group("name")
        try:
            value = float(match.group("value"))
        except ValueError:
            errors.append(raw_line)
            continue
        labels = {}
        if match.group("labels"):
            for label in _LABEL.finditer(match.group("labels")):
                labels[label.group("key")] = _unescape_label(
                    label.group("value"))
        family_for(name)["samples"].append(
            {"name": name, "labels": labels, "value": value})
    if errors:
        families["_errors"] = errors
    return families


def flatten_families(families: dict) -> dict:
    """Collapse parsed families into ``{flat_name: float}`` — the shape
    warehouse queries address.

    Counters and gauges keep their family name; labelled samples append
    sorted ``key=value`` pairs (``api_latency{quantile="0.99"}`` becomes
    ``api_latency.quantile=0.99``); ``_sum``/``_count`` keep their
    sample names.  ``NaN`` samples are dropped — an empty histogram's
    quantiles carry no information a cross-run aggregate could use.
    """
    flat: dict = {}
    for family, info in families.items():
        if family == "_errors":
            continue
        for sample in info["samples"]:
            name = sample["name"]
            if sample["labels"]:
                tags = ",".join(f"{key}={value}" for key, value
                                in sorted(sample["labels"].items()))
                name = f"{name}.{tags}"
            value = sample["value"]
            if isinstance(value, float) and math.isnan(value):
                continue
            flat[name] = value
    return flat


def metrics_jsonl(registry, path: str) -> int:
    """Write one JSON object per metric (``{"name", ...snapshot}``);
    returns the number of metrics written.  The write is atomic: the
    full text is built first, so a snapshot that raises leaves any
    previous file untouched."""
    records = []
    for name, snap in registry.snapshot().items():
        records.append(json.dumps({"name": name, **snap},
                                  sort_keys=True, default=str) + "\n")
    _atomic_write_text(path, "".join(records))
    return len(records)


def write_bundle(sim, dirpath: str,
                 extra_manifest: Optional[dict] = None,
                 alerts=None, leases=None,
                 experiment: Optional[str] = None,
                 arm: Optional[str] = None,
                 seed=None,
                 horizon: Optional[float] = None) -> dict:
    """Write the full per-run telemetry bundle under ``dirpath``.

    Files: ``metrics.prom`` (Prometheus snapshot), ``metrics.jsonl``,
    ``spans.jsonl`` (causal spans), ``events.jsonl`` (trace events), and
    ``manifest.json`` tying them together with run stats.  With an
    ``alerts`` engine (:class:`~repro.telemetry.health.AlertEngine`) the
    fired/resolved alert history additionally lands in
    ``alerts.jsonl``; with a ``leases`` authority
    (:class:`~repro.safeguards.lease.LeaseAuthority`) or a plain list of
    lease lifecycle events, they land in ``leases.jsonl`` (E22).
    Returns the manifest dict.

    The manifest is self-describing for warehouse ingest (E24): it
    always stamps ``bundle_schema`` (:data:`BUNDLE_SCHEMA`) plus the
    run's identity — ``experiment``, ``arm``, ``seed``, and the tick
    ``horizon`` (defaulting to the sim clock at dump time) — ``None``
    where the caller knows no better.

    Every file lands atomically (tmp + ``os.replace``): a crash mid-dump
    leaves each artifact either absent, or complete from this dump, or
    complete from the previous one — never torn.
    """
    os.makedirs(dirpath, exist_ok=True)

    _atomic_write_text(os.path.join(dirpath, "metrics.prom"),
                       prometheus_text(sim.metrics))
    metric_count = metrics_jsonl(sim.metrics, os.path.join(dirpath, "metrics.jsonl"))

    def atomic_export(export_fn, path: str) -> int:
        tmp = path + ".tmp"
        try:
            count = export_fn(tmp)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.remove(tmp)
            raise
        return count

    span_count = atomic_export(sim.telemetry.export_jsonl,
                               os.path.join(dirpath, "spans.jsonl"))
    event_count = atomic_export(sim.trace.export_jsonl,
                                os.path.join(dirpath, "events.jsonl"))

    files = ["metrics.prom", "metrics.jsonl", "spans.jsonl",
             "events.jsonl", "manifest.json"]
    alert_counts = None
    if alerts is not None:
        _atomic_write_text(os.path.join(dirpath, "alerts.jsonl"),
                           alerts.export_jsonl())
        files.insert(-1, "alerts.jsonl")
        alert_counts = {"fired": len(alerts.history),
                        "active": len(alerts.active)}

    lease_count = None
    if leases is not None:
        lease_events = leases if isinstance(leases, list) else leases.events
        _atomic_write_text(
            os.path.join(dirpath, "leases.jsonl"),
            "".join(json.dumps(event, sort_keys=True, default=str) + "\n"
                    for event in lease_events))
        files.insert(-1, "leases.jsonl")
        lease_count = len(lease_events)

    manifest = {
        "bundle_schema": BUNDLE_SCHEMA,
        "experiment": experiment,
        "arm": arm,
        "seed": seed,
        "horizon": sim.now if horizon is None else horizon,
        "sim_time": sim.now,
        "events_processed": sim.events_processed,
        "metrics": metric_count,
        "spans": sim.telemetry.stats(),
        "trace_events": event_count,
        "trace": sim.trace.stats(),
        "files": files,
    }
    if alert_counts is not None:
        manifest["alerts"] = alert_counts
    if lease_count is not None:
        manifest["lease_events"] = lease_count
    if extra_manifest:
        manifest.update(extra_manifest)
    _atomic_write_text(
        os.path.join(dirpath, "manifest.json"),
        json.dumps(manifest, indent=2, sort_keys=True, default=str) + "\n")
    return manifest
