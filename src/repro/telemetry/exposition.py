"""Metrics exposition: Prometheus text format, JSONL, and run bundles.

The registry's in-memory snapshot becomes operator-consumable artifacts:

* :func:`prometheus_text` — the Prometheus text exposition format
  (counters and gauges verbatim; histograms as summaries with quantile
  labels plus ``_sum``/``_count``; time series as ``_last``/``_peak``/
  ``_count`` gauges);
* :func:`metrics_jsonl` — one JSON object per metric, for ad-hoc
  tooling and diffing between runs;
* :func:`write_bundle` — the per-run telemetry bundle
  (``metrics.prom``, ``metrics.jsonl``, ``spans.jsonl``,
  ``events.jsonl``, ``manifest.json``) CI uploads as a build artifact.
"""

from __future__ import annotations

import json
import os
import re
from typing import Optional

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_ESCAPES = {"\\": "\\\\", '"': '\\"', "\n": "\\n"}

#: Quantiles exported for histogram metrics (mirrors the snapshot keys).
HISTOGRAM_QUANTILES = (0.5, 0.95, 0.99)


def sanitize_metric_name(name: str) -> str:
    """Map a registry name (``net.sent``) onto the Prometheus grammar
    (``net_sent``): ``[a-zA-Z_:][a-zA-Z0-9_:]*``."""
    cleaned = _NAME_OK.sub("_", name)
    if not cleaned or cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def _escape_label(value: str) -> str:
    for raw, escaped in _LABEL_ESCAPES.items():
        value = value.replace(raw, escaped)
    return value


def _format_value(value) -> str:
    if value is None:
        return "NaN"
    return repr(float(value))


def prometheus_text(registry) -> str:
    """Render a :class:`~repro.sim.metrics.MetricsRegistry` in the
    Prometheus text exposition format (version 0.0.4)."""
    from repro.sim.metrics import Counter, Gauge, Histogram, TimeSeries

    lines: list[str] = []
    for name in registry.names():
        metric = registry.get(name)
        prom = sanitize_metric_name(name)
        if isinstance(metric, Counter):
            lines.append(f"# TYPE {prom} counter")
            lines.append(f"{prom} {_format_value(metric.value)}")
        elif isinstance(metric, Gauge):
            lines.append(f"# TYPE {prom} gauge")
            lines.append(f"{prom} {_format_value(metric.value)}")
        elif isinstance(metric, Histogram):
            lines.append(f"# TYPE {prom} summary")
            for q in HISTOGRAM_QUANTILES:
                lines.append(f'{prom}{{quantile="{_escape_label(repr(q))}"}} '
                             f"{_format_value(metric.quantile(q))}")
            lines.append(f"{prom}_sum {_format_value(metric.mean * metric.count)}")
            lines.append(f"{prom}_count {metric.count}")
        elif isinstance(metric, TimeSeries):
            for suffix, value in (("last", metric.last()),
                                  ("peak", metric.peak()),
                                  ("count", len(metric.samples))):
                lines.append(f"# TYPE {prom}_{suffix} gauge")
                lines.append(f"{prom}_{suffix} {_format_value(value)}")
        else:                                         # future metric kinds
            lines.append(f"# TYPE {prom} untyped")
            snap = metric.snapshot()
            lines.append(f"{prom} {_format_value(snap.get('value'))}")
    return "\n".join(lines) + ("\n" if lines else "")


def metrics_jsonl(registry, path: str) -> int:
    """Write one JSON object per metric (``{"name", ...snapshot}``);
    returns the number of metrics written."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for name, snap in registry.snapshot().items():
            handle.write(json.dumps({"name": name, **snap},
                                    sort_keys=True, default=str) + "\n")
            count += 1
    return count


def write_bundle(sim, dirpath: str,
                 extra_manifest: Optional[dict] = None,
                 alerts=None, leases=None) -> dict:
    """Write the full per-run telemetry bundle under ``dirpath``.

    Files: ``metrics.prom`` (Prometheus snapshot), ``metrics.jsonl``,
    ``spans.jsonl`` (causal spans), ``events.jsonl`` (trace events), and
    ``manifest.json`` tying them together with run stats.  With an
    ``alerts`` engine (:class:`~repro.telemetry.health.AlertEngine`) the
    fired/resolved alert history additionally lands in
    ``alerts.jsonl``; with a ``leases`` authority
    (:class:`~repro.safeguards.lease.LeaseAuthority`) or a plain list of
    lease lifecycle events, they land in ``leases.jsonl`` (E22).
    Returns the manifest dict.
    """
    os.makedirs(dirpath, exist_ok=True)

    prom_path = os.path.join(dirpath, "metrics.prom")
    with open(prom_path, "w", encoding="utf-8") as handle:
        handle.write(prometheus_text(sim.metrics))
    metric_count = metrics_jsonl(sim.metrics, os.path.join(dirpath, "metrics.jsonl"))
    span_count = sim.telemetry.export_jsonl(os.path.join(dirpath, "spans.jsonl"))
    event_count = sim.trace.export_jsonl(os.path.join(dirpath, "events.jsonl"))

    files = ["metrics.prom", "metrics.jsonl", "spans.jsonl",
             "events.jsonl", "manifest.json"]
    alert_counts = None
    if alerts is not None:
        with open(os.path.join(dirpath, "alerts.jsonl"), "w",
                  encoding="utf-8") as handle:
            handle.write(alerts.export_jsonl())
        files.insert(-1, "alerts.jsonl")
        alert_counts = {"fired": len(alerts.history),
                        "active": len(alerts.active)}

    lease_count = None
    if leases is not None:
        lease_events = leases if isinstance(leases, list) else leases.events
        with open(os.path.join(dirpath, "leases.jsonl"), "w",
                  encoding="utf-8") as handle:
            for event in lease_events:
                handle.write(json.dumps(event, sort_keys=True, default=str)
                             + "\n")
        files.insert(-1, "leases.jsonl")
        lease_count = len(lease_events)

    manifest = {
        "sim_time": sim.now,
        "events_processed": sim.events_processed,
        "metrics": metric_count,
        "spans": sim.telemetry.stats(),
        "trace_events": event_count,
        "trace": sim.trace.stats(),
        "files": files,
    }
    if alert_counts is not None:
        manifest["alerts"] = alert_counts
    if lease_count is not None:
        manifest["lease_events"] = lease_count
    if extra_manifest:
        manifest.update(extra_manifest)
    with open(os.path.join(dirpath, "manifest.json"), "w",
              encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True, default=str)
        handle.write("\n")
    return manifest
