"""Causal telemetry: spans, flight recorder, and metrics exposition (E19).

The paper's sec VI-B audit requirement ("the collection of comprehensive
context information") and the IST-152 explainability mandate both need
more than flat event logs: an overseer asking *why* a device was killed
needs the causal chain from the injected attack through policy
installation, message hops, and safeguard vetoes to the final
intervention.  This package provides that layer:

* :mod:`repro.telemetry.spans` — :class:`SpanContext`/:class:`Span`/
  :class:`Tracer`: causally linked spans minted at attack injection,
  policy generation, and periodic device tasks, propagated through
  message envelopes, reliable-channel retries, engine decisions, and
  journal appends;
* :mod:`repro.telemetry.explain` — :func:`explain` reconstructs and
  renders the cross-device causal chain for any trace id;
* :mod:`repro.telemetry.flight` — :class:`FlightRecorder`: bounded
  per-device ring buffers of recent spans/trace events, dumped to
  stable storage on crash or quarantine (post-mortem forensics);
* :mod:`repro.telemetry.exposition` — Prometheus text format (writer
  *and* parser) and JSONL export of the metrics registry, plus
  self-describing per-run telemetry bundles;
* :mod:`repro.telemetry.warehouse` — the E24 cross-run layer: an
  embedded append-only warehouse of ingested bundles/bench documents
  with a query API and the regression sentinel CI gates on.
"""

from repro.telemetry.explain import Explanation, explain
from repro.telemetry.exposition import (BUNDLE_SCHEMA, metrics_jsonl,
                                        parse_prometheus_text,
                                        prometheus_text, write_bundle)
from repro.telemetry.flight import FlightRecorder
from repro.telemetry.spans import Span, SpanContext, Tracer

__all__ = [
    "BUNDLE_SCHEMA",
    "Explanation",
    "explain",
    "metrics_jsonl",
    "parse_prometheus_text",
    "prometheus_text",
    "write_bundle",
    "FlightRecorder",
    "Span",
    "SpanContext",
    "Tracer",
]
