"""The warehouse row: one run, one schema-versioned, content-addressed record.

A :class:`RunRecord` is the normalized form every ingested artifact —
telemetry bundle, ``BENCH_*.json``, ``run_matrix`` cell — collapses
into: an identity (:class:`RunKey`), a flat ``{metric: float}`` mapping
queries address, and a context dict for the non-numeric facts
(protocols, quick-mode flags, manifest metadata) the sentinel consults
when deciding whether two runs are even comparable.

Records are **content-addressed**: :meth:`RunRecord.digest` hashes the
canonical JSON of everything but the digest itself, and the store
refuses duplicates — re-ingesting the same bundle is a no-op by
construction, not by caller discipline.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Optional

#: Warehouse record schema.  Bump on any key-meaning change; the store
#: keeps old-schema rows readable but stamps every new row with this.
SCHEMA_VERSION = 1

#: Record kinds the warehouse knows.
KINDS = ("bundle", "bench", "matrix", "synthetic")


def canonical_json(payload) -> str:
    """Deterministic JSON (sorted keys, fixed separators) for hashing."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"),
                      default=str)


def flatten_numeric(obj, prefix: str = "", out: Optional[dict] = None) -> dict:
    """Collapse nested dicts/lists into ``{dotted.path: float}``.

    Only numeric leaves survive (bools are *facts*, not measurements —
    they land in record context, never in metrics); list elements are
    indexed (``per_trial_overhead_pct.0``).  This is the one shape the
    query layer addresses, whatever the artifact looked like.
    """
    flat = out if out is not None else {}
    if isinstance(obj, dict):
        for key in sorted(obj):
            name = f"{prefix}.{key}" if prefix else str(key)
            flatten_numeric(obj[key], name, flat)
    elif isinstance(obj, (list, tuple)):
        for index, item in enumerate(obj):
            name = f"{prefix}.{index}" if prefix else str(index)
            flatten_numeric(item, name, flat)
    elif isinstance(obj, bool):
        pass
    elif isinstance(obj, (int, float)):
        value = float(obj)
        if value == value:               # NaN carries no comparable signal
            flat[prefix] = value
    return flat


@dataclass(frozen=True)
class RunKey:
    """What identifies a run across the whole history: which experiment,
    which ablation arm, which seed, which revision of the code."""

    experiment: str
    arm: str = ""
    seed: Optional[int] = None
    git_rev: str = "unknown"

    def to_dict(self) -> dict:
        return {"experiment": self.experiment, "arm": self.arm,
                "seed": self.seed, "git_rev": self.git_rev}

    @staticmethod
    def from_dict(raw: dict) -> "RunKey":
        seed = raw.get("seed")
        return RunKey(str(raw.get("experiment", "")),
                      str(raw.get("arm", "") or ""),
                      int(seed) if seed is not None else None,
                      str(raw.get("git_rev", "unknown")))

    def label(self) -> str:
        parts = [self.experiment]
        if self.arm:
            parts.append(self.arm)
        if self.seed is not None:
            parts.append(f"seed={self.seed}")
        parts.append(self.git_rev[:12])
        return "/".join(parts)


@dataclass
class RunRecord:
    """One ingested run: identity + flat metrics + context + provenance."""

    key: RunKey
    kind: str = "bundle"
    metrics: dict = field(default_factory=dict)
    context: dict = field(default_factory=dict)
    source: str = ""
    tag: str = ""
    schema: int = SCHEMA_VERSION
    #: Optional stored incident tree (``Explanation.to_dict()`` output).
    explanation: Optional[dict] = None

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown record kind {self.kind!r} "
                             f"(expected one of {KINDS})")

    # -- content addressing -----------------------------------------------------

    def digest(self) -> str:
        """SHA-256 of the canonical payload sans digest: two ingests of
        the same artifact under the same identity collide here, which is
        exactly how the store makes re-ingest a no-op."""
        payload = self.to_payload()
        payload.pop("digest", None)
        return hashlib.sha256(canonical_json(payload).encode()).hexdigest()

    # -- (de)serialization ------------------------------------------------------

    def to_payload(self) -> dict:
        payload = {
            "schema": self.schema,
            "kind": self.kind,
            "key": self.key.to_dict(),
            "metrics": self.metrics,
            "context": self.context,
            "source": self.source,
            "tag": self.tag,
        }
        if self.explanation is not None:
            payload["explanation"] = self.explanation
        return payload

    @staticmethod
    def from_payload(payload: dict) -> "RunRecord":
        return RunRecord(
            key=RunKey.from_dict(payload.get("key", {})),
            kind=str(payload.get("kind", "bundle")),
            metrics=dict(payload.get("metrics", {})),
            context=dict(payload.get("context", {})),
            source=str(payload.get("source", "")),
            tag=str(payload.get("tag", "")),
            schema=int(payload.get("schema", 0)),
            explanation=payload.get("explanation"),
        )

    # -- metric access ----------------------------------------------------------

    def metric(self, name: str, default=None):
        """The metric value, or ``default`` — exact flat-name lookup."""
        return self.metrics.get(name, default)

    def quick(self) -> bool:
        """Whether this run came from a reduced (CI quick-mode) protocol
        — the sentinel refuses to gate wall-clock families across a
        quick/full boundary."""
        return bool(self.context.get("quick", False))
