"""Query primitives over run records: filter, select, percentile, group.

Pure functions over lists of :class:`~repro.telemetry.warehouse.records.
RunRecord` — the :class:`~repro.telemetry.warehouse.store.Warehouse`
methods and the ``/query`` endpoint are thin wrappers, so the same
semantics answer an in-process call, an HTTP request, and a CI gate.
"""

from __future__ import annotations

from typing import Optional

#: Fields a ``where`` dict may filter on.  Key fields resolve through
#: the record's :class:`RunKey`; the rest are record attributes.
WHERE_FIELDS = ("experiment", "arm", "seed", "git_rev", "kind", "tag")


def _field(record, name: str):
    if name in ("experiment", "arm", "seed", "git_rev"):
        return getattr(record.key, name)
    return getattr(record, name)


def match_where(record, where) -> bool:
    """Does ``record`` satisfy ``where``?

    ``where`` is a dict mapping :data:`WHERE_FIELDS` to an exact value,
    a list/tuple/set of acceptable values, or a one-argument predicate;
    or a bare callable over the whole record.  Unknown fields raise —
    a typo in a CI gate must fail loudly, not silently match everything.
    """
    if callable(where):
        return bool(where(record))
    for name, expected in where.items():
        if name not in WHERE_FIELDS:
            raise ValueError(
                f"unknown where-field {name!r} (expected one of "
                f"{WHERE_FIELDS})")
        actual = _field(record, name)
        if callable(expected):
            if not expected(actual):
                return False
        elif isinstance(expected, (list, tuple, set, frozenset)):
            if actual not in expected:
                return False
        elif actual != expected:
            return False
    return True


def select_metric(records, metric: str) -> list:
    """``[(record, value)]`` over the records that carry ``metric``."""
    out = []
    for record in records:
        value = record.metrics.get(metric)
        if value is not None:
            out.append((record, float(value)))
    return out


def percentile(sorted_values: list, q: float) -> Optional[float]:
    """Nearest-rank-with-interpolation percentile over sorted values
    (``None`` when empty) — the same convention the benches report."""
    if not sorted_values:
        return None
    if len(sorted_values) == 1:
        return float(sorted_values[0])
    q = min(1.0, max(0.0, float(q)))
    position = q * (len(sorted_values) - 1)
    low = int(position)
    high = min(low + 1, len(sorted_values) - 1)
    fraction = position - low
    return (sorted_values[low] * (1.0 - fraction)
            + sorted_values[high] * fraction)


def median(values) -> Optional[float]:
    return percentile(sorted(values), 0.5)


def group_metric(records, metric: str, by: str = "arm",
                 quantiles=(0.5,)) -> dict:
    """Per-group summary of one metric: count/mean/min/max plus the
    requested quantiles (keys ``p50``-style)."""
    if by not in WHERE_FIELDS:
        raise ValueError(f"cannot group by {by!r} (expected one of "
                         f"{WHERE_FIELDS})")
    buckets: dict = {}
    for record, value in select_metric(records, metric):
        buckets.setdefault(_field(record, by), []).append(value)
    out: dict = {}
    for group_key in sorted(buckets, key=str):
        values = sorted(buckets[group_key])
        summary = {
            "count": len(values),
            "mean": sum(values) / len(values),
            "min": values[0],
            "max": values[-1],
        }
        for q in quantiles:
            summary[f"p{int(round(q * 100))}"] = percentile(values, q)
        out[group_key] = summary
    return out
