"""``python -m repro.telemetry.warehouse`` — the warehouse at the shell.

The CI regression gate is four invocations of this tool::

    python -m repro.telemetry.warehouse ingest --warehouse wh \\
        --git-rev "$BASE_SHA" --tag baseline benchmarks/results
    python -m repro.telemetry.warehouse ingest --warehouse wh \\
        --git-rev "$GITHUB_SHA" --tag candidate benchmarks/results
    python -m repro.telemetry.warehouse compare --warehouse wh \\
        --baseline tag=baseline --candidate tag=candidate --gate
    python -m repro.telemetry.warehouse trajectory --warehouse wh \\
        --out benchmarks/results/TRAJECTORY.json --git-rev "$GITHUB_SHA"

``compare --gate`` exits 1 when any gated family regresses — that exit
code *is* the CI failure.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.telemetry.warehouse.ingest import (ingest_bench, ingest_bundle,
                                              ingest_results_dir)
from repro.telemetry.warehouse.sentinel import (compare_runs,
                                                update_trajectory)
from repro.telemetry.warehouse.store import Warehouse


def _parse_where(pairs) -> dict:
    where: dict = {}
    for pair in pairs or []:
        for clause in pair.split(","):
            key, sep, value = clause.partition("=")
            if not sep:
                raise SystemExit(f"--where wants key=value, got {clause!r}")
            if key == "seed":
                where[key] = int(value)
            else:
                where[key] = value
    return where


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry.warehouse",
        description="Telemetry warehouse + cross-run regression sentinel "
                    "(E24)")
    sub = parser.add_subparsers(dest="command", required=True)

    ingest = sub.add_parser("ingest", help="ingest bundles / BENCH docs")
    ingest.add_argument("paths", nargs="+",
                        help="bundle dir, BENCH_*.json, or a results dir")
    ingest.add_argument("--warehouse", required=True)
    ingest.add_argument("--git-rev", default="unknown")
    ingest.add_argument("--tag", default="")

    query = sub.add_parser("query", help="select / aggregate a metric")
    query.add_argument("--warehouse", required=True)
    query.add_argument("--metric", required=True)
    query.add_argument("--where", action="append", default=[],
                       metavar="KEY=VALUE")
    query.add_argument("--percentiles", default=None,
                       help="comma-separated quantiles, e.g. 0.5,0.95")
    query.add_argument("--by", default=None,
                       help="group by a key field (arm, experiment, ...)")

    compare = sub.add_parser("compare", help="baseline vs candidate gate")
    compare.add_argument("--warehouse", required=True)
    compare.add_argument("--baseline", action="append", required=True,
                         metavar="KEY=VALUE")
    compare.add_argument("--candidate", action="append", required=True,
                         metavar="KEY=VALUE")
    compare.add_argument("--gate", action="store_true",
                         help="exit 1 on any gated regression")
    compare.add_argument("--json", default=None, metavar="PATH",
                         help="also write the full report as JSON")

    trajectory = sub.add_parser("trajectory",
                                help="update the longitudinal record")
    trajectory.add_argument("--warehouse", required=True)
    trajectory.add_argument("--out", required=True)
    trajectory.add_argument("--git-rev", default="unknown")

    stats = sub.add_parser("stats", help="store accounting")
    stats.add_argument("--warehouse", required=True)
    return parser


def cmd_ingest(args) -> int:
    warehouse = Warehouse(args.warehouse)
    totals = {"bench": 0, "bundles": 0, "skipped": []}
    for path in args.paths:
        if os.path.isdir(path):
            if os.path.exists(os.path.join(path, "manifest.json")):
                ingest_bundle(warehouse, path, git_rev=args.git_rev,
                              tag=args.tag)
                totals["bundles"] += 1
            else:
                swept = ingest_results_dir(warehouse, path,
                                           git_rev=args.git_rev,
                                           tag=args.tag)
                totals["bench"] += swept["bench"]
                totals["bundles"] += swept["bundles"]
                totals["skipped"].extend(swept["skipped"])
        else:
            ingest_bench(warehouse, path, git_rev=args.git_rev, tag=args.tag)
            totals["bench"] += 1
    totals["records"] = len(warehouse)
    print(json.dumps(totals, indent=2, sort_keys=True))
    return 0


def cmd_query(args) -> int:
    warehouse = Warehouse(args.warehouse)
    where = _parse_where(args.where) or None
    out: dict = {"metric": args.metric,
                 "matched": len(warehouse.select(args.metric, where))}
    if args.by:
        quantiles = tuple(
            float(q) for q in (args.percentiles or "0.5").split(","))
        out["groups"] = warehouse.group(args.metric, by=args.by,
                                        where=where, quantiles=quantiles)
    elif args.percentiles:
        quantiles = [float(q) for q in args.percentiles.split(",")]
        out["percentiles"] = warehouse.percentile(args.metric, quantiles,
                                                  where)
    else:
        out["values"] = [
            {"run": record.key.label(), "value": value}
            for record, value in warehouse.select(args.metric, where)]
    print(json.dumps(out, indent=2, sort_keys=True, default=str))
    return 0


def cmd_compare(args) -> int:
    warehouse = Warehouse(args.warehouse)
    baseline = warehouse.runs(_parse_where(args.baseline))
    candidate = warehouse.runs(_parse_where(args.candidate))
    if not baseline or not candidate:
        print(f"compare: {len(baseline)} baseline / {len(candidate)} "
              f"candidate run(s) matched -- nothing to judge",
              file=sys.stderr)
        return 2 if args.gate else 0
    report = compare_runs(baseline, candidate)
    print(report.render())
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report.to_dict(), handle, indent=2, sort_keys=True,
                      default=str)
            handle.write("\n")
    if args.gate and not report.ok:
        return 1
    return 0


def cmd_trajectory(args) -> int:
    warehouse = Warehouse(args.warehouse)
    document = update_trajectory(warehouse, args.out, git_rev=args.git_rev)
    print(f"trajectory: {len(document['points'])} point(s) -> {args.out}")
    return 0


def cmd_stats(args) -> int:
    print(json.dumps(Warehouse(args.warehouse).stats(), indent=2,
                     sort_keys=True, default=str))
    return 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return {"ingest": cmd_ingest, "query": cmd_query,
            "compare": cmd_compare, "trajectory": cmd_trajectory,
            "stats": cmd_stats}[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
