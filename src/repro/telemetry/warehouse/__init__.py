"""The telemetry warehouse: longitudinal run storage + regression sentinel (E24).

Every run of this system already emits a rich observability bundle —
E19 spans, E20 SLIs and alerts, E21 authorization rejects, E23 access
logs — plus a ``BENCH_*.json`` per experiment.  This package is the
*cross-run* layer those per-run artifacts were missing: an embedded,
append-only, crash-safe store (the E18 CRC-framed journal over a real
directory) that ingests bundles and bench documents into schema-
versioned :class:`RunRecord` rows keyed by ``(experiment, arm, seed,
git rev)``, a query API over them (:meth:`Warehouse.select`,
percentile aggregation, per-arm group-by), and a **regression
sentinel** (:func:`compare_runs`) producing typed delta reports with
noise-aware gating — median-of-trials per metric family with tolerance
bands, failing CI on perf and defense regressions while staying quiet
on identical runs.

The Kott after-action principle (PAPERS.md) made operational: an
autonomous fleet must record its engagements so auditors can compare
behavior *over time*, not just within one incident.
"""

from repro.telemetry.warehouse.ingest import (ingest_bench, ingest_bundle,
                                              ingest_results_dir,
                                              ingest_run_dict)
from repro.telemetry.warehouse.query import match_where
from repro.telemetry.warehouse.records import (SCHEMA_VERSION, RunKey,
                                               RunRecord, flatten_numeric)
from repro.telemetry.warehouse.sentinel import (DeltaReport, MetricDelta,
                                                classify_metric, compare_runs,
                                                update_trajectory)
from repro.telemetry.warehouse.store import Warehouse

__all__ = [
    "DeltaReport",
    "MetricDelta",
    "RunKey",
    "RunRecord",
    "SCHEMA_VERSION",
    "Warehouse",
    "classify_metric",
    "compare_runs",
    "flatten_numeric",
    "ingest_bench",
    "ingest_bundle",
    "ingest_results_dir",
    "ingest_run_dict",
    "match_where",
    "update_trajectory",
]
