"""The embedded warehouse store: an E18 journal full of run records.

:class:`Warehouse` persists :class:`~repro.telemetry.warehouse.records.
RunRecord` rows through the CRC-framed write-ahead
:class:`~repro.store.journal.Journal` over a
:class:`~repro.store.filestorage.FileStorage` directory — so the
longitudinal record inherits every durability property the device
journals already proved: torn ingests truncate away on the next open,
bit rot stops replay at the last good frame, and snapshot compaction
keeps reopen cost bounded as history grows.

Ingest is **idempotent by content**: each record's digest is indexed,
and appending an already-known digest is a no-op (returns ``False``).
The index is rebuilt from replay on open, so idempotency holds across
processes, not just within one.
"""

from __future__ import annotations

from typing import Optional

from repro.store.filestorage import FileStorage
from repro.store.journal import Journal, ReplayReport
from repro.telemetry.warehouse.query import (group_metric, match_where,
                                             percentile, select_metric)
from repro.telemetry.warehouse.records import RunRecord

#: Journal blob name inside the warehouse directory.
JOURNAL_NAME = "warehouse"

#: Compact (snapshot + truncate the journal) once this many records sit
#: in the post-snapshot tail.  Reopen cost stays one snapshot load plus
#: a short replay no matter how long the history grows.
DEFAULT_COMPACT_EVERY = 512


class Warehouse:
    """Append-only, crash-safe, queryable run history in one directory."""

    def __init__(self, dirpath: str, flush_every: int = 1,
                 compact_every: int = DEFAULT_COMPACT_EVERY):
        self.dirpath = dirpath
        self.storage = FileStorage(dirpath)
        self.journal = Journal(self.storage, JOURNAL_NAME,
                               flush_every=flush_every)
        self.compact_every = compact_every
        self._records: list = []
        self._digests: set = set()
        self.recovery: Optional[ReplayReport] = None
        self._load()

    def _load(self) -> None:
        """Rebuild the in-memory index: snapshot rows + journal tail."""
        snapshot, tail, report = self.journal.recover()
        self.recovery = report
        self._records = []
        self._digests = set()
        if snapshot is not None:
            for payload in snapshot.get("state", {}).get("records", []):
                self._admit(RunRecord.from_payload(payload))
        for journal_record in tail:
            payload = journal_record.payload.get("record")
            if payload is not None:
                self._admit(RunRecord.from_payload(payload))

    def _admit(self, record: RunRecord) -> bool:
        digest = record.digest()
        if digest in self._digests:
            return False
        self._digests.add(digest)
        self._records.append(record)
        return True

    # -- writing ----------------------------------------------------------------

    def ingest(self, record: RunRecord) -> bool:
        """Append one record; ``False`` (and no write) if its content
        digest is already stored — the idempotency contract."""
        if record.digest() in self._digests:
            return False
        self.journal.append({"record": record.to_payload()})
        self._admit(record)
        if (self.compact_every
                and self.journal.flushed_records >= self.compact_every):
            self.compact()
        return True

    def flush(self) -> int:
        """Force buffered frames to disk (only meaningful with
        ``flush_every > 1``, the batched-ingest mode campaign sweeps use
        to amortize fsync cost); returns the count flushed."""
        return self.journal.flush()

    def compact(self) -> int:
        """Fold the whole history into the snapshot blob and truncate
        the journal; returns the sequence number the snapshot covers."""
        return self.journal.snapshot(
            {"records": [record.to_payload() for record in self._records]})

    # -- reading ----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def runs(self, where=None) -> list:
        """Records matching ``where`` (dict of field filters, a callable,
        or ``None`` for everything), in ingest order."""
        if where is None:
            return list(self._records)
        return [record for record in self._records
                if match_where(record, where)]

    def metrics_known(self, where=None) -> list:
        """Sorted union of metric names over the matching records."""
        names: set = set()
        for record in self.runs(where):
            names.update(record.metrics)
        return sorted(names)

    def select(self, metric: str, where=None) -> list:
        """``[(record, value)]`` for every matching record carrying the
        metric."""
        return select_metric(self.runs(where), metric)

    def values(self, metric: str, where=None) -> list:
        return [value for _record, value in self.select(metric, where)]

    def percentile(self, metric: str, q, where=None):
        """Percentile(s) of a metric across matching runs.  ``q`` may be
        one quantile or a sequence; returns a float or ``{q: float}``."""
        values = sorted(self.values(metric, where))
        if isinstance(q, (list, tuple)):
            return {quantile: percentile(values, quantile) for quantile in q}
        return percentile(values, q)

    def group(self, metric: str, by: str = "arm", where=None,
              quantiles=(0.5,)) -> dict:
        """Per-group aggregation: ``{group: {count, mean, min, max,
        p<q>...}}`` with ``by`` one of the key fields (``experiment``,
        ``arm``, ``seed``, ``git_rev``) or ``kind``/``tag``."""
        return group_metric(self.runs(where), metric, by, quantiles)

    def stats(self) -> dict:
        """Store health: row/journal accounting plus recovery findings."""
        report = self.recovery
        return {
            "records": len(self._records),
            "experiments": sorted({record.key.experiment
                                   for record in self._records}),
            "kinds": sorted({record.kind for record in self._records}),
            "journal_tail_records": self.journal.flushed_records,
            "snapshot_seq": self.journal.snapshot_seq,
            "bytes_on_disk": sum(self.storage.size(name)
                                 for name in self.storage.names()),
            "recovery": {
                "torn_bytes": report.torn_bytes if report else 0,
                "corrupt_frame": bool(report and report.corrupt_frame),
                "truncated": bool(report and report.truncated),
            },
        }
