"""Artifact ingestion: bundles, bench documents, and matrix cells become rows.

Three artifact shapes, one normalized record each:

* a **telemetry bundle** directory (``manifest.json`` + ``metrics.prom``
  + the JSONL streams) — identity comes from the self-describing
  manifest (E24 satellite) unless the caller overrides it; the
  Prometheus snapshot is parsed back into typed families and flattened;
  alert/lease/access stream lengths and flight-recorder dumps become
  counts; a stored ``explanation.json`` (an E19 incident tree) rides
  along whole so incidents diff across runs;
* a **``BENCH_*.json``** document — every numeric leaf flattens into a
  metric (``concurrency.throughput_rps``), every ``quick`` flag folds
  into the protocol context the sentinel's comparability check reads;
* a **``run_matrix`` cell** — the flat summary dict a scenario returned
  for one ``(arm, seed)``, ingested live as the sweep runs.
"""

from __future__ import annotations

import json
import os
from typing import Optional

from repro.telemetry.exposition import (BUNDLE_SCHEMA, flatten_families,
                                        parse_prometheus_text)
from repro.telemetry.warehouse.records import (RunKey, RunRecord,
                                               flatten_numeric)

#: Manifest schemas this ingester understands (0 = pre-E24 manifests
#: with no identity block; still ingestable, identity must come from
#: the caller).
KNOWN_BUNDLE_SCHEMAS = (0, BUNDLE_SCHEMA)

#: JSONL streams counted (not parsed wholesale) at bundle ingest.
_STREAM_FILES = ("alerts.jsonl", "leases.jsonl", "api_access.jsonl",
                 "access.jsonl", "spans.jsonl", "events.jsonl")

#: Manifest keys copied into record context when scalar.
_CONTEXT_KEYS = ("scenario", "service", "durability", "safety_transport",
                 "flight_dumps", "health", "reputation", "quick",
                 "events_processed", "sim_time", "profile")


def _count_lines(path: str) -> int:
    count = 0
    with open(path, "rb") as handle:
        for line in handle:
            if line.strip():
                count += 1
    return count


def ingest_bundle(warehouse, dirpath: str,
                  experiment: Optional[str] = None,
                  arm: Optional[str] = None,
                  seed: Optional[int] = None,
                  git_rev: str = "unknown",
                  tag: str = "") -> Optional[RunRecord]:
    """Ingest one telemetry-bundle directory; returns the record (the
    already-stored one is re-built and returned with ``ingest`` a no-op
    when the content is known).  Raises on a manifest schema newer than
    this code understands — silently misreading forward-versioned rows
    is how warehouses rot."""
    manifest_path = os.path.join(dirpath, "manifest.json")
    with open(manifest_path, encoding="utf-8") as handle:
        manifest = json.load(handle)
    schema = int(manifest.get("bundle_schema", 0))
    if schema not in KNOWN_BUNDLE_SCHEMAS:
        raise ValueError(
            f"bundle {dirpath!r} has manifest schema {schema}; this "
            f"ingester knows {KNOWN_BUNDLE_SCHEMAS}")

    key = RunKey(
        experiment=str(experiment or manifest.get("experiment")
                       or manifest.get("scenario") or
                       os.path.basename(os.path.normpath(dirpath))),
        arm=str(arm if arm is not None else (manifest.get("arm") or "")),
        seed=seed if seed is not None else manifest.get("seed"),
        git_rev=git_rev,
    )

    metrics: dict = {}
    prom_path = os.path.join(dirpath, "metrics.prom")
    if os.path.exists(prom_path):
        with open(prom_path, encoding="utf-8") as handle:
            metrics.update(flatten_families(
                parse_prometheus_text(handle.read())))
    for stream in _STREAM_FILES:
        stream_path = os.path.join(dirpath, stream)
        if os.path.exists(stream_path):
            metrics[f"streams.{stream.rsplit('.', 1)[0]}"] = float(
                _count_lines(stream_path))
    horizon = manifest.get("horizon", manifest.get("sim_time"))
    if isinstance(horizon, (int, float)):
        metrics["run.horizon"] = float(horizon)
    spans = manifest.get("spans")
    if isinstance(spans, dict) and isinstance(
            spans.get("spans"), (int, float)):
        metrics["run.spans_retained"] = float(spans["spans"])

    context = {"bundle_schema": schema}
    for name in _CONTEXT_KEYS:
        value = manifest.get(name)
        if isinstance(value, (str, bool, int, float)) or value is None:
            if name in manifest:
                context[name] = value

    explanation = None
    explanation_path = os.path.join(dirpath, "explanation.json")
    if os.path.exists(explanation_path):
        with open(explanation_path, encoding="utf-8") as handle:
            explanation = json.load(handle)

    record = RunRecord(key=key, kind="bundle", metrics=metrics,
                       context=context, source=os.path.normpath(dirpath),
                       tag=tag, explanation=explanation)
    warehouse.ingest(record)
    return record


def ingest_bench(warehouse, path: str, git_rev: str = "unknown",
                 tag: str = "") -> RunRecord:
    """Ingest one ``BENCH_*.json`` perf document as a single record."""
    with open(path, encoding="utf-8") as handle:
        document = json.load(handle)
    if not isinstance(document, dict):
        raise ValueError(f"{path!r} is not a JSON object")
    name = os.path.basename(path)
    experiment = str(document.get("experiment")
                     or name.replace("BENCH_", "").replace(".json", ""))
    metrics = flatten_numeric(document)
    quick_flags = [value for key, value in flatten_bools(document).items()
                   if key == "quick" or key.endswith(".quick")]
    context = {
        "title": document.get("title"),
        "quick": any(quick_flags),
        "sections": sorted(key for key, value in document.items()
                           if isinstance(value, dict)),
    }
    record = RunRecord(
        key=RunKey(experiment=experiment, arm="bench", git_rev=git_rev),
        kind="bench", metrics=metrics, context=context,
        source=os.path.normpath(path), tag=tag)
    warehouse.ingest(record)
    return record


def flatten_bools(obj, prefix: str = "", out: Optional[dict] = None) -> dict:
    """Boolean leaves by dotted path (the facts ``flatten_numeric``
    deliberately excludes from metrics)."""
    flat = out if out is not None else {}
    if isinstance(obj, dict):
        for key in sorted(obj):
            name = f"{prefix}.{key}" if prefix else str(key)
            flatten_bools(obj[key], name, flat)
    elif isinstance(obj, (list, tuple)):
        for index, item in enumerate(obj):
            name = f"{prefix}.{index}" if prefix else str(index)
            flatten_bools(item, name, flat)
    elif isinstance(obj, bool):
        flat[prefix] = obj
    return flat


def ingest_run_dict(warehouse, result: dict, experiment: str, arm: str,
                    seed: Optional[int], git_rev: str = "unknown",
                    tag: str = "", kind: str = "matrix") -> RunRecord:
    """Ingest one scenario summary dict (a ``run_matrix`` cell)."""
    record = RunRecord(
        key=RunKey(experiment=experiment, arm=arm, seed=seed,
                   git_rev=git_rev),
        kind=kind, metrics=flatten_numeric(result),
        context={"quick": bool(result.get("quick", False))},
        source=f"{experiment}:{arm}:{seed}", tag=tag)
    warehouse.ingest(record)
    return record


def ingest_results_dir(warehouse, dirpath: str, git_rev: str = "unknown",
                       tag: str = "") -> dict:
    """Sweep a ``benchmarks/results``-shaped directory: every
    ``BENCH_*.json`` plus every subdirectory holding a ``manifest.json``.
    Returns ``{"bench": n, "bundles": n, "skipped": [...]}``."""
    counts = {"bench": 0, "bundles": 0, "skipped": []}
    for entry in sorted(os.listdir(dirpath)):
        full = os.path.join(dirpath, entry)
        if entry.startswith("BENCH_") and entry.endswith(".json"):
            try:
                ingest_bench(warehouse, full, git_rev=git_rev, tag=tag)
                counts["bench"] += 1
            except (ValueError, OSError) as exc:
                counts["skipped"].append(f"{entry}: {exc}")
        elif (os.path.isdir(full)
              and os.path.exists(os.path.join(full, "manifest.json"))):
            try:
                ingest_bundle(warehouse, full, git_rev=git_rev, tag=tag)
                counts["bundles"] += 1
            except (ValueError, OSError) as exc:
                counts["skipped"].append(f"{entry}: {exc}")
    return counts
