"""The cross-run regression sentinel: typed deltas with noise-aware gates.

:func:`compare_runs` takes a baseline run set and a candidate run set
(each possibly several trials), reduces every shared metric to its
**median over trials** (the E23 best-of-N convention: one robust number
per side, so a single slow trial cannot manufacture a regression), and
judges the delta against a per-family tolerance band:

* **defense** counters (``skynet``, ``healthy_killed``, ``rogue_harm``…)
  — zero tolerance: any increase is a regression.  Across *different*
  protocols (a quick CI run vs a committed full run) only categorical
  breaches gate — a metric that was 0 and became nonzero — because a
  magnitude change may just be the seed-count difference;
* **overhead percentages** — absolute band (percentage points);
* **throughput** (higher is better) and **latency/wall-clock** (lower
  is better) — relative bands, gated only when both sides ran the same
  protocol (quick-mode flags match): wall-clock numbers from different
  workloads are reported, never gated.

The verdicts are typed (:class:`MetricDelta`), the report renders for
humans and serializes for CI (:class:`DeltaReport`), and
:func:`update_trajectory` folds the warehouse's current medians into
``TRAJECTORY.json`` — the longitudinal perf/defense record the ROADMAP
campaigns score against.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Optional

from repro.telemetry.warehouse.query import median

#: Trajectory document schema.
TRAJECTORY_SCHEMA = 1


@dataclass(frozen=True)
class FamilyRule:
    """How one metric family is judged."""

    family: str
    higher_better: bool
    needles: tuple                      # substring matches, first rule wins
    rel_tol: Optional[float] = None     # fraction of the baseline
    abs_tol: Optional[float] = None     # absolute units
    gated: bool = False                 # breaches fail the gate
    wallclock: bool = False             # only gate when protocols match


#: Ordered family rules — first needle match wins; unmatched metrics
#: fall into the ungated ``other`` family.
FAMILY_RULES = (
    FamilyRule("defense", higher_better=False, abs_tol=0.0, gated=True,
               needles=("skynet", "healthy_killed", "rogue_harm",
                        "compromised", "forged_accepted", "harm_events",
                        "false_quarantine")),
    FamilyRule("overhead", higher_better=False, abs_tol=1.5, gated=True,
               wallclock=True, needles=("overhead_pct", "overhead_percent")),
    FamilyRule("throughput", higher_better=True, rel_tol=0.10, gated=True,
               wallclock=True,
               needles=("throughput", "_rps", "per_sec", "per_second",
                        "speedup", "ingest_rate", "query_rate")),
    FamilyRule("latency", higher_better=False, rel_tol=0.25, gated=True,
               wallclock=True,
               needles=("latency", "_ms", "_us", "wall_sec", "seconds",
                        "duration", ".p50", ".p95", ".p99")),
)

OTHER = FamilyRule("other", higher_better=False, needles=())


def classify_metric(name: str) -> FamilyRule:
    """The family rule governing ``name`` (``other`` when none match)."""
    lowered = name.lower()
    for rule in FAMILY_RULES:
        if any(needle in lowered for needle in rule.needles):
            return rule
    return OTHER


@dataclass
class MetricDelta:
    """One judged metric: both medians, the delta, and the verdict."""

    metric: str
    family: str
    baseline: Optional[float]
    candidate: Optional[float]
    delta: Optional[float]
    relative_pct: Optional[float]
    verdict: str                 # ok|improvement|regression|informational|missing
    gated: bool
    n_baseline: int = 0
    n_candidate: int = 0
    note: str = ""

    def to_dict(self) -> dict:
        return dict(self.__dict__)


@dataclass
class DeltaReport:
    """The typed output of :func:`compare_runs`."""

    deltas: list = field(default_factory=list)
    comparable: bool = True
    baseline_runs: int = 0
    candidate_runs: int = 0

    @property
    def regressions(self) -> list:
        return [delta for delta in self.deltas
                if delta.verdict == "regression"]

    @property
    def improvements(self) -> list:
        return [delta for delta in self.deltas
                if delta.verdict == "improvement"]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def to_dict(self) -> dict:
        return {
            "comparable": self.comparable,
            "baseline_runs": self.baseline_runs,
            "candidate_runs": self.candidate_runs,
            "ok": self.ok,
            "regressions": [delta.to_dict() for delta in self.regressions],
            "improvements": [delta.to_dict() for delta in self.improvements],
            "deltas": [delta.to_dict() for delta in self.deltas],
        }

    def render(self, max_rows: int = 40) -> str:
        """Human-readable verdict table, regressions first."""
        ordered = sorted(
            self.deltas,
            key=lambda delta: ({"regression": 0, "improvement": 1,
                                "informational": 2, "ok": 3,
                                "missing": 4}.get(delta.verdict, 5),
                               delta.family, delta.metric))
        lines = [f"compare_runs: {self.baseline_runs} baseline vs "
                 f"{self.candidate_runs} candidate run(s), "
                 f"{'comparable' if self.comparable else 'cross-protocol'}"
                 f" -> {'OK' if self.ok else 'REGRESSIONS'}"]
        for delta in ordered[:max_rows]:
            rel = (f" ({delta.relative_pct:+.1f}%)"
                   if delta.relative_pct is not None else "")
            lines.append(
                f"  [{delta.verdict:>13}] {delta.family:<10} {delta.metric}: "
                f"{delta.baseline} -> {delta.candidate}{rel}")
        if len(ordered) > max_rows:
            lines.append(f"  ... {len(ordered) - max_rows} more")
        return "\n".join(lines)


def _median_metrics(records) -> dict:
    """Median-of-trials per metric over one side's records."""
    pools: dict = {}
    for record in records:
        for name, value in record.metrics.items():
            pools.setdefault(name, []).append(float(value))
    return {name: median(values) for name, values in pools.items()}


def _judge(rule: FamilyRule, base: float, cand: float,
           comparable: bool) -> tuple:
    """``(verdict, note)`` for one metric under its family rule."""
    delta = cand - base
    worse = delta < 0 if rule.higher_better else delta > 0
    tolerance = 0.0
    if rule.abs_tol is not None:
        tolerance = max(tolerance, rule.abs_tol)
    if rule.rel_tol is not None:
        tolerance = max(tolerance, rule.rel_tol * abs(base))
    breach = abs(delta) > tolerance
    if not breach:
        return ("ok", "")
    if not worse:
        return ("improvement", "")
    if rule.family == "other" or not rule.gated:
        return ("informational", "ungated family")
    if rule.wallclock and not comparable:
        return ("informational",
                "wall-clock family across different protocols")
    if rule.family == "defense" and not comparable and base > 0.0:
        # A nonzero defense counter moving under a different protocol
        # may be the seed-count difference; 0 -> nonzero never is.
        return ("informational",
                "magnitude change across protocols (baseline nonzero)")
    return ("regression", "")


def compare_runs(baseline, candidate, comparable: Optional[bool] = None,
                 ) -> DeltaReport:
    """Judge a candidate run set against a baseline run set.

    ``baseline`` / ``candidate`` are lists of
    :class:`~repro.telemetry.warehouse.records.RunRecord` (trials of
    the same protocol on each side).  ``comparable`` overrides the
    automatic protocol check (quick-mode flags equal on both sides).
    """
    baseline = list(baseline)
    candidate = list(candidate)
    if comparable is None:
        comparable = ({record.quick() for record in baseline}
                      == {record.quick() for record in candidate})
    base_medians = _median_metrics(baseline)
    cand_medians = _median_metrics(candidate)
    base_counts = {name: sum(1 for record in baseline
                             if name in record.metrics)
                   for name in base_medians}
    cand_counts = {name: sum(1 for record in candidate
                             if name in record.metrics)
                   for name in cand_medians}

    report = DeltaReport(comparable=comparable,
                         baseline_runs=len(baseline),
                         candidate_runs=len(candidate))
    for metric in sorted(set(base_medians) | set(cand_medians)):
        rule = classify_metric(metric)
        base = base_medians.get(metric)
        cand = cand_medians.get(metric)
        if base is None or cand is None:
            report.deltas.append(MetricDelta(
                metric=metric, family=rule.family, baseline=base,
                candidate=cand, delta=None, relative_pct=None,
                verdict="missing", gated=False,
                n_baseline=base_counts.get(metric, 0),
                n_candidate=cand_counts.get(metric, 0),
                note="present on one side only"))
            continue
        verdict, note = _judge(rule, base, cand, comparable)
        delta = cand - base
        relative = (delta / abs(base) * 100.0) if base != 0.0 else None
        report.deltas.append(MetricDelta(
            metric=metric, family=rule.family, baseline=base,
            candidate=cand, delta=delta, relative_pct=relative,
            verdict=verdict, gated=rule.gated,
            n_baseline=base_counts.get(metric, 0),
            n_candidate=cand_counts.get(metric, 0), note=note))
    return report


# -- the longitudinal record ---------------------------------------------------


def _atomic_write_json(path: str, payload: dict) -> None:
    tmp = path + ".tmp"
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True, default=str)
            handle.write("\n")
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.remove(tmp)
        raise


def load_trajectory(path: str) -> dict:
    """The trajectory document (a fresh empty one when absent/damaged)."""
    if os.path.exists(path):
        try:
            with open(path, encoding="utf-8") as handle:
                document = json.load(handle)
            if isinstance(document, dict) and "points" in document:
                return document
        except ValueError:
            pass
    return {"schema": TRAJECTORY_SCHEMA, "points": []}


def update_trajectory(warehouse, path: str,
                      git_rev: str = "unknown") -> dict:
    """Fold the warehouse's per-experiment medians into the trajectory.

    One point per git revision: ``{git_rev, runs, experiments:
    {experiment: {metric: median}}}``, keeping only metrics a gated
    family governs (the ones the sentinel would act on) so the document
    stays a *trajectory*, not a dump.  An existing point for the same
    revision is replaced — re-running a bench updates history in place
    instead of duplicating it.  Returns the written document.
    """
    experiments: dict = {}
    for record in warehouse.runs():
        pools = experiments.setdefault(record.key.experiment, {})
        for name, value in record.metrics.items():
            if classify_metric(name).family == "other":
                continue
            pools.setdefault(name, []).append(float(value))
    point = {
        "git_rev": git_rev,
        "runs": len(warehouse),
        "experiments": {
            experiment: {name: median(values)
                         for name, values in sorted(pools.items())}
            for experiment, pools in sorted(experiments.items())
        },
    }
    document = load_trajectory(path)
    document["points"] = [existing for existing in document["points"]
                          if existing.get("git_rev") != git_rev]
    document["points"].append(point)
    _atomic_write_json(path, document)
    return document
