"""Causal-chain reconstruction: answer *why* an intervention happened.

Given a trace id, :func:`explain` collects every span of that trace and
rebuilds the causal tree — the IST-152-style explanation an overseer
reads after an incident: *this attack* compromised *these devices*,
which installed *this policy*, whose actions *these safeguards* vetoed,
whose telemetry crossed *these message hops*, and which *this kill
order / self-quarantine* finally contained.
"""

from __future__ import annotations

from typing import Optional

from repro.telemetry.spans import Span, Tracer


def _span_seq(span: Span) -> int:
    """The numeric part of a span id (total order of minting)."""
    try:
        return int(span.context.span_id.lstrip("s"))
    except ValueError:
        return 0


class Explanation:
    """The reconstructed causal tree of one trace."""

    def __init__(self, trace_id: str, spans: list):
        self.trace_id = trace_id
        #: Spans in causal (minting) order — a parent always precedes its
        #: children because contexts are minted before they propagate.
        self.spans: list[Span] = sorted(spans, key=_span_seq)
        self._children: dict[Optional[str], list[Span]] = {}
        known = {span.context.span_id for span in self.spans}
        for span in self.spans:
            parent = span.context.parent_id
            # Orphans (parent dropped by the capacity cap) root the tree
            # rather than vanishing from the explanation.
            key = parent if parent in known else None
            self._children.setdefault(key, []).append(span)

    def __len__(self) -> int:
        return len(self.spans)

    def roots(self) -> list[Span]:
        return list(self._children.get(None, []))

    def children_of(self, span: Span) -> list[Span]:
        return list(self._children.get(span.context.span_id, []))

    # -- chain queries ----------------------------------------------------------

    def kinds(self) -> list[str]:
        """Distinct span names, in causal order of first appearance."""
        seen: dict[str, None] = {}
        for span in self.spans:
            seen.setdefault(span.name)
        return list(seen)

    def subjects(self) -> list[str]:
        """Distinct subjects (devices/components), in causal order."""
        seen: dict[str, None] = {}
        for span in self.spans:
            seen.setdefault(span.subject)
        return list(seen)

    def stage(self, name_prefix: str) -> list[Span]:
        """Spans whose name is ``name_prefix`` or starts with it + ``"."``."""
        return [span for span in self.spans
                if span.name == name_prefix
                or span.name.startswith(name_prefix + ".")]

    def has_stage(self, name_prefix: str) -> bool:
        return bool(self.stage(name_prefix))

    def path_to(self, span: Span) -> list[Span]:
        """Root-to-span causal path (the minimal *why* for one event)."""
        by_id = {s.context.span_id: s for s in self.spans}
        path = [span]
        cursor = span
        while cursor.context.parent_id in by_id:
            cursor = by_id[cursor.context.parent_id]
            path.append(cursor)
        path.reverse()
        return path

    def chain(self) -> list[dict]:
        """The flat plain-dict view (benchmarks export this as JSON)."""
        return [span.to_dict() for span in self.spans]

    # -- serialization ----------------------------------------------------------

    def to_dict(self) -> dict:
        """The full JSON-serializable view — what the warehouse stores
        and diffs across runs.  Everything derivable is included so a
        reader never needs live spans: the span chain itself plus the
        stage/subject summaries an incident diff keys on."""
        return {
            "trace_id": self.trace_id,
            "spans": self.chain(),
            "kinds": self.kinds(),
            "subjects": self.subjects(),
        }

    @staticmethod
    def from_dict(raw: dict) -> "Explanation":
        """Rebuild an :class:`Explanation` from :meth:`to_dict` output.

        Round-trips exactly: the causal tree (roots, children, paths) is
        reconstructed from the serialized span contexts, so a warehouse-
        stored incident renders the same tree the live tracer produced.
        """
        return Explanation(
            str(raw["trace_id"]),
            [Span.from_dict(span) for span in raw.get("spans", [])],
        )

    # -- rendering --------------------------------------------------------------

    def render(self, max_detail: int = 3) -> str:
        """Human-readable indented causal tree."""
        lines = [f"trace {self.trace_id}: {len(self.spans)} span(s), "
                 f"{len(self.subjects())} subject(s)"]

        def walk(span: Span, depth: int) -> None:
            detail = ""
            if span.detail:
                parts = [f"{key}={value!r}" for key, value
                         in list(span.detail.items())[:max_detail]]
                detail = "  [" + ", ".join(parts) + "]"
            lines.append(f"{'  ' * depth}t={span.time:8.2f}  {span.name}"
                         f"  @{span.subject}{detail}")
            for child in self.children_of(span):
                walk(child, depth + 1)

        for root in self.roots():
            walk(root, 1)
        return "\n".join(lines)


def _resolve_tracer(source) -> Tracer:
    if isinstance(source, Tracer):
        return source
    telemetry = getattr(source, "telemetry", None)       # Simulator
    if isinstance(telemetry, Tracer):
        return telemetry
    sim = getattr(source, "sim", None)                   # a scenario
    if sim is not None and isinstance(getattr(sim, "telemetry", None), Tracer):
        return sim.telemetry
    raise TypeError(
        f"cannot find a Tracer on {type(source).__name__}; pass a Tracer, "
        f"a Simulator, or a scenario owning one"
    )


def explain(source, trace_id: str) -> Explanation:
    """Reconstruct the causal chain for ``trace_id``.

    ``source`` may be a :class:`~repro.telemetry.spans.Tracer`, a
    :class:`~repro.sim.simulator.Simulator`, or any object exposing one
    (scenarios expose ``.sim``).
    """
    tracer = _resolve_tracer(source)
    return Explanation(trace_id, tracer.trace(trace_id))
