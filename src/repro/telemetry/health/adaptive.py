"""Closed-loop consumers: alerts actuate the safeguards they watch.

Two ROADMAP items end here — the measurement side has existed since
E18/E19 (the ``reliable.rtt`` histogram, the ``store.*`` pressure
gauges); these classes are the missing *tuning/trigger policies*:

* :class:`AdaptiveQuarantine` — a fixed ``quarantine_after`` trades
  false self-quarantines (transient loss) against rogue lifetime (true
  partition).  The discriminator is the ack-RTT stream: global
  degradation makes *successful* acks need retries, so the fleet RTT
  SLI surges; a truly partitioned device's retries never ack at all and
  leave the fleet RTT untouched.  While the link-degradation alert is
  active every overseer link tolerates more consecutive dead letters;
  the moment it resolves the base fail-closed threshold is back.
* :class:`CompactionController` — snapshots were time-driven
  (``every(20s)``): under sustained write pressure a journal grows
  unboundedly between ticks.  This controller compacts a journal the
  tick its blob crosses a byte budget — but only while the
  storage-pressure alert is active, so quiet fleets never pay a sweep —
  and can batch journal flushes while pressure lasts.
"""

from __future__ import annotations

from typing import Optional


class AdaptiveQuarantine:
    """Tunes ``OverseerLink.quarantine_after`` from link-health alerts.

    With an ``arbiter`` (a :class:`~repro.telemetry.health.knobs.KnobArbiter`)
    the relaxation goes through per-device knob arbitration at
    :attr:`PRIORITY` 10 instead of writing ``link.quarantine_after``
    directly — so the E22 :class:`~repro.trust.reputation.ReputationAdjuster`
    (priority 20) can keep a suspect device's fuse tight through a storm
    that relaxes everyone else's, deterministically rather than by
    whichever callback ran last.  Without an arbiter the legacy
    direct-write behavior is unchanged.
    """

    #: Storm relaxation ranks below reputation tightening (priority 20).
    PRIORITY = 10

    def __init__(self, sim, engine, links, base: int = 3, relaxed: int = 8,
                 rule: str = "link.degraded", arbiter=None):
        if relaxed < base:
            raise ValueError("relaxed threshold must not undercut the base "
                             "(adaptive mode never weakens fail-closed below it)")
        self.sim = sim
        self.links = list(links)
        self.base = base
        self.relaxed = relaxed
        self.rule = rule
        self.arbiter = arbiter
        self._gauge = sim.metrics.gauge("health.quarantine_after")
        self._gauge.set(float(base))
        self._adjustments = sim.metrics.counter("health.quarantine_adjustments")
        if arbiter is not None:
            from repro.telemetry.health.knobs import quarantine_knob
            self._knob_names = []
            for link in self.links:
                name = quarantine_knob(link.device.device_id)
                arbiter.ensure(name, base, self._setter(link))
                self._knob_names.append(name)
        else:
            for link in self.links:
                link.quarantine_after = base
        engine.on_fire(self._on_fire)
        engine.on_resolve(self._on_resolve)

    @staticmethod
    def _setter(link):
        def apply(value):
            link.quarantine_after = int(value)
        return apply

    def _apply(self, threshold: int, cause: str) -> None:
        if self.arbiter is not None:
            for name in self._knob_names:
                if threshold == self.base:
                    self.arbiter.withdraw(name, "adaptive-quarantine")
                else:
                    self.arbiter.propose(name, "adaptive-quarantine",
                                         self.PRIORITY, threshold, cause=cause)
        else:
            for link in self.links:
                link.quarantine_after = threshold
        self._gauge.set(float(threshold))
        self._adjustments.inc()
        self.sim.record("health.quarantine_tune", cause,
                        quarantine_after=threshold)

    def _on_fire(self, alert) -> None:
        if alert.rule.name == self.rule:
            self._apply(self.relaxed, alert.rule.name)

    def _on_resolve(self, alert) -> None:
        if alert.rule.name == self.rule:
            self._apply(self.base, alert.rule.name)


class CompactionController:
    """Size-triggered journal compaction gated on storage-pressure alerts.

    Registered journals publish their summed blob bytes as the
    ``store.journal_bytes`` SLI.  While ``rule`` is active, any journal
    whose blob has outgrown ``compact_bytes`` is checkpointed on the
    spot (snapshot + compact); optionally, flushes batch up while the
    alert lasts and drain the moment it resolves — the explicit
    durability trade under pressure, never silent.
    """

    #: SLI name under which registered journals' total bytes publish.
    SLI = "store.journal_bytes"

    def __init__(self, sim, engine, monitor, compact_bytes: int = 16384,
                 rule: str = "store.pressure",
                 flush_batch: Optional[int] = None):
        self.sim = sim
        self.engine = engine
        self.compact_bytes = compact_bytes
        self.rule = rule
        self.flush_batch = flush_batch
        self._components: list[tuple[str, object, object]] = []
        self._base_flush: dict[int, int] = {}
        self._compactions = sim.metrics.counter("store.compactions_sized")
        monitor.track_value(self.SLI, self._total_bytes)
        monitor.subscribe(self._on_tick)
        if flush_batch is not None:
            engine.on_fire(self._on_fire)
            engine.on_resolve(self._on_resolve)

    def register(self, label: str, journal, checkpoint) -> None:
        """Track ``journal`` with ``checkpoint()`` as its compaction hook
        (e.g. :meth:`repro.audit.log.AuditLog.checkpoint`)."""
        self._components.append((label, journal, checkpoint))

    def _total_bytes(self, _now: float) -> Optional[float]:
        if not self._components:
            return None
        return float(sum(journal.storage.size(journal.name)
                         for _label, journal, _checkpoint in self._components))

    def _on_tick(self, now: float, _readings: dict) -> None:
        if not self.engine.is_active(self.rule):
            return
        for label, journal, checkpoint in self._components:
            size = journal.storage.size(journal.name)
            if size < self.compact_bytes:
                continue
            upto = checkpoint()
            if upto is None:
                continue                    # component declined (e.g. crashed)
            self._compactions.inc()
            self.sim.record("store.compact", label, trigger="size",
                            bytes=size, upto=upto)

    def _on_fire(self, alert) -> None:
        if alert.rule.name != self.rule:
            return
        for _label, journal, _checkpoint in self._components:
            key = id(journal)
            if key not in self._base_flush:
                self._base_flush[key] = journal.flush_every
            journal.flush_every = max(self.flush_batch, journal.flush_every)

    def _on_resolve(self, alert) -> None:
        if alert.rule.name != self.rule:
            return
        for _label, journal, _checkpoint in self._components:
            base = self._base_flush.pop(id(journal), None)
            if base is not None:
                journal.flush_every = base
                journal.flush()
