"""Fleet health monitoring: streaming SLIs, alert rules, closed loops (E20).

The paper's §V detection requirement — humans "monitoring the behavior
of the collective" — needs something watching the live metric streams,
not just the post-hoc ``explain()`` of E19.  This package is that
watcher:

* :mod:`repro.telemetry.health.estimators` — O(1)-memory online
  estimators (:class:`Ewma`, P² streaming quantiles, counter-delta
  rates) that ride the metric streams without retaining samples;
* :mod:`repro.telemetry.health.monitor` — :class:`HealthMonitor`: one
  periodic task sampling every registered SLI, publishing ``health.*``
  gauges and fanning readings out to subscribers;
* :mod:`repro.telemetry.health.rules` — :class:`AlertEngine` evaluating
  :class:`AlertRule` ECA policies (same condition grammar as the
  generative layer) with dwell times and hysteresis; firings mint
  spans, chain into the audit log, and export as JSONL;
* :mod:`repro.telemetry.health.adaptive` — the closed loops:
  :class:`AdaptiveQuarantine` tunes ``OverseerLink.quarantine_after``
  from link-health alerts, :class:`CompactionController` turns
  storage-pressure alerts into size-triggered journal compaction and
  batched flushes;
* :mod:`repro.telemetry.health.knobs` — :class:`KnobArbiter` (E22):
  priority-arbitrated, span-attributed composition when several closed
  loops tune the same safeguard knob.
"""

from repro.telemetry.health.adaptive import (AdaptiveQuarantine,
                                             CompactionController)
from repro.telemetry.health.estimators import Ewma, P2Quantile, RateTracker
from repro.telemetry.health.knobs import (
    KnobArbiter,
    approach_strikes_knob,
    approach_threshold_knob,
    quarantine_knob,
)
from repro.telemetry.health.monitor import HealthMonitor
from repro.telemetry.health.rules import Alert, AlertEngine, AlertRule

__all__ = [
    "AdaptiveQuarantine",
    "CompactionController",
    "KnobArbiter",
    "approach_strikes_knob",
    "approach_threshold_knob",
    "quarantine_knob",
    "Ewma",
    "P2Quantile",
    "RateTracker",
    "HealthMonitor",
    "Alert",
    "AlertEngine",
    "AlertRule",
]
