"""Policy-driven alerting over the live SLI stream.

Alert rules are ECA policies: their firing and clearing conditions are
written in the *same condition grammar* the generative policy layer
uses (:func:`repro.core.conditions.parse_condition`), evaluated against
the :class:`~repro.telemetry.health.monitor.HealthMonitor`'s latest
readings as the state dict.  ``link.rtt_p95 > 0.45`` is a threshold
rule; ``store.journal_rate.roc > 100`` is a rate-of-change rule (the
monitor publishes ``.roc`` derivatives); ``for_ticks`` turns either
into a sustained-for-N-ticks predicate.

Hysteresis comes from a separate ``clear_condition`` (default: the
negated firing condition) with its own ``clear_for_ticks`` dwell, so an
alert flapping around its threshold fires once, not per tick.  A rule
whose condition references an SLI with *no reading yet* is skipped for
that tick — no data is "unknown", never "healthy" — and its streak
resets.

Firing and resolving both mint telemetry spans (``alert.fire`` /
``alert.resolve``), record trace events, bump ``alerts.*`` metrics,
optionally append to a hash-chained audit log, and are retained as
JSONL-ready dicts for the telemetry bundle.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core.conditions import Condition, parse_condition
from repro.errors import ConditionEvalError

SEVERITIES = ("info", "warning", "critical")


@dataclass(frozen=True)
class AlertRule:
    """One declarative alert: fire/clear conditions plus dwell times."""

    name: str
    condition: str
    severity: str = "warning"
    for_ticks: int = 1
    clear_condition: Optional[str] = None
    clear_for_ticks: int = 1
    description: str = ""

    def __post_init__(self):
        if self.severity not in SEVERITIES:
            raise ValueError(f"severity must be one of {SEVERITIES}")
        if self.for_ticks < 1 or self.clear_for_ticks < 1:
            raise ValueError("dwell times must be >= 1 tick")


@dataclass
class Alert:
    """One live (or historical) firing of a rule."""

    rule: AlertRule
    fired_at: float
    reading: dict = field(default_factory=dict)
    resolved_at: Optional[float] = None
    trace_id: Optional[str] = None

    @property
    def active(self) -> bool:
        return self.resolved_at is None


class _CompiledRule:
    __slots__ = ("rule", "fire", "clear", "streak", "clear_streak")

    def __init__(self, rule: AlertRule):
        self.rule = rule
        self.fire: Condition = parse_condition(rule.condition)
        if rule.clear_condition is not None:
            self.clear: Condition = parse_condition(rule.clear_condition)
        else:
            self.clear = parse_condition(f"not ({rule.condition})")
        self.streak = 0
        self.clear_streak = 0


class AlertEngine:
    """Evaluates alert rules on every monitor tick and fans out firings."""

    def __init__(self, sim, monitor, audit=None):
        """``audit`` (an :class:`~repro.audit.log.AuditLog`) chains every
        fire/resolve into the tamper-evident record when given."""
        self.sim = sim
        self.audit = audit
        self._compiled: dict[str, _CompiledRule] = {}
        self._active: dict[str, Alert] = {}
        self.history: list[Alert] = []
        self._on_fire: list[Callable[[Alert], None]] = []
        self._on_resolve: list[Callable[[Alert], None]] = []
        metrics = sim.metrics
        self._fired_total = metrics.counter("alerts.fired")
        self._resolved_total = metrics.counter("alerts.resolved")
        self._active_gauge = metrics.gauge("alerts.active")
        monitor.subscribe(self.evaluate)

    # -- configuration ----------------------------------------------------------

    def add_rule(self, rule: AlertRule) -> None:
        if rule.name in self._compiled:
            raise ValueError(f"alert rule {rule.name!r} already registered")
        self._compiled[rule.name] = _CompiledRule(rule)

    def on_fire(self, listener: Callable[[Alert], None]) -> None:
        self._on_fire.append(listener)

    def on_resolve(self, listener: Callable[[Alert], None]) -> None:
        self._on_resolve.append(listener)

    # -- evaluation -------------------------------------------------------------

    def evaluate(self, now: float, readings: dict) -> None:
        for compiled in self._compiled.values():
            name = compiled.rule.name
            if name in self._active:
                self._check_clear(compiled, now, readings)
            else:
                self._check_fire(compiled, now, readings)
        self._active_gauge.set(len(self._active))

    def _check_fire(self, compiled: _CompiledRule, now: float,
                    readings: dict) -> None:
        try:
            hit = compiled.fire.evaluate(readings)
        except ConditionEvalError:
            # An SLI in the condition has no reading yet: unknown, not
            # healthy — but also not evidence, so the streak restarts.
            compiled.streak = 0
            return
        if not hit:
            compiled.streak = 0
            return
        compiled.streak += 1
        if compiled.streak < compiled.rule.for_ticks:
            return
        compiled.streak = 0
        compiled.clear_streak = 0
        self._fire(compiled.rule, now, readings)

    def _check_clear(self, compiled: _CompiledRule, now: float,
                     readings: dict) -> None:
        try:
            cleared = compiled.clear.evaluate(readings)
        except ConditionEvalError:
            cleared = False                 # can't confirm recovery blind
        if not cleared:
            compiled.clear_streak = 0
            return
        compiled.clear_streak += 1
        if compiled.clear_streak < compiled.rule.clear_for_ticks:
            return
        compiled.clear_streak = 0
        self._resolve(compiled.rule.name, now, readings)

    # -- transitions ------------------------------------------------------------

    def _reading_for(self, rule: AlertRule, readings: dict) -> dict:
        variables = self._compiled[rule.name].fire.variables()
        return {name: readings[name] for name in sorted(variables)
                if name in readings}

    def _fire(self, rule: AlertRule, now: float, readings: dict) -> None:
        reading = self._reading_for(rule, readings)
        span = self.sim.telemetry.start_span(
            "alert.fire", rule.name, severity=rule.severity, **reading)
        alert = Alert(rule=rule, fired_at=now, reading=reading,
                      trace_id=span.context.trace_id if span else None)
        self._active[rule.name] = alert
        self.history.append(alert)
        self._fired_total.inc()
        self.sim.metrics.counter(f"alerts.fired.{rule.severity}").inc()
        self.sim.record("alert.fire", rule.name,
                        severity=rule.severity, **reading)
        if self.audit is not None:
            self.audit.append(now, "alert.fire", rule.name,
                              {"severity": rule.severity, "reading": reading})
        for listener in self._on_fire:
            listener(alert)

    def _resolve(self, name: str, now: float, readings: dict) -> None:
        alert = self._active.pop(name)
        alert.resolved_at = now
        span = self.sim.telemetry.start_span(
            "alert.resolve", name, severity=alert.rule.severity,
            after=now - alert.fired_at)
        if span is not None and alert.trace_id is None:
            alert.trace_id = span.context.trace_id
        self._resolved_total.inc()
        self.sim.record("alert.resolve", name,
                        severity=alert.rule.severity,
                        duration=now - alert.fired_at)
        if self.audit is not None:
            self.audit.append(now, "alert.resolve", name,
                              {"severity": alert.rule.severity,
                               "duration": now - alert.fired_at})
        for listener in self._on_resolve:
            listener(alert)

    # -- queries & export -------------------------------------------------------

    @property
    def active(self) -> dict[str, Alert]:
        return dict(self._active)

    def is_active(self, name: str) -> bool:
        return name in self._active

    def firings(self, name: Optional[str] = None) -> list[Alert]:
        """Every firing so far (optionally of one rule), oldest first."""
        return [alert for alert in self.history
                if name is None or alert.rule.name == name]

    def export_jsonl(self) -> str:
        """Fired/resolved alerts, one JSON object per line (bundle-ready)."""
        lines = []
        for alert in self.history:
            lines.append(json.dumps({
                "rule": alert.rule.name,
                "severity": alert.rule.severity,
                "fired_at": alert.fired_at,
                "resolved_at": alert.resolved_at,
                "reading": alert.reading,
                "trace_id": alert.trace_id,
            }, sort_keys=True))
        return "\n".join(lines) + ("\n" if lines else "")
