"""Deterministic composition of safeguard-knob adjusters (E22 satellite).

Before this module, two closed loops tuning the same knob raced on tick
order: E20's :class:`~repro.telemetry.health.adaptive.AdaptiveQuarantine`
relaxing ``quarantine_after`` during a network storm and E22's
:class:`~repro.trust.reputation.ReputationAdjuster` tightening it for a
suspect device would each blindly overwrite the other — the surviving
value depended on which callback happened to run last.

The :class:`KnobArbiter` makes the composition explicit: a knob is
registered once with its base value and an apply function; adjusters
*propose* values with a declared priority instead of writing directly.
The effective value is the **highest-priority** live proposal (ties
broken by **latest write** — last-writer-wins is now a defined rule, not
an accident of scheduling), falling back to the base when no proposal is
live.  Every effective change is metered, traced, and span-attributed to
the winning adjuster, so an incident review can answer "who set this
fuse to 1?" from the E19 trace alone.
"""

from __future__ import annotations

import itertools
from typing import Callable, Optional

from repro.errors import ConfigurationError


def quarantine_knob(device_id: str) -> str:
    """Per-device ``OverseerLink.quarantine_after`` knob name."""
    return f"link.quarantine_after:{device_id}"


def approach_threshold_knob(device_id: str) -> str:
    """Per-device ``Watchdog`` safeness-approach threshold knob name."""
    return f"watchdog.approach_threshold:{device_id}"


def approach_strikes_knob(device_id: str) -> str:
    """Per-device ``Watchdog`` approach-strikes knob name."""
    return f"watchdog.approach_strikes:{device_id}"


class KnobArbiter:
    """Priority-arbitrated writes to safeguard tuning knobs."""

    def __init__(self, sim):
        self.sim = sim
        #: name -> {"base", "apply", "current", "proposals"} where
        #: proposals maps adjuster -> (priority, seq, value).
        self._knobs: dict[str, dict] = {}
        self._seq = itertools.count(1)
        self._adjustments = sim.metrics.counter("health.knob_adjustments")

    # -- registry ----------------------------------------------------------------

    def register(self, name: str, base, apply_fn: Callable) -> None:
        """Own ``name`` with base value ``base``; ``apply_fn(value)``
        pushes the effective value into the safeguard.  The base is
        applied immediately (the knob starts in its no-proposal state)."""
        if name in self._knobs:
            raise ConfigurationError(f"knob {name!r} already registered")
        self._knobs[name] = {"base": base, "apply": apply_fn,
                             "current": base, "proposals": {}}
        apply_fn(base)

    def ensure(self, name: str, base, apply_fn: Callable) -> None:
        """Register ``name`` unless some other wiring already did."""
        if name not in self._knobs:
            self.register(name, base, apply_fn)

    def has(self, name: str) -> bool:
        return name in self._knobs

    def base(self, name: str):
        return self._knob(name)["base"]

    def effective(self, name: str):
        return self._knob(name)["current"]

    def winner(self, name: str) -> Optional[str]:
        """The adjuster whose proposal is currently effective (``None``
        when the knob sits at its base value)."""
        knob = self._knob(name)
        if not knob["proposals"]:
            return None
        return max(knob["proposals"].items(),
                   key=lambda item: item[1][:2])[0]

    def _knob(self, name: str) -> dict:
        try:
            return self._knobs[name]
        except KeyError:
            raise ConfigurationError(f"unknown knob {name!r}") from None

    # -- arbitration -------------------------------------------------------------

    def propose(self, name: str, adjuster: str, priority: int, value,
                cause: Optional[str] = None):
        """Stake ``adjuster``'s claim on the knob; returns the effective
        value after arbitration.  Re-proposing the same value at the same
        priority is a no-op (no seq churn, no spurious last-writer win)."""
        knob = self._knob(name)
        existing = knob["proposals"].get(adjuster)
        if existing is not None and existing[0] == priority and existing[2] == value:
            return knob["current"]
        knob["proposals"][adjuster] = (priority, next(self._seq), value)
        return self._recompute(name, knob, cause)

    def withdraw(self, name: str, adjuster: str):
        """Drop ``adjuster``'s claim; returns the effective value (the
        next-ranked proposal's, or the base)."""
        knob = self._knob(name)
        if knob["proposals"].pop(adjuster, None) is None:
            return knob["current"]
        return self._recompute(name, knob, cause=f"withdraw:{adjuster}")

    def _recompute(self, name: str, knob: dict, cause: Optional[str]):
        if knob["proposals"]:
            winner, (priority, _seq, value) = max(
                knob["proposals"].items(), key=lambda item: item[1][:2])
        else:
            winner, priority, value = None, 0, knob["base"]
        if value == knob["current"]:
            return value
        knob["current"] = value
        knob["apply"](value)
        self._adjustments.inc()
        self.sim.record("health.knob_tune", name, value=value,
                        by=winner or "base", priority=priority,
                        cause=cause)
        telemetry = self.sim.telemetry
        if telemetry.enabled and telemetry.active_context() is not None:
            telemetry.start_span("health.knob", name,
                                 parent=telemetry.active_context(),
                                 by=winner or "base", value=value)
        return value
