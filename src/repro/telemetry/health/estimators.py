"""O(1)-memory streaming estimators for live health signals.

The exact :class:`~repro.sim.metrics.Histogram` keeps every observation;
fine for post-run experiment tables, wrong for a monitor that must watch
millions of link events without growing.  These estimators consume one
value at a time and keep constant state:

* :class:`Ewma` — exponentially weighted moving average, the classic
  "recent level" smoother.
* :class:`P2Quantile` — the P² algorithm (Jain & Chlamtac, CACM 1985):
  five markers track a running quantile without storing the sample.
* :class:`RateTracker` — per-second rate from periodic samples of a
  monotonic counter, optionally EWMA-smoothed.

All three answer ``None`` until they have data — "no observations yet"
must never masquerade as a healthy zero (see the matching
``Histogram.quantile`` contract).
"""

from __future__ import annotations

import math
from bisect import insort
from typing import Optional


class Ewma:
    """Exponentially weighted moving average of a value stream."""

    __slots__ = ("alpha", "_value")

    def __init__(self, alpha: float = 0.3):
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self._value: Optional[float] = None

    def observe(self, value: float) -> None:
        if math.isnan(value):
            raise ValueError("EWMA observed NaN")
        current = self._value
        if current is None:
            self._value = value
        else:
            self._value = self.alpha * value + (1.0 - self.alpha) * current

    @property
    def value(self) -> Optional[float]:
        """The smoothed level, or ``None`` before the first observation."""
        return self._value


class P2Quantile:
    """Streaming q-quantile via the P² algorithm — five markers, O(1) memory.

    The first five observations are kept exactly (the estimate is then the
    empirical interpolated quantile); from the sixth on, the sorted buffer
    becomes the marker heights and each new value only nudges the middle
    markers toward their desired positions with the P² parabolic update.
    """

    __slots__ = ("q", "_count", "_heights", "_positions", "_desired",
                 "_increments")

    def __init__(self, q: float):
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        self.q = q
        self._count = 0
        self._heights: list[float] = []
        self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0]
        self._increments = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]

    def observe(self, value: float) -> None:
        if math.isnan(value):
            raise ValueError("P2Quantile observed NaN")
        self._count += 1
        heights = self._heights
        if len(heights) < 5:
            insort(heights, value)
            return
        positions = self._positions
        # Locate the cell and stretch the extremes if needed.
        if value < heights[0]:
            heights[0] = value
            cell = 0
        elif value >= heights[4]:
            heights[4] = value
            cell = 3
        else:
            cell = 0
            while cell < 3 and not heights[cell] <= value < heights[cell + 1]:
                cell += 1
        for i in range(cell + 1, 5):
            positions[i] += 1.0
        desired = self._desired
        increments = self._increments
        for i in range(5):
            desired[i] += increments[i]
        # Nudge the three interior markers toward their desired positions.
        for i in (1, 2, 3):
            delta = desired[i] - positions[i]
            if ((delta >= 1.0 and positions[i + 1] - positions[i] > 1.0)
                    or (delta <= -1.0 and positions[i - 1] - positions[i] < -1.0)):
                sign = 1.0 if delta >= 1.0 else -1.0
                candidate = self._parabolic(i, sign)
                if heights[i - 1] < candidate < heights[i + 1]:
                    heights[i] = candidate
                else:
                    heights[i] = self._linear(i, sign)
                positions[i] += sign

    def _parabolic(self, i: int, sign: float) -> float:
        n, h = self._positions, self._heights
        return h[i] + sign / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + sign) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - sign) * (h[i] - h[i - 1]) / (n[i] - n[i - 1]))

    def _linear(self, i: int, sign: float) -> float:
        n, h = self._positions, self._heights
        step = 1 if sign > 0 else -1
        return h[i] + sign * (h[i + step] - h[i]) / (n[i + step] - n[i])

    @property
    def count(self) -> int:
        return self._count

    @property
    def value(self) -> Optional[float]:
        """The quantile estimate, or ``None`` before any observation."""
        heights = self._heights
        if not heights:
            return None
        if len(heights) < 5:
            # Empirical interpolated quantile over the exact early sample.
            idx = self.q * (len(heights) - 1)
            lo = int(math.floor(idx))
            hi = int(math.ceil(idx))
            if lo == hi:
                return heights[lo]
            frac = idx - lo
            return heights[lo] * (1.0 - frac) + heights[hi] * frac
        return heights[2]


class RateTracker:
    """Per-second rate from periodic samples of a monotonic total.

    Feed it ``(time, running_total)`` pairs — e.g. a counter value on each
    monitor tick — and it answers the rate over the last interval,
    optionally smoothed through an :class:`Ewma`.
    """

    __slots__ = ("_smoother", "_last_time", "_last_total", "_rate")

    def __init__(self, alpha: Optional[float] = None):
        self._smoother = Ewma(alpha) if alpha is not None else None
        self._last_time: Optional[float] = None
        self._last_total: Optional[float] = None
        self._rate: Optional[float] = None

    def sample(self, time: float, total: float) -> Optional[float]:
        last_time, last_total = self._last_time, self._last_total
        self._last_time, self._last_total = time, total
        if last_time is None or time <= last_time:
            return self._rate
        raw = (total - last_total) / (time - last_time)
        if self._smoother is not None:
            self._smoother.observe(raw)
            self._rate = self._smoother.value
        else:
            self._rate = raw
        return self._rate

    @property
    def value(self) -> Optional[float]:
        """The latest rate, or ``None`` until two samples exist."""
        return self._rate
