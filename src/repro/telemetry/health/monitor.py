"""Periodic fleet-health sampling: metrics in, SLI stream out.

A :class:`HealthMonitor` rides one :class:`~repro.sim.simulator.
PeriodicTask` per simulation.  On each tick it evaluates every
registered SLI (service-level indicator), publishes the readings as
``health.<sli>`` gauges — so each Prometheus snapshot carries the live
fleet view for free — and hands the full reading dict to subscribers
(the alert engine, benchmarks).

SLIs come in a few shapes, all O(1) memory per tick:

* ``track_quantile`` / ``track_ewma`` — streaming estimators subscribed
  to a histogram's observation stream (:class:`P2Quantile`,
  :class:`Ewma`); nothing re-walks the histogram's sorted list.
* ``track_rate`` — per-second rate of a monotonic counter, from samples
  taken at tick time.
* ``track_ratio`` — windowed ratio of two counter deltas (e.g. dead
  letters per send attempt over the last tick).
* ``track_value`` — any callable; ``len(sim.queue)`` and storage sizes
  plug in here.
* ``derive_roc`` — rate of change of another SLI between ticks, for
  trend-based alert rules.

An SLI that answers ``None`` has no data yet; it is simply absent from
the reading (and from the gauges) rather than reported as zero, so
downstream rules can tell "unknown" from "healthy".
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.telemetry.health.estimators import Ewma, P2Quantile, RateTracker

#: Gauge prefix under which every SLI reading is published.
GAUGE_PREFIX = "health."


class HealthMonitor:
    """Samples registered SLIs on a periodic task and fans out readings."""

    def __init__(self, sim, interval: float = 1.0, start_after: Optional[float] = None):
        self.sim = sim
        self.interval = interval
        self.ticks = 0
        self._slis: dict[str, Callable[[float], Optional[float]]] = {}
        self._roc_sources: list[str] = []
        self._gauges: dict[str, object] = {}
        self._subscribers: list[Callable[[float, dict], None]] = []
        self._state: dict[str, float] = {}
        self._peaks: dict[str, float] = {}
        self._task = sim.every(interval, self._tick,
                               start_after=start_after, label="health-monitor")

    # -- registration -----------------------------------------------------------

    def track_value(self, name: str,
                    fn: Callable[[float], Optional[float]]) -> None:
        """Register ``fn(now) -> reading`` as the SLI ``name``."""
        if name in self._slis:
            raise ValueError(f"SLI {name!r} already registered")
        self._slis[name] = fn

    def track_quantile(self, name: str, histogram: str, q: float) -> P2Quantile:
        """SLI ``name`` = streaming P² ``q``-quantile of ``histogram``."""
        estimator = P2Quantile(q)
        self.sim.metrics.histogram(histogram).subscribe(estimator.observe)
        self.track_value(name, lambda _now: estimator.value)
        return estimator

    def track_ewma(self, name: str, histogram: str, alpha: float = 0.3) -> Ewma:
        """SLI ``name`` = EWMA of ``histogram``'s observation stream."""
        estimator = Ewma(alpha)
        self.sim.metrics.histogram(histogram).subscribe(estimator.observe)
        self.track_value(name, lambda _now: estimator.value)
        return estimator

    def track_rate(self, name: str, counter: str,
                   alpha: Optional[float] = None) -> RateTracker:
        """SLI ``name`` = per-second rate of the ``counter`` total."""
        tracker = RateTracker(alpha)
        metrics = self.sim.metrics

        def read(now: float) -> Optional[float]:
            return tracker.sample(now, metrics.value(counter))

        self.track_value(name, read)
        return tracker

    def track_ratio(self, name: str, numerator: str, denominator: str) -> None:
        """SLI ``name`` = delta(``numerator``) / delta(``denominator``)
        over the last tick — ``None`` while the denominator is idle."""
        metrics = self.sim.metrics
        last = {"num": 0.0, "den": 0.0}

        def read(_now: float) -> Optional[float]:
            num, den = metrics.value(numerator), metrics.value(denominator)
            d_num, d_den = num - last["num"], den - last["den"]
            last["num"], last["den"] = num, den
            if d_den <= 0:
                return None
            return d_num / d_den

        self.track_value(name, read)

    def derive_roc(self, source: str) -> str:
        """Publish ``<source>.roc`` — the source SLI's per-second rate of
        change between consecutive ticks."""
        if source not in self._slis:
            raise ValueError(f"cannot derive rate-of-change of unknown SLI {source!r}")
        self._roc_sources.append(source)
        return source + ".roc"

    def subscribe(self, listener: Callable[[float, dict], None]) -> None:
        """``listener(now, readings)`` runs after every sampling tick."""
        self._subscribers.append(listener)

    # -- sampling ---------------------------------------------------------------

    def _tick(self) -> None:
        now = self.sim.now
        previous = self._state
        readings: dict[str, float] = {}
        for name, fn in self._slis.items():
            value = fn(now)
            if value is None:
                continue
            readings[name] = value
        for source in self._roc_sources:
            if source in readings and source in previous:
                readings[source + ".roc"] = (
                    (readings[source] - previous[source]) / self.interval)
        gauges = self._gauges
        metrics = self.sim.metrics
        peaks = self._peaks
        for name, value in readings.items():
            gauge = gauges.get(name)
            if gauge is None:
                gauge = gauges[name] = metrics.gauge(GAUGE_PREFIX + name)
            gauge.set(value)
            if value > peaks.get(name, float("-inf")):
                peaks[name] = value
        self._state = readings
        self.ticks += 1
        for listener in self._subscribers:
            listener(now, readings)

    # -- queries ----------------------------------------------------------------

    @property
    def state(self) -> dict:
        """The latest readings (SLI name → value; ``None``s omitted)."""
        return dict(self._state)

    def peak(self, name: str) -> Optional[float]:
        """The highest reading ``name`` ever produced, or ``None``."""
        return self._peaks.get(name)

    def stop(self) -> None:
        self._task.cancel()
