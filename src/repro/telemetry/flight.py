"""Crash flight recorder: the last N telemetry records before an incident.

A :class:`FlightRecorder` keeps one bounded ring buffer per subject
(device or component) holding its most recent causal spans and trace
events.  When the fault layer crashes a device, or an
:class:`~repro.safeguards.deactivation.OverseerLink` quarantines one,
the victim's ring is dumped as a CRC-framed record to
:class:`~repro.store.stable.StableStorage` through the E18 journal path
— so the "what was it doing just before?" evidence survives the very
crash-amnesia wipe that erases the device's volatile state, and is
readable after restart (or by a post-mortem auditor who never restarts
the device at all).
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.store.journal import Journal
from repro.store.stable import StableStorage

#: Suffix of the stable-storage blob holding a device's flight dumps.
BLOB_SUFFIX = ".flight"


class FlightRecorder:
    """Per-subject ring buffers of recent telemetry, dumped on incident."""

    def __init__(self, sim, storage: StableStorage, per_device: int = 64):
        """Subscribes to the simulator's span stream and trace recorder;
        ``per_device`` bounds each subject's ring (oldest entries fall
        off).  Construction is the only wiring needed."""
        if per_device < 1:
            raise ValueError("per_device must be >= 1")
        self.sim = sim
        self.storage = storage
        self.per_device = per_device
        self.dumps = 0
        self._rings: dict[str, deque] = {}
        sim.telemetry.subscribe(self._observe_span)
        sim.trace.subscribe(self._observe_event)

    # -- ingestion --------------------------------------------------------------

    def _ring(self, subject: str) -> deque:
        ring = self._rings.get(subject)
        if ring is None:
            ring = self._rings[subject] = deque(maxlen=self.per_device)
        return ring

    def _observe_span(self, span) -> None:
        self._ring(span.subject).append({"record": "span", **span.to_dict()})

    def _observe_event(self, event) -> None:
        self._ring(event.subject).append({
            "record": "trace", "time": event.time, "kind": event.kind,
            "subject": event.subject, "detail": event.detail,
        })

    def recent(self, subject: str) -> list[dict]:
        """The current (volatile) ring contents for one subject."""
        return list(self._rings.get(subject, ()))

    # -- dumping ----------------------------------------------------------------

    def dump(self, device_id: str, reason: str) -> int:
        """Persist ``device_id``'s ring to stable storage; returns the
        number of entries written.  Safe to call with an empty ring (the
        dump then *records* that nothing notable preceded the incident).
        """
        entries = self.recent(device_id)
        journal = Journal(self.storage, device_id + BLOB_SUFFIX)
        journal.append({
            "reason": reason,
            "time": self.sim.now,
            "device_id": device_id,
            "entries": entries,
        })
        journal.flush()
        self.dumps += 1
        self.sim.metrics.counter("flight.dumps").inc()
        self.sim.record("flight.dump", device_id, reason=reason,
                        entries=len(entries))
        return len(entries)

    # -- post-mortem reads ------------------------------------------------------

    @staticmethod
    def load(storage: StableStorage, device_id: str) -> list[dict]:
        """Every dump recorded for ``device_id``, oldest first.

        Reads only stable storage — usable after a crash/restart cycle,
        or from a post-mortem analysis that never revives the device.
        """
        name = device_id + BLOB_SUFFIX
        if not storage.exists(name):
            return []
        return [record.payload for record in Journal(storage, name).replay()]

    @staticmethod
    def dumped_devices(storage: StableStorage) -> list[str]:
        """Device ids with at least one flight dump on this storage."""
        return [name[:-len(BLOB_SUFFIX)] for name in storage.names()
                if name.endswith(BLOB_SUFFIX)]

    def last_dump(self, device_id: str) -> Optional[dict]:
        dumps = self.load(self.storage, device_id)
        return dumps[-1] if dumps else None
