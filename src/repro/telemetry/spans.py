"""Causal spans for the discrete-event simulator.

A :class:`Span` is one point on a causal chain — an attack injection, a
policy installation, a message send, a safeguard veto — stamped with the
simulated time and a :class:`SpanContext` ``(trace_id, span_id,
parent_id)``.  Spans with the same ``trace_id`` form one cross-device
causal tree; :func:`repro.telemetry.explain.explain` reconstructs it.

Design constraints, in order:

* **Determinism** — ids come from per-tracer counters (never process
  globals, wall clock, or ``id()``), so the same seed produces the same
  spans byte for byte; replay comparisons stay exact.
* **Hot-path cost** — the simulator's run loop pays two attribute
  stores per event; an idle periodic tick pays a few attribute stores
  and *zero allocations*.  Root spans are **lazy**: a periodic task
  only *seeds* a pending root (a tuple), and a real :class:`Span`
  materializes only when something downstream actually joins the chain
  (a safeguard intervention, a decision with a causal parent, an attack
  step).  Ticks that do nothing traceable — including routine reliable
  heartbeats — leave no span behind.
* **Bounded memory** — the retained span list is capacity-capped with
  drop accounting; listeners (the flight recorder) still see every
  span, so per-device ring buffers stay fresh even after the central
  list saturates.
"""

from __future__ import annotations

from typing import Callable, Optional


class SpanContext:
    """The propagated identity of one span: ``(trace, span, parent)``.

    This is what rides inside message envelopes and pending reliable
    sends; it is deliberately tiny and immutable-by-convention.
    """

    __slots__ = ("trace_id", "span_id", "parent_id")

    def __init__(self, trace_id: str, span_id: str,
                 parent_id: Optional[str] = None):
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id

    def child_of(self) -> Optional[str]:
        return self.parent_id

    def to_dict(self) -> dict:
        return {"trace_id": self.trace_id, "span_id": self.span_id,
                "parent_id": self.parent_id}

    @staticmethod
    def from_dict(raw: dict) -> "SpanContext":
        return SpanContext(str(raw["trace_id"]), str(raw["span_id"]),
                           raw.get("parent_id"))

    def __repr__(self) -> str:
        return (f"SpanContext({self.trace_id}/{self.span_id}"
                f" < {self.parent_id})")

    def __eq__(self, other) -> bool:
        return (isinstance(other, SpanContext)
                and self.trace_id == other.trace_id
                and self.span_id == other.span_id
                and self.parent_id == other.parent_id)

    def __hash__(self) -> int:
        return hash((self.trace_id, self.span_id, self.parent_id))


class Span:
    """One recorded causal point: name, subject, sim time, detail."""

    __slots__ = ("context", "name", "subject", "time", "detail")

    def __init__(self, context: SpanContext, name: str, subject: str,
                 time: float, detail: dict):
        self.context = context
        self.name = name
        self.subject = subject
        self.time = time
        self.detail = detail

    def to_dict(self) -> dict:
        return {
            "trace_id": self.context.trace_id,
            "span_id": self.context.span_id,
            "parent_id": self.context.parent_id,
            "name": self.name,
            "subject": self.subject,
            "time": self.time,
            "detail": self.detail,
        }

    @staticmethod
    def from_dict(raw: dict) -> "Span":
        return Span(
            SpanContext(str(raw["trace_id"]), str(raw["span_id"]),
                        raw.get("parent_id")),
            str(raw["name"]), str(raw["subject"]), float(raw["time"]),
            dict(raw.get("detail", {})),
        )

    def __repr__(self) -> str:
        return (f"Span({self.name!r} subject={self.subject!r} "
                f"t={self.time} ctx={self.context!r})")


class Tracer:
    """Mints, retains, and propagates causal spans for one simulation.

    ``current`` holds the active :class:`SpanContext` (or ``None``); the
    simulator's run loop sets it from the scheduled event's captured
    context before each callback, and propagation points (network sends,
    reliable transmits, safeguard interventions) read or override it.

    ``pending_root`` holds a lazy root seed ``(label, time)`` planted by
    :class:`~repro.sim.simulator.PeriodicTask`; the first call to
    :meth:`active_context` under that seed materializes the real root
    span (named ``task.<suffix>`` with the label's owner as subject, per
    the library-wide ``"<owner>:<task>"`` labelling convention).
    """

    def __init__(self, enabled: bool = True,
                 capacity: Optional[int] = 200_000,
                 clock: Optional[Callable[[], float]] = None):
        if capacity is not None and capacity < 1:
            raise ValueError("span capacity must be >= 1 or None")
        self.enabled = enabled
        self.capacity = capacity
        self.spans: list[Span] = []
        self.dropped = 0
        self.current: Optional[SpanContext] = None
        self.pending_root: Optional[tuple] = None
        #: Supplies the default timestamp (the simulator wires its clock in).
        self.clock: Callable[[], float] = clock if clock is not None else (lambda: 0.0)
        self._trace_ids = 0
        self._span_ids = 0
        self._listeners: list[Callable[[Span], None]] = []

    # -- minting ----------------------------------------------------------------

    def _next_trace_id(self) -> str:
        self._trace_ids += 1
        return f"t{self._trace_ids}"

    def _next_span_id(self) -> str:
        self._span_ids += 1
        return f"s{self._span_ids}"

    def _retain(self, span: Span) -> Span:
        if self.capacity is not None and len(self.spans) >= self.capacity:
            self.dropped += 1
        else:
            self.spans.append(span)
        for listener in self._listeners:
            listener(span)
        return span

    def start_trace(self, name: str, subject: str,
                    time: Optional[float] = None, **detail) -> Optional[Span]:
        """Mint a new root span (a fresh trace id).  ``None`` when disabled."""
        if not self.enabled:
            return None
        context = SpanContext(self._next_trace_id(), self._next_span_id(), None)
        return self._retain(Span(context, name, subject,
                                 self.clock() if time is None else time, detail))

    def start_span(self, name: str, subject: str,
                   time: Optional[float] = None,
                   parent: Optional[SpanContext] = None,
                   **detail) -> Optional[Span]:
        """Mint a span under ``parent`` (default: the active context).

        With no parent and no active/pending context the span becomes a
        root of its own trace.  Returns ``None`` when tracing is disabled.
        """
        if not self.enabled:
            return None
        if parent is None:
            parent = self.active_context()
        if parent is None:
            return self.start_trace(name, subject, time, **detail)
        context = SpanContext(parent.trace_id, self._next_span_id(),
                              parent.span_id)
        return self._retain(Span(context, name, subject,
                                 self.clock() if time is None else time, detail))

    # -- context management -----------------------------------------------------

    def active_context(self) -> Optional[SpanContext]:
        """The current context, materializing a pending lazy root if set."""
        if not self.enabled:
            return None
        context = self.current
        if context is not None:
            return context
        seed = self.pending_root
        if seed is None:
            return None
        self.pending_root = None
        label, time = seed
        owner, _, suffix = label.partition(":")
        root = self.start_trace(f"task.{suffix or owner or 'anon'}",
                                owner or "<anonymous>", time)
        self.current = root.context
        return root.context

    def activate(self, context: Optional[SpanContext]) -> Optional[SpanContext]:
        """Set ``current`` and return the previous value (caller restores)."""
        previous = self.current
        self.current = context
        return previous

    def subscribe(self, listener: Callable[[Span], None]) -> None:
        """``listener(span)`` runs for every minted span, even ones the
        capacity cap drops from the retained list (flight recorders)."""
        self._listeners.append(listener)

    # -- queries & export -------------------------------------------------------

    def trace(self, trace_id: str) -> list[Span]:
        """Every retained span of one trace, in recording order."""
        return [span for span in self.spans
                if span.context.trace_id == trace_id]

    def trace_ids(self) -> list[str]:
        """Distinct trace ids among retained spans, in first-seen order."""
        seen: dict[str, None] = {}
        for span in self.spans:
            seen.setdefault(span.context.trace_id)
        return list(seen)

    def stats(self) -> dict:
        return {
            "spans": len(self.spans),
            "dropped": self.dropped,
            "traces": len(self.trace_ids()),
            "enabled": self.enabled,
        }

    def clear(self) -> None:
        self.spans.clear()
        self.dropped = 0

    def export_jsonl(self, path: str) -> int:
        """Write retained spans as JSON Lines; returns the count."""
        import json

        with open(path, "w", encoding="utf-8") as handle:
            for span in self.spans:
                handle.write(json.dumps(span.to_dict(), default=str) + "\n")
        return len(self.spans)

    @staticmethod
    def load_jsonl(path: str) -> "Tracer":
        """Rebuild a (query-only) tracer from an exported JSONL file."""
        import json

        tracer = Tracer(capacity=None)
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    tracer.spans.append(Span.from_dict(json.loads(line)))
        return tracer
