"""Reputation-gaming attacks (E22 threat family).

Grading autonomy by earned trust creates its own attack surface — the
trust signal itself.  Two abuses:

* :class:`SlowBurnRogue` — a patient insider *banks* reputation first:
  it spends a banking period volunteering conspicuously good behaviour
  (extra successful validations folded into the
  :class:`~repro.trust.reputation.ReputationLedger`), pushing its score
  and thus its quorum weight, budget, and guard slack toward the
  maximum — then implants its payload and strikes from the top of the
  trust curve.  The defence under test is the ledger's asymmetry:
  reputation must drain on bad outcomes much faster than it banks, so
  the purchased halo buys only a tick or two of extra life.
* :class:`LeaseAbuser` — a partition opportunist attacks the emergency
  lease machinery: it taps the wire for genuine lease grants, re-sends
  a captured grant verbatim after the lease's own expiry tick (hoping a
  registry forgets), and forges grants from whole cloth naming *itself*
  as grantee.  A correct :class:`~repro.safeguards.lease.LeaseAuthority`
  rejects all of it — ``replayed``/``stale`` for the capture,
  ``bad-mac``/``grantor-mismatch`` for the forgeries — and no lease ever
  serves past its expiry tick.

Like the E21 forgery family, neither attack marks its *victims*
compromised: the slow-burn device genuinely runs rogue logic (it is in
``record.affected``), but lease-abuse victims are control-plane
components whose rejection counters tell the story.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.attacks.cyber import MalevolentPayload, compromise_device
from repro.attacks.injector import Attack, AttackRecord
from repro.crypto.envelope import TRANSPORT_KEYS
from repro.safeguards.lease import LEASE_GRANT_TOPIC
from repro.sim.simulator import Simulator
from repro.types import DeviceStatus, ThreatChannel


class SlowBurnRogue(Attack):
    """Bank good behaviour, then strike from the top of the trust curve."""

    name = "slow-burn"
    channel = ThreatChannel.CYBER_ATTACK

    def __init__(self, devices: dict, payload: MalevolentPayload,
                 ledger, target: Optional[str] = None,
                 bank_ticks: int = 10, bank_interval: float = 1.0,
                 avoid: Optional[Callable[[], set]] = None):
        """``ledger`` is the fleet's reputation ledger the rogue games:
        each banking tick it earns one extra ``validated`` outcome (the
        model of volunteering for cross-validations it knows it will
        pass).  After ``bank_ticks`` banking rounds the ``payload`` is
        implanted on the target and the strike begins.  ``target`` picks
        the device explicitly; by default the first active, un-avoided
        device (sorted order — deterministic) is groomed."""
        self.devices = devices
        self.payload = payload
        self.ledger = ledger
        self.target = target
        self.bank_ticks = bank_ticks
        self.bank_interval = bank_interval
        self.avoid = avoid

    def _pick_target(self) -> Optional[str]:
        if self.target is not None:
            return self.target
        avoided = set(self.avoid()) if self.avoid is not None else set()
        for device_id in sorted(self.devices):
            if (self.devices[device_id].status != DeviceStatus.DEACTIVATED
                    and device_id not in avoided):
                return device_id
        return None

    def launch(self, sim: Simulator, record: AttackRecord) -> None:
        target = self._pick_target()
        record.detail["target"] = target
        record.detail["banked"] = 0
        record.detail["struck_at"] = None
        if target is None:
            return
        sim.record("attack.slow_burn", target, phase="banking",
                   bank_ticks=self.bank_ticks)
        self._bank(sim, record, target, self.bank_ticks)

    def _bank(self, sim: Simulator, record: AttackRecord, target: str,
              remaining: int) -> None:
        if self.devices[target].status == DeviceStatus.DEACTIVATED:
            return                          # groomed device died early
        if remaining <= 0:
            self._strike(sim, record, target)
            return
        self.ledger.record(target, "validated", sim.now)
        record.detail["banked"] += 1
        sim.metrics.counter("attacks.reputation_banked").inc()
        sim.schedule(self.bank_interval, self._bank, sim, record, target,
                     remaining - 1, label="attack:slow-burn")

    def _strike(self, sim: Simulator, record: AttackRecord,
                target: str) -> None:
        device = self.devices[target]
        compromise_device(device, self.payload, sim.now, sim=sim)
        record.mark_affected(target, sim.now)
        record.detail["struck_at"] = sim.now
        record.detail["banked_score"] = self.ledger.score(target, sim.now)
        sim.record("attack.slow_burn", target, phase="strike",
                   score=record.detail["banked_score"])
        sim.metrics.counter("attacks.slow_burn_strikes").inc()


class LeaseAbuser(Attack):
    """Replay expired lease grants and forge fresh ones."""

    name = "lease-abuse"
    channel = ThreatChannel.CYBER_ATTACK

    def __init__(self, network, registry_address: str,
                 address: str = "red.leaser", scope=("safety.kill",),
                 grantor: str = "overseer", forge_rounds: int = 3,
                 forge_interval: float = 1.0, replay_slack: float = 1.0,
                 max_captures: int = 4):
        """``registry_address`` is where the victim's lease registry
        listens for grants.  Captured genuine grants are re-sent
        ``replay_slack`` after their own ``expires_at`` tick (the
        registry must reject them — the nonce is burned *and* the lease
        is dead); forged grants claim ``grantor`` as issuer with a
        garbage MAC and name the abuser itself as sole grantee over
        ``scope``."""
        self.network = network
        self.registry_address = registry_address
        self.address = address
        self.scope = tuple(scope)
        self.grantor = grantor
        self.forge_rounds = forge_rounds
        self.forge_interval = forge_interval
        self.replay_slack = replay_slack
        self.max_captures = max_captures
        self._nonce = 0

    def launch(self, sim: Simulator, record: AttackRecord) -> None:
        self.network.register(self.address, lambda message: None)
        record.detail["captured"] = 0
        record.detail["replays_sent"] = 0
        record.detail["forgeries_sent"] = 0

        def capture(message) -> None:
            if message.topic != LEASE_GRANT_TOPIC:
                return
            if message.sender == self.address:
                return                      # not our own junk
            if record.detail["captured"] >= self.max_captures:
                return
            record.detail["captured"] += 1
            body = {key: value for key, value in message.body.items()
                    if key not in TRANSPORT_KEYS}
            # Wait out the lease itself: the replay lands *after* the
            # grant's expiry tick, probing whether restarts/forgetting
            # ever resurrect dead emergency powers.
            delay = max(self.replay_slack,
                        float(body.get("expires_at", sim.now))
                        - sim.now + self.replay_slack)
            sim.schedule(delay, self._replay, sim, record, dict(body),
                         label="attack:lease-replay")

        self.network.tap(capture)
        self._forge(sim, record, self.forge_rounds)

    def _replay(self, sim: Simulator, record: AttackRecord,
                body: dict) -> None:
        self.network.send(self.address, self.registry_address,
                          LEASE_GRANT_TOPIC, dict(body))
        record.detail["replays_sent"] += 1
        sim.metrics.counter("attacks.lease_replays").inc()
        sim.record("attack.lease_replay", self.address,
                   lease=body.get("lease_id"))

    def _forge(self, sim: Simulator, record: AttackRecord,
               remaining: int) -> None:
        if remaining <= 0:
            return
        self._nonce += 1
        body = {
            "lease_id": f"{self.address}:L{self._nonce}",
            "scope": list(self.scope),
            "grantees": [self.address],
            "granted_at": sim.now,
            "expires_at": sim.now + 60.0,
            "cause": "forged",
            "_issuer": self.grantor,
            "_nonce": f"forged-lease:{self._nonce}",
            "_tick": sim.now,
            "_mac": "0" * 64,
        }
        self.network.send(self.address, self.registry_address,
                          LEASE_GRANT_TOPIC, body)
        record.detail["forgeries_sent"] += 1
        sim.metrics.counter("attacks.lease_forgeries").inc()
        sim.record("attack.lease_forge", self.address, lease=body["lease_id"])
        sim.schedule(self.forge_interval, self._forge, sim, record,
                     remaining - 1, label="attack:lease-forge")
