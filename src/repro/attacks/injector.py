"""Attack scheduling framework.

An :class:`Attack` is a reusable threat description; the
:class:`AttackInjector` launches attacks at scheduled simulated times and
keeps the ground-truth record (which devices were compromised when) that
experiments score detection and containment against.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import AttackError
from repro.sim.simulator import Simulator
from repro.types import ThreatChannel

class Attack:
    """Base class for injectable threats."""

    name = "attack"
    channel = ThreatChannel.CYBER_ATTACK

    def launch(self, sim: Simulator, record: "AttackRecord") -> None:
        """Begin the attack.  Implementations schedule their own follow-ups
        and append affected device ids to ``record``."""
        raise NotImplementedError


@dataclass
class AttackRecord:
    """Ground truth about one launched attack."""

    attack_id: int
    name: str
    channel: ThreatChannel
    launched_at: float
    #: device_id -> time of compromise/effect
    affected: dict = field(default_factory=dict)
    #: device_id -> time of containment (deactivation/repair)
    contained: dict = field(default_factory=dict)
    detail: dict = field(default_factory=dict)

    def mark_affected(self, device_id: str, time: float) -> None:
        self.affected.setdefault(device_id, time)

    def mark_contained(self, device_id: str, time: float) -> None:
        if device_id in self.affected:
            self.contained.setdefault(device_id, time)

    def active_at(self, time: float) -> set:
        """Device ids compromised and not yet contained at ``time``."""
        return {
            device_id for device_id, start in self.affected.items()
            if start <= time and (device_id not in self.contained
                                  or self.contained[device_id] > time)
        }

    def containment_latency(self) -> list[float]:
        """Per-device time from compromise to containment (contained only)."""
        return [
            self.contained[device_id] - self.affected[device_id]
            for device_id in self.contained
        ]


class AttackInjector:
    """Schedules attacks and owns the ground-truth records."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.records: list[AttackRecord] = []
        # Per-injector ids: a process-global counter would make attack ids
        # (and thus traces) depend on how many simulations ran before this
        # one, breaking byte-identical replay.
        self._attack_ids = itertools.count(1)

    def launch_at(self, time: float, attack: Attack, **detail) -> AttackRecord:
        if time < self.sim.now:
            raise AttackError(f"cannot launch attack in the past at {time}")
        record = AttackRecord(
            attack_id=next(self._attack_ids),
            name=attack.name,
            channel=attack.channel,
            launched_at=time,
            detail=dict(detail),
        )
        self.records.append(record)
        self.sim.schedule_at(time, self._launch, attack, record,
                             label=f"attack:{attack.name}")
        return record

    def _launch(self, attack: Attack, record: AttackRecord) -> None:
        self.sim.record("attack.launch", attack.name, channel=attack.channel.value,
                        attack_id=record.attack_id)
        self.sim.metrics.counter("attacks.launched").inc()
        telemetry = self.sim.telemetry
        if not telemetry.enabled:
            attack.launch(self.sim, record)
            return
        # Every attack launch roots a fresh trace: the whole causal chain
        # (compromise → rogue decisions → safeguard response) hangs off it,
        # and the ground-truth record carries the trace id so experiments
        # can ask `explain(sim, record.detail["trace_id"])`.
        span = telemetry.start_trace(f"attack.{attack.name}", attack.name,
                                     self.sim.now, attack_id=record.attack_id,
                                     channel=attack.channel.value)
        record.detail["trace_id"] = span.context.trace_id
        previous = telemetry.activate(span.context)
        try:
            attack.launch(self.sim, record)
        finally:
            telemetry.activate(previous)

    # -- ground-truth queries -----------------------------------------------------

    def compromised_ever(self) -> set:
        out: set = set()
        for record in self.records:
            out |= set(record.affected)
        return out

    def compromised_at(self, time: float) -> set:
        out: set = set()
        for record in self.records:
            out |= record.active_at(time)
        return out

    def record_for(self, attack_id: int) -> Optional[AttackRecord]:
        for record in self.records:
            if record.attack_id == attack_id:
                return record
        return None
