"""Sensor deception attacks (paper sec VI-B, ref [13]).

"it is critical that a device be able to obtain trustworthy information
concerning its own status and the environment... This in turn requires the
deployment of specialized techniques to protect devices that typically
acquire information by using sensors (both their own and possibly of other
devices) from deception attacks."

A :class:`SensorDeceptionAttack` hijacks a colluding subset of the
redundant sources feeding one logical measurement and makes them all
report a common false value — the collusion pattern the iterative
filtering aggregator in ``repro.trust`` is designed to defeat.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.attacks.injector import Attack, AttackRecord
from repro.errors import AttackError
from repro.sim.simulator import Simulator
from repro.trust.aggregation import SensorReading
from repro.types import ThreatChannel


class SensorDeceptionAttack(Attack):
    """Collusion of hijacked sources around a false value."""

    name = "sensor_deception"
    channel = ThreatChannel.MALICIOUS_ACTOR

    def __init__(self, sources: Sequence[str], colluders: Sequence[str],
                 false_value: float, noise: float = 0.0):
        colluders = list(colluders)
        unknown = set(colluders) - set(sources)
        if unknown:
            raise AttackError(f"colluders not among sources: {sorted(unknown)}")
        self.sources = list(sources)
        self.colluders = colluders
        self.false_value = false_value
        self.noise = noise
        self.active = False

    def launch(self, sim: Simulator, record: AttackRecord) -> None:
        self.active = True
        for colluder in self.colluders:
            record.mark_affected(colluder, sim.now)
        sim.record("attack.deception", ",".join(self.colluders),
                   false_value=self.false_value)

    def stop(self) -> None:
        self.active = False

    def corrupt(self, readings: Sequence[SensorReading],
                rng=None) -> list[SensorReading]:
        """Replace colluders' readings with the coordinated false value.

        ``rng`` (a SeededRNG) adds small per-colluder noise when
        ``noise > 0`` so colluders are not byte-identical (harder for
        naive duplicate detection).
        """
        if not self.active:
            return list(readings)
        corrupted = []
        colluder_set = set(self.colluders)
        for reading in readings:
            if reading.source in colluder_set:
                value = self.false_value
                if self.noise > 0 and rng is not None:
                    value += rng.gauss(0.0, self.noise)
                corrupted.append(SensorReading(
                    source=reading.source, value=value, time=reading.time,
                ))
            else:
                corrupted.append(reading)
        return corrupted


def make_reading_provider(
    truth_fn: Callable[[], float],
    sources: Sequence[str],
    rng,
    honest_noise: float = 0.5,
    attack: Optional[SensorDeceptionAttack] = None,
):
    """A callable producing one aggregation round's readings.

    Honest sources report truth plus Gaussian noise; if an attack is
    active, its colluders are overridden.  Used by the E8 experiment and
    the break-glass context verifier.
    """

    def provide(time: float = 0.0) -> list[SensorReading]:
        truth = truth_fn()
        readings = [
            SensorReading(source=source, value=truth + rng.gauss(0.0, honest_noise),
                          time=time)
            for source in sources
        ]
        if attack is not None:
            readings = attack.corrupt(readings, rng)
        return readings

    return provide
