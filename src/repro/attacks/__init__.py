"""Threat injection substrate — the paper's sec IV malevolence channels.

Each module exercises one mechanism "by which malevolence can creep into
the system": cyber attacks and worm-style conversion of other devices,
backdoor exploitation, adversarial data poisoning, human error, and
sensor deception.  All attacks draw randomness from named simulator
substreams so experiments replay identically with safeguards on or off.
"""

from repro.attacks.backdoor import Backdoor, BackdoorAttack
from repro.attacks.cyber import MalevolentPayload, WormAttack, compromise_device
from repro.attacks.deception import SensorDeceptionAttack
from repro.attacks.forgery import (ForgedKillOrder, ReplayedKillOrder,
                                   StolenKeyRogue)
from repro.attacks.human_error import ErrorProneOperator, misdeployed_policy_set
from repro.attacks.injector import Attack, AttackInjector, AttackRecord
from repro.attacks.poisoning import PoisoningCampaign
from repro.attacks.reputation import LeaseAbuser, SlowBurnRogue

__all__ = [
    "Attack",
    "AttackInjector",
    "AttackRecord",
    "Backdoor",
    "BackdoorAttack",
    "ErrorProneOperator",
    "ForgedKillOrder",
    "LeaseAbuser",
    "MalevolentPayload",
    "SlowBurnRogue",
    "PoisoningCampaign",
    "ReplayedKillOrder",
    "SensorDeceptionAttack",
    "StolenKeyRogue",
    "WormAttack",
    "compromise_device",
    "misdeployed_policy_set",
]
